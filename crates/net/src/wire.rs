//! Payload codecs: how every engine value crosses the wire.
//!
//! All integers are little-endian `u64` (usizes widen losslessly),
//! floats are `f64` by bit pattern (so factors and objectives
//! round-trip byte-identically), strings and byte blobs are
//! `u64`-length-prefixed. Decoders return a `String` description on
//! malformed input; callers wrap it with peer context
//! ([`tgs_core::TgsError::Net`] on the client, an error response on the
//! server).

use tgs_core::TgsError;
use tgs_engine::{
    ClusterSummary, DocContent, EngineDoc, EngineRetweet, EngineSnapshot, EngineStats,
    LatencyHistogram, TimelineEntry, UserSentiment,
};
use tgs_linalg::DenseMatrix;

/// Opcode table — one per [`crate::ShardTransport`] method plus the
/// server-management verbs. Values are wire-stable: append, never
/// renumber.
pub mod op {
    /// Liveness probe; echoes an empty payload.
    pub const PING: u8 = 0;
    /// Creates a slot from a checkpoint section payload.
    pub const INIT: u8 = 1;
    /// [`crate::ShardTransport::ingest`].
    pub const INGEST: u8 = 2;
    /// [`crate::ShardTransport::flush`].
    pub const FLUSH: u8 = 3;
    /// [`crate::ShardTransport::stats`].
    pub const STATS: u8 = 4;
    /// [`crate::ShardTransport::timestamps`].
    pub const TIMESTAMPS: u8 = 5;
    /// [`crate::ShardTransport::timeline`].
    pub const TIMELINE: u8 = 6;
    /// [`crate::ShardTransport::latest_timestamp`].
    pub const LATEST_TIMESTAMP: u8 = 7;
    /// [`crate::ShardTransport::user_sentiment`].
    pub const USER_SENTIMENT: u8 = 8;
    /// [`crate::ShardTransport::user_timeline`].
    pub const USER_TIMELINE: u8 = 9;
    /// [`crate::ShardTransport::known_users`].
    pub const KNOWN_USERS: u8 = 10;
    /// [`crate::ShardTransport::cluster_summary`].
    pub const CLUSTER_SUMMARY: u8 = 11;
    /// [`crate::ShardTransport::sf_at`].
    pub const SF_AT: u8 = 12;
    /// [`crate::ShardTransport::k`].
    pub const K: u8 = 13;
    /// [`crate::ShardTransport::vocab_tokens`].
    pub const VOCAB_TOKENS: u8 = 14;
    /// [`crate::ShardTransport::user_factor`].
    pub const USER_FACTOR: u8 = 15;
    /// [`crate::ShardTransport::checkpoint_section`].
    pub const CHECKPOINT_SECTION: u8 = 16;
    /// [`crate::ShardTransport::export_users`].
    pub const EXPORT_USERS: u8 = 17;
    /// [`crate::ShardTransport::import_users`].
    pub const IMPORT_USERS: u8 = 18;
    /// [`crate::ShardTransport::spawn_sibling`]; returns the new slot id.
    pub const SPAWN_SIBLING: u8 = 19;
    /// [`crate::ShardTransport::absorb_section`].
    pub const ABSORB_SECTION: u8 = 20;
    /// [`crate::ShardTransport::set_generation`].
    pub const SET_GENERATION: u8 = 21;
    /// [`crate::ShardTransport::shutdown`] + slot removal (idempotent).
    pub const SHUTDOWN_SLOT: u8 = 22;
    /// Stops the whole server process after responding.
    pub const TERMINATE: u8 = 23;
    /// Server metadata: declared user range and live slot count.
    pub const SERVER_INFO: u8 = 24;
    /// [`crate::ShardTransport::checkpoint_base`]: a full checkpoint
    /// section plus its delta-base mark id.
    pub const CHECKPOINT_BASE: u8 = 25;
    /// [`crate::ShardTransport::delta_since`]: everything that changed
    /// on the slot since a mark, or an unavailability marker.
    pub const DELTA_SINCE: u8 = 26;
}

// --- writer ---------------------------------------------------------

/// Growable payload writer over a plain `Vec<u8>`.
#[derive(Default)]
pub struct Wr(Vec<u8>);

impl Wr {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.0
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.0.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Length-prefixed `f64` slice.
    pub fn f64s(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// Length-prefixed `usize` slice (widened).
    pub fn usizes(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }
}

// --- reader ---------------------------------------------------------

/// Bounds-checked payload cursor. Every accessor fails with a
/// description instead of panicking, so a malformed peer cannot crash
/// the process.
pub struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    /// A cursor over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly.
    pub fn done(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!("{} trailing payload bytes", self.remaining()));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated payload reading {what}: need {n} bytes, have {}",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("length checked"),
        ))
    }

    /// `u64` narrowed to `usize`.
    pub fn usize(&mut self, what: &str) -> Result<usize, String> {
        usize::try_from(self.u64(what)?).map_err(|_| format!("{what} exceeds usize"))
    }

    /// An element count, bounded by the bytes actually present so a
    /// hostile count cannot trigger a huge allocation.
    pub fn count(&mut self, elem_floor: usize, what: &str) -> Result<usize, String> {
        let n = self.usize(what)?;
        if n.saturating_mul(elem_floor.max(1)) > self.remaining() {
            return Err(format!(
                "implausible {what}: {n} elements but only {} bytes remain",
                self.remaining()
            ));
        }
        Ok(n)
    }

    /// `f64` by bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_le_bytes(
            self.take(8, what)?.try_into().expect("length checked"),
        ))
    }

    /// Length-prefixed byte blob.
    pub fn bytes(&mut self, what: &str) -> Result<Vec<u8>, String> {
        let n = self.count(1, what)?;
        Ok(self.take(n, what)?.to_vec())
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String, String> {
        String::from_utf8(self.bytes(what)?).map_err(|_| format!("{what} is not UTF-8"))
    }

    /// Length-prefixed `f64` slice.
    pub fn f64s(&mut self, what: &str) -> Result<Vec<f64>, String> {
        let n = self.count(8, what)?;
        (0..n).map(|_| self.f64(what)).collect()
    }

    /// Length-prefixed `usize` slice.
    pub fn usizes(&mut self, what: &str) -> Result<Vec<usize>, String> {
        let n = self.count(8, what)?;
        (0..n).map(|_| self.usize(what)).collect()
    }
}

// --- value codecs ---------------------------------------------------

/// Encodes a bare `u64` payload.
pub fn enc_u64(v: u64) -> Vec<u8> {
    let mut w = Wr::new();
    w.u64(v);
    w.finish()
}

/// Decodes a bare `u64` payload.
pub fn dec_u64(payload: &[u8]) -> Result<u64, String> {
    let mut r = Rd::new(payload);
    let v = r.u64("u64 value")?;
    r.done()?;
    Ok(v)
}

/// Encodes `Option<u64>` as a presence byte plus the value.
pub fn enc_opt_u64(v: Option<u64>) -> Vec<u8> {
    let mut w = Wr::new();
    match v {
        Some(x) => {
            w.u8(1);
            w.u64(x);
        }
        None => w.u8(0),
    }
    w.finish()
}

/// Decodes [`enc_opt_u64`].
pub fn dec_opt_u64(payload: &[u8]) -> Result<Option<u64>, String> {
    let mut r = Rd::new(payload);
    let v = match r.u8("option tag")? {
        0 => None,
        1 => Some(r.u64("optional value")?),
        t => return Err(format!("bad option tag {t}")),
    };
    r.done()?;
    Ok(v)
}

/// Encodes `Option<Vec<f64>>` (the `user_factor` result).
pub fn enc_opt_f64s(v: &Option<Vec<f64>>) -> Vec<u8> {
    let mut w = Wr::new();
    match v {
        Some(x) => {
            w.u8(1);
            w.f64s(x);
        }
        None => w.u8(0),
    }
    w.finish()
}

/// Decodes [`enc_opt_f64s`].
pub fn dec_opt_f64s(payload: &[u8]) -> Result<Option<Vec<f64>>, String> {
    let mut r = Rd::new(payload);
    let v = match r.u8("option tag")? {
        0 => None,
        1 => Some(r.f64s("factor")?),
        t => return Err(format!("bad option tag {t}")),
    };
    r.done()?;
    Ok(v)
}

/// Encodes the `checkpoint_base` result: the delta-base mark id plus
/// the full checkpoint section bytes.
pub fn enc_id_bytes(id: u64, bytes: &[u8]) -> Vec<u8> {
    let mut w = Wr::new();
    w.u64(id);
    w.bytes(bytes);
    w.finish()
}

/// Decodes [`enc_id_bytes`].
pub fn dec_id_bytes(payload: &[u8]) -> Result<(u64, Vec<u8>), String> {
    let mut r = Rd::new(payload);
    let id = r.u64("mark id")?;
    let bytes = r.bytes("checkpoint section")?;
    r.done()?;
    Ok((id, bytes))
}

/// Encodes the `delta_since` result: a presence byte plus the
/// serialized delta (absent = the mark cannot serve a delta; the
/// caller re-bases).
pub fn enc_opt_bytes(v: Option<&[u8]>) -> Vec<u8> {
    let mut w = Wr::new();
    match v {
        Some(bytes) => {
            w.u8(1);
            w.bytes(bytes);
        }
        None => w.u8(0),
    }
    w.finish()
}

/// Decodes [`enc_opt_bytes`].
pub fn dec_opt_bytes(payload: &[u8]) -> Result<Option<Vec<u8>>, String> {
    let mut r = Rd::new(payload);
    let v = match r.u8("option tag")? {
        0 => None,
        1 => Some(r.bytes("delta bytes")?),
        t => return Err(format!("bad option tag {t}")),
    };
    r.done()?;
    Ok(v)
}

/// Encodes a `u64` list (committed timestamps).
pub fn enc_u64s(v: &[u64]) -> Vec<u8> {
    let mut w = Wr::new();
    w.usize(v.len());
    for &x in v {
        w.u64(x);
    }
    w.finish()
}

/// Decodes [`enc_u64s`].
pub fn dec_u64s(payload: &[u8]) -> Result<Vec<u64>, String> {
    let mut r = Rd::new(payload);
    let n = r.count(8, "u64 list")?;
    let v: Vec<u64> = (0..n)
        .map(|_| r.u64("u64 element"))
        .collect::<Result<_, _>>()?;
    r.done()?;
    Ok(v)
}

/// Encodes a string list (the frozen vocabulary's token table).
pub fn enc_strs(v: &[String]) -> Vec<u8> {
    let mut w = Wr::new();
    w.usize(v.len());
    for s in v {
        w.str(s);
    }
    w.finish()
}

/// Decodes [`enc_strs`].
pub fn dec_strs(payload: &[u8]) -> Result<Vec<String>, String> {
    let mut r = Rd::new(payload);
    let n = r.count(8, "string list")?;
    let v: Vec<String> = (0..n)
        .map(|_| r.str("string element"))
        .collect::<Result<_, _>>()?;
    r.done()?;
    Ok(v)
}

/// Encodes one pre-routed [`EngineSnapshot`] (the `ingest` payload).
pub fn enc_snapshot(s: &EngineSnapshot) -> Vec<u8> {
    let mut w = Wr::new();
    w.u64(s.timestamp);
    w.usize(s.docs.len());
    for doc in &s.docs {
        w.usize(doc.user);
        match &doc.content {
            DocContent::Raw(text) => {
                w.u8(0);
                w.str(text);
            }
            DocContent::Tokens(tokens) => {
                w.u8(1);
                w.usize(tokens.len());
                for t in tokens {
                    w.str(t);
                }
            }
        }
    }
    w.usize(s.retweets.len());
    for rt in &s.retweets {
        w.usize(rt.user);
        w.usize(rt.doc);
    }
    w.usize(s.ghosts.len());
    for (user, factor) in &s.ghosts {
        w.usize(*user);
        w.f64s(factor);
    }
    w.finish()
}

/// Decodes [`enc_snapshot`].
pub fn dec_snapshot(payload: &[u8]) -> Result<EngineSnapshot, String> {
    let mut r = Rd::new(payload);
    let timestamp = r.u64("snapshot timestamp")?;
    let n_docs = r.count(9, "doc count")?;
    let mut docs = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        let user = r.usize("doc author")?;
        let content = match r.u8("doc content tag")? {
            0 => DocContent::Raw(r.str("raw text")?),
            1 => {
                let n = r.count(8, "token count")?;
                DocContent::Tokens(
                    (0..n)
                        .map(|_| r.str("token"))
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            t => return Err(format!("bad doc content tag {t}")),
        };
        docs.push(EngineDoc { user, content });
    }
    let n_rts = r.count(16, "retweet count")?;
    let mut retweets = Vec::with_capacity(n_rts);
    for _ in 0..n_rts {
        retweets.push(EngineRetweet {
            user: r.usize("retweet user")?,
            doc: r.usize("retweet doc")?,
        });
    }
    let n_ghosts = r.count(16, "ghost count")?;
    let mut ghosts = Vec::with_capacity(n_ghosts);
    for _ in 0..n_ghosts {
        let user = r.usize("ghost user")?;
        ghosts.push((user, r.f64s("ghost factor")?));
    }
    r.done()?;
    Ok(EngineSnapshot {
        timestamp,
        docs,
        retweets,
        ghosts,
    })
}

fn wr_timeline_entry(w: &mut Wr, e: &TimelineEntry) {
    w.u64(e.timestamp);
    w.usize(e.tweets);
    w.usize(e.users);
    w.usize(e.new_users);
    w.usize(e.evolving_users);
    w.usize(e.iterations);
    w.u8(e.converged as u8);
    w.f64(e.objective);
    w.usizes(&e.tweet_counts);
    w.usizes(&e.user_counts);
}

fn rd_timeline_entry(r: &mut Rd<'_>) -> Result<TimelineEntry, String> {
    Ok(TimelineEntry {
        timestamp: r.u64("entry timestamp")?,
        tweets: r.usize("tweets")?,
        users: r.usize("users")?,
        new_users: r.usize("new users")?,
        evolving_users: r.usize("evolving users")?,
        iterations: r.usize("iterations")?,
        converged: r.u8("converged flag")? != 0,
        objective: r.f64("objective")?,
        tweet_counts: r.usizes("tweet counts")?,
        user_counts: r.usizes("user counts")?,
    })
}

/// Encodes a timeline slice.
pub fn enc_timeline(entries: &[TimelineEntry]) -> Vec<u8> {
    let mut w = Wr::new();
    w.usize(entries.len());
    for e in entries {
        wr_timeline_entry(&mut w, e);
    }
    w.finish()
}

/// Decodes [`enc_timeline`].
pub fn dec_timeline(payload: &[u8]) -> Result<Vec<TimelineEntry>, String> {
    let mut r = Rd::new(payload);
    let n = r.count(65, "timeline length")?;
    let v: Vec<TimelineEntry> = (0..n)
        .map(|_| rd_timeline_entry(&mut r))
        .collect::<Result<_, _>>()?;
    r.done()?;
    Ok(v)
}

/// Encodes one [`UserSentiment`].
pub fn enc_user_sentiment(s: &UserSentiment) -> Vec<u8> {
    let mut w = Wr::new();
    w.usize(s.user);
    w.u64(s.timestamp);
    w.f64s(&s.distribution);
    w.finish()
}

/// Decodes [`enc_user_sentiment`].
pub fn dec_user_sentiment(payload: &[u8]) -> Result<UserSentiment, String> {
    let mut r = Rd::new(payload);
    let s = UserSentiment {
        user: r.usize("user")?,
        timestamp: r.u64("timestamp")?,
        distribution: r.f64s("distribution")?,
    };
    r.done()?;
    Ok(s)
}

/// Encodes a user's full observation history.
pub fn enc_user_timeline(rows: &[(u64, Vec<f64>)]) -> Vec<u8> {
    let mut w = Wr::new();
    w.usize(rows.len());
    for (key, dist) in rows {
        w.u64(*key);
        w.f64s(dist);
    }
    w.finish()
}

/// Decodes [`enc_user_timeline`].
pub fn dec_user_timeline(payload: &[u8]) -> Result<Vec<(u64, Vec<f64>)>, String> {
    let mut r = Rd::new(payload);
    let n = r.count(16, "observation count")?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.u64("observation timestamp")?;
        rows.push((key, r.f64s("observation distribution")?));
    }
    r.done()?;
    Ok(rows)
}

/// Encodes one [`ClusterSummary`].
pub fn enc_cluster_summary(s: &ClusterSummary) -> Vec<u8> {
    let mut w = Wr::new();
    w.u64(s.timestamp);
    w.usizes(&s.tweet_counts);
    w.usizes(&s.user_counts);
    w.f64s(&s.tweet_shares);
    w.finish()
}

/// Decodes [`enc_cluster_summary`].
pub fn dec_cluster_summary(payload: &[u8]) -> Result<ClusterSummary, String> {
    let mut r = Rd::new(payload);
    let s = ClusterSummary {
        timestamp: r.u64("summary timestamp")?,
        tweet_counts: r.usizes("tweet counts")?,
        user_counts: r.usizes("user counts")?,
        tweet_shares: r.f64s("tweet shares")?,
    };
    r.done()?;
    Ok(s)
}

/// The SIMD tier names an engine can report. `simd` is a `&'static
/// str`, so the decoder maps the wire string back onto the known names
/// (an unknown name decodes as `""` rather than leaking).
const SIMD_TIERS: [&str; 4] = ["scalar", "avx2", "avx2+fma", "neon"];

/// Encodes one [`EngineStats`]. The step-latency histogram rides after
/// the scalar fields as `shed: u64`, `buckets: u64` (count) and that
/// many `u64` bucket values — length-prefixed so a future bucket-count
/// revision stays decodable (the decoder zero-fills a short list and
/// clamps a long one into its last bucket). The recovery counters
/// (`respawns`, `replayed_docs`, `degraded_queries`) trail the
/// histogram as an optional record: a pre-recovery peer's payload
/// simply ends early and they decode as 0.
pub fn enc_stats(s: &EngineStats) -> Vec<u8> {
    let mut w = Wr::new();
    w.u64(s.queued);
    w.u64(s.ingested);
    w.u64(s.dropped_capacity);
    w.u64(s.last_step_ns);
    w.u64(s.ghost_edges);
    w.u64(s.dropped_cross_shard);
    w.u64(s.shard_unavailable);
    w.u64(s.threads);
    w.u8(s.pinned as u8);
    w.str(s.simd);
    w.u64(s.step_hist.shed());
    let buckets = s.step_hist.buckets();
    w.u64(buckets.len() as u64);
    for &b in buckets {
        w.u64(b);
    }
    w.u64(s.respawns);
    w.u64(s.replayed_docs);
    w.u64(s.degraded_queries);
    w.finish()
}

/// Decodes [`enc_stats`].
pub fn dec_stats(payload: &[u8]) -> Result<EngineStats, String> {
    let mut r = Rd::new(payload);
    let mut s = EngineStats {
        queued: r.u64("queued")?,
        ingested: r.u64("ingested")?,
        dropped_capacity: r.u64("dropped_capacity")?,
        last_step_ns: r.u64("last_step_ns")?,
        step_hist: LatencyHistogram::new(),
        ghost_edges: r.u64("ghost_edges")?,
        dropped_cross_shard: r.u64("dropped_cross_shard")?,
        shard_unavailable: r.u64("shard_unavailable")?,
        threads: r.u64("threads")?,
        pinned: r.u8("pinned")? != 0,
        simd: "",
        respawns: 0,
        replayed_docs: 0,
        degraded_queries: 0,
    };
    let simd = r.str("simd tier")?;
    s.simd = SIMD_TIERS
        .iter()
        .find(|&&name| name == simd)
        .copied()
        .unwrap_or("");
    let shed = r.u64("histogram shed")?;
    let n = r.u64("histogram bucket count")? as usize;
    if n.saturating_mul(8) > r.remaining() {
        return Err(format!("implausible histogram bucket count {n}"));
    }
    let buckets: Vec<u64> = (0..n)
        .map(|_| r.u64("histogram bucket"))
        .collect::<Result<_, _>>()?;
    s.step_hist = LatencyHistogram::from_parts(&buckets, shed);
    // Optional trailing record: absent on payloads from peers built
    // before the recovery counters existed.
    if r.remaining() > 0 {
        s.respawns = r.u64("respawns")?;
        s.replayed_docs = r.u64("replayed_docs")?;
        s.degraded_queries = r.u64("degraded_queries")?;
    }
    r.done()?;
    Ok(s)
}

/// Encodes one [`DenseMatrix`] (the `sf_at` result).
pub fn enc_matrix(m: &DenseMatrix) -> Vec<u8> {
    let mut w = Wr::new();
    w.usize(m.rows());
    w.usize(m.cols());
    for &v in m.as_slice() {
        w.f64(v);
    }
    w.finish()
}

/// Decodes [`enc_matrix`].
pub fn dec_matrix(payload: &[u8]) -> Result<DenseMatrix, String> {
    let mut r = Rd::new(payload);
    let rows = r.usize("matrix rows")?;
    let cols = r.usize("matrix cols")?;
    let n = rows
        .checked_mul(cols)
        .filter(|&n| n.saturating_mul(8) <= r.remaining())
        .ok_or_else(|| format!("implausible matrix shape {rows}x{cols}"))?;
    let data: Vec<f64> = (0..n)
        .map(|_| r.f64("matrix element"))
        .collect::<Result<_, _>>()?;
    r.done()?;
    DenseMatrix::from_vec(rows, cols, data).map_err(|e| format!("bad matrix payload: {e}"))
}

// --- error codec ----------------------------------------------------

// Wire tags for TgsError variants that must survive the trip intact.
// Tag 0 is the catch-all: any variant without a dedicated tag crosses
// as its Display string and decodes as InvalidArgument.
const ERR_GENERIC: u8 = 0;
const ERR_INVALID_CONFIG: u8 = 1;
const ERR_ENGINE_CLOSED: u8 = 2;
const ERR_SNAPSHOT_UNAVAILABLE: u8 = 3;
const ERR_UNKNOWN_USER: u8 = 4;
const ERR_CORRUPT_CHECKPOINT: u8 = 5;
const ERR_IO: u8 = 6;
const ERR_INVALID_ARGUMENT: u8 = 7;
const ERR_NET: u8 = 8;
const ERR_STALE_TOPOLOGY: u8 = 9;

/// Encodes a [`TgsError`] for a `STATUS_ERR` response. The variants
/// clients dispatch on — [`TgsError::StaleTopology`] above all, since
/// the router's lazy re-keying matches on it — round-trip exactly;
/// everything else degrades to its display string.
pub fn enc_error(e: &TgsError) -> Vec<u8> {
    let mut w = Wr::new();
    match e {
        TgsError::InvalidConfig { message, .. } => {
            w.u8(ERR_INVALID_CONFIG);
            w.str(message);
        }
        TgsError::EngineClosed => w.u8(ERR_ENGINE_CLOSED),
        TgsError::SnapshotUnavailable { timestamp } => {
            w.u8(ERR_SNAPSHOT_UNAVAILABLE);
            w.u64(*timestamp);
        }
        TgsError::UnknownUser { user } => {
            w.u8(ERR_UNKNOWN_USER);
            w.usize(*user);
        }
        TgsError::CorruptCheckpoint { detail } => {
            w.u8(ERR_CORRUPT_CHECKPOINT);
            w.str(detail);
        }
        TgsError::Io { context, source } => {
            w.u8(ERR_IO);
            w.str(context);
            w.str(&source.to_string());
        }
        TgsError::InvalidArgument { message } => {
            w.u8(ERR_INVALID_ARGUMENT);
            w.str(message);
        }
        TgsError::Net { peer, detail } => {
            w.u8(ERR_NET);
            w.str(peer);
            w.str(detail);
        }
        TgsError::StaleTopology { have, current } => {
            w.u8(ERR_STALE_TOPOLOGY);
            w.u64(*have);
            w.u64(*current);
        }
        other => {
            w.u8(ERR_GENERIC);
            w.str(&other.to_string());
        }
    }
    w.finish()
}

/// Decodes [`enc_error`]. A malformed error payload itself decodes as a
/// [`TgsError::Net`] against `peer`.
pub fn dec_error(payload: &[u8], peer: &str) -> TgsError {
    match try_dec_error(payload) {
        Ok(e) => e,
        Err(detail) => TgsError::net(peer, format!("malformed error response: {detail}")),
    }
}

fn try_dec_error(payload: &[u8]) -> Result<TgsError, String> {
    let mut r = Rd::new(payload);
    let e = match r.u8("error tag")? {
        ERR_GENERIC => TgsError::invalid_argument(r.str("error message")?),
        ERR_INVALID_CONFIG => TgsError::InvalidConfig {
            field: "remote",
            message: r.str("config message")?,
        },
        ERR_ENGINE_CLOSED => TgsError::EngineClosed,
        ERR_SNAPSHOT_UNAVAILABLE => TgsError::SnapshotUnavailable {
            timestamp: r.u64("timestamp")?,
        },
        ERR_UNKNOWN_USER => TgsError::UnknownUser {
            user: r.usize("user")?,
        },
        ERR_CORRUPT_CHECKPOINT => TgsError::corrupt(r.str("detail")?),
        ERR_IO => {
            let context = r.str("io context")?;
            let detail = r.str("io detail")?;
            TgsError::io(context, std::io::Error::other(detail))
        }
        ERR_INVALID_ARGUMENT => TgsError::invalid_argument(r.str("message")?),
        ERR_NET => {
            let peer = r.str("net peer")?;
            TgsError::net(peer, r.str("net detail")?)
        }
        ERR_STALE_TOPOLOGY => TgsError::StaleTopology {
            have: r.u64("have generation")?,
            current: r.u64("current generation")?,
        },
        t => return Err(format!("unknown error tag {t}")),
    };
    r.done()?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgs_core::TgsErrorKind;

    #[test]
    fn scalar_codecs_roundtrip() {
        assert_eq!(dec_u64(&enc_u64(42)).unwrap(), 42);
        assert_eq!(dec_opt_u64(&enc_opt_u64(None)).unwrap(), None);
        assert_eq!(dec_opt_u64(&enc_opt_u64(Some(7))).unwrap(), Some(7));
        assert_eq!(dec_u64s(&enc_u64s(&[3, 1, 4])).unwrap(), vec![3, 1, 4]);
        let words = vec!["good".to_string(), "bad".to_string()];
        assert_eq!(dec_strs(&enc_strs(&words)).unwrap(), words);
        let factor = Some(vec![0.25, 0.75]);
        assert_eq!(dec_opt_f64s(&enc_opt_f64s(&factor)).unwrap(), factor);
        assert_eq!(dec_opt_f64s(&enc_opt_f64s(&None)).unwrap(), None);
    }

    #[test]
    fn snapshot_codec_roundtrips_both_content_kinds() {
        let mut s = EngineSnapshot::new(17);
        s.push_text(3, "great game tonight");
        s.push_tokens(5, vec!["great".to_string(), "game".to_string()]);
        s.push_retweet(5, 0);
        s.ghosts.push((9, vec![0.5, 0.25, 0.25]));
        let back = dec_snapshot(&enc_snapshot(&s)).unwrap();
        assert_eq!(back.timestamp, 17);
        assert_eq!(back.docs.len(), 2);
        assert_eq!(back.docs[0].user, 3);
        assert!(matches!(&back.docs[0].content, DocContent::Raw(t) if t == "great game tonight"));
        assert!(matches!(&back.docs[1].content, DocContent::Tokens(t) if t.len() == 2));
        assert_eq!(back.retweets[0], EngineRetweet { user: 5, doc: 0 });
        assert_eq!(back.ghosts, vec![(9, vec![0.5, 0.25, 0.25])]);
    }

    #[test]
    fn aggregate_codecs_roundtrip() {
        let entry = TimelineEntry {
            timestamp: 5,
            tweets: 10,
            users: 4,
            new_users: 1,
            evolving_users: 2,
            iterations: 12,
            converged: true,
            objective: 1.25e-3,
            tweet_counts: vec![6, 3, 1],
            user_counts: vec![2, 1, 1],
        };
        assert_eq!(
            dec_timeline(&enc_timeline(std::slice::from_ref(&entry))).unwrap(),
            vec![entry]
        );

        let sentiment = UserSentiment {
            user: 9,
            timestamp: 5,
            distribution: vec![0.1, 0.2, 0.7],
        };
        assert_eq!(
            dec_user_sentiment(&enc_user_sentiment(&sentiment)).unwrap(),
            sentiment
        );

        let history = vec![(1u64, vec![0.5, 0.5]), (2, vec![0.75, 0.25])];
        assert_eq!(
            dec_user_timeline(&enc_user_timeline(&history)).unwrap(),
            history
        );

        let summary = ClusterSummary {
            timestamp: 2,
            tweet_counts: vec![1, 2],
            user_counts: vec![1, 1],
            tweet_shares: vec![1.0 / 3.0, 2.0 / 3.0],
        };
        assert_eq!(
            dec_cluster_summary(&enc_cluster_summary(&summary)).unwrap(),
            summary
        );
    }

    #[test]
    fn stats_codec_pins_simd_to_known_tiers() {
        let mut step_hist = LatencyHistogram::new();
        step_hist.record(900);
        step_hist.record(1 << 22);
        step_hist.add_shed(9);
        let stats = EngineStats {
            queued: 1,
            ingested: 2,
            dropped_capacity: 3,
            last_step_ns: 4,
            step_hist,
            ghost_edges: 5,
            dropped_cross_shard: 6,
            shard_unavailable: 7,
            simd: "avx2+fma",
            threads: 8,
            pinned: true,
            respawns: 9,
            replayed_docs: 10,
            degraded_queries: 11,
        };
        assert_eq!(dec_stats(&enc_stats(&stats)).unwrap(), stats);
        // An unknown tier name degrades to "" instead of failing.
        let mut w = Wr::new();
        for v in 1..=8u64 {
            w.u64(v);
        }
        w.u8(0);
        w.str("quantum");
        w.u64(0); // histogram shed
        w.u64(0); // histogram bucket count
        assert_eq!(dec_stats(&w.finish()).unwrap().simd, "");
        // An implausible bucket count is rejected before allocation.
        let mut w = Wr::new();
        for v in 1..=8u64 {
            w.u64(v);
        }
        w.u8(0);
        w.str("scalar");
        w.u64(0);
        w.u64(u64::MAX);
        assert!(dec_stats(&w.finish()).is_err());
    }

    #[test]
    fn stats_codec_histogram_survives_bucket_count_revisions() {
        // A peer built with fewer buckets zero-fills; one with more
        // clamps its tail into the last bucket — counts never vanish.
        let mut w = Wr::new();
        for v in 1..=8u64 {
            w.u64(v);
        }
        w.u8(1);
        w.str("scalar");
        w.u64(2); // shed
        w.u64(3); // short bucket list
        w.u64(10);
        w.u64(20);
        w.u64(30);
        let s = dec_stats(&w.finish()).unwrap();
        assert_eq!(s.step_hist.count(), 60);
        assert_eq!(s.step_hist.shed(), 2);
        assert_eq!(s.step_hist.buckets()[2], 30);
        // The payload above ends at the histogram — the optional
        // recovery-counter tail is absent and must decode as zeros.
        assert_eq!(s.respawns, 0);
        assert_eq!(s.replayed_docs, 0);
        assert_eq!(s.degraded_queries, 0);
    }

    #[test]
    fn matrix_codec_roundtrips_bit_exactly() {
        let m = DenseMatrix::from_vec(2, 3, vec![1.0, 0.5, 0.25, -0.0, f64::MIN_POSITIVE, 9.75])
            .unwrap();
        let back = dec_matrix(&enc_matrix(&m)).unwrap();
        assert_eq!((back.rows(), back.cols()), (2, 3));
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(dec_matrix(&enc_matrix(&m)[..10]).is_err());
    }

    #[test]
    fn error_codec_preserves_dispatchable_variants() {
        let stale = TgsError::StaleTopology {
            have: 2,
            current: 5,
        };
        match dec_error(&enc_error(&stale), "p") {
            TgsError::StaleTopology {
                have: 2,
                current: 5,
            } => {}
            other => panic!("stale topology mangled: {other}"),
        }
        let unknown = TgsError::UnknownUser { user: 42 };
        assert!(matches!(
            dec_error(&enc_error(&unknown), "p"),
            TgsError::UnknownUser { user: 42 }
        ));
        let missing = TgsError::SnapshotUnavailable { timestamp: 11 };
        assert!(matches!(
            dec_error(&enc_error(&missing), "p"),
            TgsError::SnapshotUnavailable { timestamp: 11 }
        ));
        let net = TgsError::net("10.0.0.9:4000", "refused");
        assert_eq!(dec_error(&enc_error(&net), "p").kind(), TgsErrorKind::Net);
        // A shape error has no dedicated tag: it crosses as its message.
        let shape = TgsError::FeatureDimMismatch {
            xp_cols: 3,
            xu_cols: 4,
        };
        let decoded = dec_error(&enc_error(&shape), "p");
        assert_eq!(decoded.kind(), TgsErrorKind::InvalidArgument);
        assert!(decoded.to_string().contains("feature space"));
        // Garbage decodes as a Net error against the peer, not a panic.
        assert_eq!(dec_error(&[250, 0, 1], "peer-x").kind(), TgsErrorKind::Net);
    }
}

//! Deterministic fault injection for the TCP transport.
//!
//! A [`FaultPolicy`] attaches to [`crate::NetConfig`] (builder knob) or
//! arrives via the `TGS_FAULTS` environment variable and makes
//! [`crate::TcpShard`] misbehave on purpose: drop the connection before
//! a send, delay a call, truncate a request frame mid-write, or answer
//! with a synthetic error reply — each with a per-opcode probability.
//! Every decision is drawn from a seeded counter-based stream keyed by
//! the policy seed and the handle's slot (never its address, whose
//! ephemeral port would change between runs), so a faulted run is
//! exactly reproducible: same seed, same call sequence, same faults.
//!
//! Spec grammar (comma-separated clauses, whitespace ignored):
//!
//! ```text
//! seed=7, delay_ms=5, ingest.truncate=0.25, *.error=0.01
//! ```
//!
//! Each fault clause is `<opcode-name|*>.<drop|delay|truncate|error> =
//! <probability>`; opcode names are the lower-case names from the
//! opcode table in `PROTOCOL.md` (`ingest`, `flush`, `stats`, …), `*`
//! matches every opcode. Rules are evaluated in clause order and the
//! first hit wins, so a specific clause listed before a wildcard takes
//! precedence for its opcode.

use std::time::Duration;

use crate::wire::op;

/// What an injected fault does to one transport call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Close the cached connection before the request is written. The
    /// request provably never left, so the client retries internally.
    Drop,
    /// Sleep for the policy's `delay` before the call proceeds.
    Delay,
    /// Write a partial request frame, then close the connection: bytes
    /// left the socket but can never parse as a request. Non-idempotent
    /// calls surface this as a typed error (replay is not provably
    /// safe), which is exactly what drives the supervised recovery path.
    Truncate,
    /// Answer with a synthetic `STATUS_ERR` reply without any IO.
    ErrorReply,
}

#[derive(Debug, Clone, PartialEq)]
struct FaultRule {
    /// `None` is the `*` wildcard.
    opcode: Option<u8>,
    kind: FaultKind,
    /// Probability in `[0, 1]` that a matching call draws this fault.
    prob: f64,
}

/// A seeded, per-opcode fault schedule (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPolicy {
    /// Base seed of the deterministic decision stream.
    pub seed: u64,
    /// How long a [`FaultKind::Delay`] fault sleeps.
    pub delay: Duration,
    rules: Vec<FaultRule>,
}

impl FaultPolicy {
    /// Parses the `TGS_FAULTS` spec grammar.
    pub fn parse(spec: &str) -> Result<FaultPolicy, String> {
        let mut policy = FaultPolicy {
            seed: 0,
            delay: Duration::from_millis(1),
            rules: Vec::new(),
        };
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause '{clause}' is missing '='"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    policy.seed = value
                        .parse()
                        .map_err(|_| format!("bad fault seed '{value}'"))?;
                }
                "delay_ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("bad fault delay '{value}'"))?;
                    policy.delay = Duration::from_millis(ms);
                }
                _ => {
                    let (opname, kind) = key
                        .split_once('.')
                        .ok_or_else(|| format!("fault clause '{key}' is not <opcode>.<kind>"))?;
                    let opcode = match opname {
                        "*" => None,
                        name => Some(
                            opcode_by_name(name)
                                .ok_or_else(|| format!("unknown opcode name '{name}'"))?,
                        ),
                    };
                    let kind = match kind {
                        "drop" => FaultKind::Drop,
                        "delay" => FaultKind::Delay,
                        "truncate" => FaultKind::Truncate,
                        "error" => FaultKind::ErrorReply,
                        other => return Err(format!("unknown fault kind '{other}'")),
                    };
                    let prob: f64 = value
                        .parse()
                        .map_err(|_| format!("bad fault probability '{value}'"))?;
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("fault probability {prob} outside [0, 1]"));
                    }
                    policy.rules.push(FaultRule { opcode, kind, prob });
                }
            }
        }
        Ok(policy)
    }

    /// The policy declared by the `TGS_FAULTS` environment variable, if
    /// any. A malformed spec is reported on stderr and ignored rather
    /// than silently arming a half-parsed schedule.
    pub fn from_env() -> Option<FaultPolicy> {
        let spec = std::env::var("TGS_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match Self::parse(&spec) {
            Ok(policy) => Some(policy),
            Err(e) => {
                eprintln!("warning: ignoring malformed TGS_FAULTS: {e}");
                None
            }
        }
    }

    /// Whether any rule could ever fire.
    pub fn is_armed(&self) -> bool {
        self.rules.iter().any(|r| r.prob > 0.0)
    }

    /// Decides the fate of one call. `draw` yields the next value of
    /// the caller's deterministic stream; it is consulted exactly once
    /// per matching nonzero rule, so the stream advances identically on
    /// every run regardless of which faults fire.
    pub fn decide(&self, opcode: u8, mut draw: impl FnMut() -> u64) -> Option<FaultKind> {
        let mut hit = None;
        for rule in &self.rules {
            if rule.prob <= 0.0 || !(rule.opcode.is_none() || rule.opcode == Some(opcode)) {
                continue;
            }
            let unit = (draw() >> 11) as f64 / (1u64 << 53) as f64;
            if hit.is_none() && unit < rule.prob {
                hit = Some(rule.kind);
            }
        }
        hit
    }
}

/// The `splitmix64` finalizer: one multiply-xorshift pipeline turning a
/// counter into a well-mixed 64-bit value. Counter-based so an atomic
/// `fetch_add` is the whole generator state.
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn opcode_by_name(name: &str) -> Option<u8> {
    Some(match name {
        "ping" => op::PING,
        "init" => op::INIT,
        "ingest" => op::INGEST,
        "flush" => op::FLUSH,
        "stats" => op::STATS,
        "timestamps" => op::TIMESTAMPS,
        "timeline" => op::TIMELINE,
        "latest_timestamp" => op::LATEST_TIMESTAMP,
        "user_sentiment" => op::USER_SENTIMENT,
        "user_timeline" => op::USER_TIMELINE,
        "known_users" => op::KNOWN_USERS,
        "cluster_summary" => op::CLUSTER_SUMMARY,
        "sf_at" => op::SF_AT,
        "k" => op::K,
        "vocab_tokens" => op::VOCAB_TOKENS,
        "user_factor" => op::USER_FACTOR,
        "checkpoint_section" => op::CHECKPOINT_SECTION,
        "export_users" => op::EXPORT_USERS,
        "import_users" => op::IMPORT_USERS,
        "spawn_sibling" => op::SPAWN_SIBLING,
        "absorb_section" => op::ABSORB_SECTION,
        "set_generation" => op::SET_GENERATION,
        "shutdown_slot" => op::SHUTDOWN_SLOT,
        "terminate" => op::TERMINATE,
        "server_info" => op::SERVER_INFO,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let p = FaultPolicy::parse("seed=7, delay_ms=5, ingest.truncate=0.25, *.error=0.01")
            .expect("valid spec");
        assert_eq!(p.seed, 7);
        assert_eq!(p.delay, Duration::from_millis(5));
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].opcode, Some(op::INGEST));
        assert_eq!(p.rules[0].kind, FaultKind::Truncate);
        assert_eq!(p.rules[1].opcode, None);
        assert!(p.is_armed());
        assert!(!FaultPolicy::parse("seed=3").expect("seed only").is_armed());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPolicy::parse("ingest.truncate").is_err(), "no value");
        assert!(FaultPolicy::parse("warp.drop=0.5").is_err(), "bad opcode");
        assert!(FaultPolicy::parse("ingest.melt=0.5").is_err(), "bad kind");
        assert!(
            FaultPolicy::parse("ingest.drop=1.5").is_err(),
            "probability outside [0, 1]"
        );
        assert!(FaultPolicy::parse("seed=banana").is_err(), "bad seed");
    }

    #[test]
    fn decisions_are_deterministic_and_scoped_to_matching_opcodes() {
        let p = FaultPolicy::parse("seed=42, ingest.truncate=0.5").expect("valid");
        let run = |p: &FaultPolicy| {
            let mut counter = p.seed;
            (0..64)
                .map(|_| {
                    p.decide(op::INGEST, || {
                        counter = counter.wrapping_add(1);
                        splitmix(counter)
                    })
                })
                .collect::<Vec<_>>()
        };
        let a = run(&p);
        let b = run(&p);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().any(|d| d.is_some()), "p = 0.5 over 64 draws");
        assert!(a.iter().any(|d| d.is_none()));
        // A non-matching opcode never draws and never faults.
        let mut draws = 0;
        assert_eq!(
            p.decide(op::FLUSH, || {
                draws += 1;
                0
            }),
            None
        );
        assert_eq!(draws, 0, "non-matching rules must not consume the stream");
    }

    #[test]
    fn specific_rules_win_over_wildcards_in_clause_order() {
        let p = FaultPolicy::parse("ingest.drop=1.0, *.error=1.0").expect("valid");
        assert_eq!(p.decide(op::INGEST, || 0), Some(FaultKind::Drop));
        assert_eq!(p.decide(op::FLUSH, || 0), Some(FaultKind::ErrorReply));
    }
}

//! Fleet supervision: checkpoint snapshots, health probes, and the
//! automatic respawn/re-seed state machine.
//!
//! The serve router's answer to a shard dying mid-stream. Each remote
//! worker is wrapped in a [`SupervisedShard`], which keeps two pieces of
//! recovery state beside the live [`TcpShard`]:
//!
//! * **last good baseline** — refreshed by the [`Supervisor`] on a
//!   window cadence (and whenever anything else asks the shard for its
//!   section), this is the byte-exact baseline a replacement slot is
//!   re-seeded from. Once anchored via `CHECKPOINT_BASE` the baseline
//!   is a base checkpoint plus a bounded delta chain: refreshes ask
//!   `DELTA_SINCE(tip)` and ship only changed bytes, and the supervisor
//!   compacts the chain locally when its cost exceeds a full snapshot;
//! * **replay journal** — every snapshot ingested since that baseline,
//!   in order. Bounded: past [`SupervisorConfig::journal_limit`] the
//!   shard first tries to refresh its baseline (which empties the
//!   journal); if the shard is unreachable the journal is declared
//!   overflowed and recovery escalates a typed error instead of
//!   replaying an incomplete history.
//!
//! When an ingest fails with a `Net`-kinded error — connection gone,
//! truncated frame, or the server answering "no such slot" after a
//! restart — the shard runs the recovery state machine: reconnect with
//! capped exponential backoff plus seeded jitter, `SHUTDOWN_SLOT` (idempotent)
//! to clear any half-alive slot, `INIT` from the baseline, re-key the
//! generation, then replay the journal in ingest order. Because
//! checkpoint restore is byte-exact and solves are deterministic, the
//! recovered slot reconverges *bit-identically* with a never-faulted
//! run — the chaos tests assert exactly that.
//!
//! The [`Supervisor`] itself is a small control loop over the wrapped
//! fleet: per-shard ping probes with a consecutive-failure threshold
//! (crossing it triggers the same recovery path, so a silently dead
//! shard is rebuilt before the next ingest trips over it), and periodic
//! fleet-wide checkpoint refreshes driven by [`Supervisor::tick`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tgs_core::{TgsError, TgsErrorKind};
use tgs_engine::query::{ClusterSummary, TimelineEntry, UserSentiment};
use tgs_engine::{EngineSnapshot, EngineStats, RecoveryCounters, ShardTransport};
use tgs_linalg::DenseMatrix;

use tgs_engine::{CheckpointDelta, DeltaChain, EngineCheckpoint};

use crate::client::TcpShard;
use crate::fault::splitmix;

/// Tuning for the supervision layer. Defaults suit tests and the CLI;
/// the chaos harness tightens the probe cadence.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Refresh every shard's baseline checkpoint section after this many
    /// [`Supervisor::tick`] calls (one per ingested window).
    pub checkpoint_every: u64,
    /// Sleep between health-probe sweeps of the fleet.
    pub probe_interval: Duration,
    /// Consecutive probe failures before a shard is declared dead and
    /// recovered proactively.
    pub fail_threshold: u32,
    /// Maximum rebuild attempts per recovery episode.
    pub recover_attempts: u32,
    /// Base backoff between rebuild attempts; doubles per attempt, with
    /// seeded jitter in `[base/2, base]`.
    pub recover_backoff: Duration,
    /// Hard wall-clock cap on one recovery episode.
    pub recover_deadline: Duration,
    /// Snapshots the replay journal may hold before the shard must
    /// refresh its baseline (or declare overflow).
    pub journal_limit: usize,
    /// Seed for recovery-backoff jitter.
    pub jitter_seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 8,
            probe_interval: Duration::from_secs(1),
            fail_threshold: 3,
            recover_attempts: 12,
            recover_backoff: Duration::from_millis(50),
            recover_deadline: Duration::from_secs(30),
            journal_limit: 64,
            jitter_seed: 0x5EED_0F0F_CAFE_D00D,
        }
    }
}

/// The re-seed baseline a slot keeps beside its replay journal.
///
/// A deploy-time section has no server-side mark id, so it can only be
/// refreshed wholesale; once a refresh goes through `CHECKPOINT_BASE`
/// the slot holds a [`DeltaChain`] instead and subsequent refreshes
/// ship only `DELTA_SINCE(tip)` bytes, compacting locally when the
/// accumulated deltas outgrow the base.
enum Baseline {
    /// Full checkpoint bytes with no delta anchor.
    Section(Vec<u8>),
    /// Delta-capable: base checkpoint plus the chain of applied deltas,
    /// keyed by the server-side mark id at its tip.
    Chain(DeltaChain),
}

impl Baseline {
    /// The byte-exact section a replacement slot is seeded from.
    fn materialize(&self) -> Result<Vec<u8>, TgsError> {
        match self {
            Baseline::Section(bytes) => Ok(bytes.clone()),
            Baseline::Chain(chain) => Ok(chain.materialize()?.as_bytes().to_vec()),
        }
    }
}

/// Per-slot recovery state guarded by one mutex (all of it changes
/// together on the ingest/recover path).
#[derive(Default)]
struct SlotState {
    /// Byte-exact baseline a replacement slot is re-seeded from.
    last_good: Option<Baseline>,
    /// Snapshots ingested since `last_good`, in order.
    journal: Vec<EngineSnapshot>,
    /// Set when user ranges moved through this shard (export / import /
    /// absorb / sibling spawn): the journal can no longer reproduce the
    /// slot from the baseline, so recovery must escalate until the next
    /// successful checkpoint refresh re-anchors it.
    stale: bool,
    /// Set when the journal hit its bound while the shard was
    /// unreachable; replay would be incomplete, so recovery escalates.
    overflowed: bool,
}

/// A [`TcpShard`] wrapped with the respawn/re-seed state machine (see
/// the module docs).
pub struct SupervisedShard {
    inner: Arc<TcpShard>,
    cfg: SupervisorConfig,
    counters: Arc<RecoveryCounters>,
    /// Highest generation seen — what a rebuilt slot is re-keyed to.
    generation: AtomicU64,
    state: Mutex<SlotState>,
    /// Jitter stream for recovery backoff.
    rng: AtomicU64,
}

impl SupervisedShard {
    /// Wraps `inner`. `baseline` is the checkpoint section the slot was
    /// deployed from — recovery can re-seed immediately, before the
    /// first periodic refresh.
    pub fn new(
        inner: Arc<TcpShard>,
        baseline: Option<Vec<u8>>,
        counters: Arc<RecoveryCounters>,
        cfg: SupervisorConfig,
    ) -> Arc<Self> {
        let rng = splitmix(cfg.jitter_seed ^ inner.slot().rotate_left(23) ^ 0x9E37);
        Arc::new(Self {
            inner,
            cfg,
            counters,
            generation: AtomicU64::new(0),
            state: Mutex::new(SlotState {
                last_good: baseline.map(Baseline::Section),
                ..Default::default()
            }),
            rng: AtomicU64::new(rng),
        })
    }

    /// The supervised remote endpoint.
    pub fn endpoint(&self) -> &Arc<TcpShard> {
        &self.inner
    }

    /// One health probe (a wire `PING`).
    pub fn probe(&self) -> Result<(), TgsError> {
        self.inner.ping()
    }

    /// Runs the recovery state machine without a pending snapshot —
    /// the supervisor's proactive path when probes cross the failure
    /// threshold.
    pub fn recover(&self) -> Result<(), TgsError> {
        self.recover_and_replay(self.generation.load(Ordering::Relaxed), None)
    }

    fn next_jitter(&self) -> u64 {
        let mut z = self.rng.load(Ordering::Relaxed);
        z = splitmix(z);
        self.rng.store(z, Ordering::Relaxed);
        z
    }

    /// `[base/2, base]`, seeded — recoveries across shards desynchronise
    /// instead of hammering a restarting server in lockstep.
    fn jittered(&self, backoff: Duration) -> Duration {
        let nanos = backoff.as_nanos().min(u128::from(u64::MAX)) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        let half = nanos / 2;
        Duration::from_nanos(half + self.next_jitter() % (nanos - half + 1))
    }

    /// Advances the slot's baseline to the shard's current state,
    /// shipping only changed bytes when possible.
    ///
    /// With a delta-capable baseline this asks `DELTA_SINCE(tip)` and
    /// appends the answer to the local chain (compacting when the chain
    /// outgrows the base); an unavailable mark — aged out, or the slot
    /// was respawned with fresh marks — falls back to a full
    /// `CHECKPOINT_BASE`, which also re-anchors delta capability for a
    /// slot deployed from a plain section.
    fn refresh_locked(&self, state: &mut SlotState) -> Result<(), TgsError> {
        if let Some(Baseline::Chain(chain)) = &mut state.last_good {
            match self.inner.delta_since(chain.tip()?) {
                Ok(Some(bytes)) => {
                    let delta = CheckpointDelta::from_bytes(bytes);
                    chain.push(delta)?;
                    state.journal.clear();
                    state.stale = false;
                    state.overflowed = false;
                    self.counters
                        .delta_refreshes
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                // Mark unknown on the server: fall through to a full
                // base rather than failing the refresh.
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        let (id, section) = self.inner.checkpoint_base()?;
        state.last_good = Some(Baseline::Chain(DeltaChain::new(
            id,
            EngineCheckpoint::from_bytes(section),
        )));
        state.journal.clear();
        state.stale = false;
        state.overflowed = false;
        Ok(())
    }

    /// Public refresh entry point (the [`Supervisor`]'s checkpoint
    /// cadence lands here): delta-first baseline advance.
    pub fn refresh_baseline(&self) -> Result<(), TgsError> {
        let mut state = self.state.lock();
        self.refresh_locked(&mut state)
    }

    /// Records a successfully ingested snapshot in the journal,
    /// refreshing the baseline when the journal hits its bound.
    fn record(&self, snapshot: EngineSnapshot) -> Result<(), TgsError> {
        let mut state = self.state.lock();
        state.journal.push(snapshot);
        if state.journal.len() <= self.cfg.journal_limit {
            return Ok(());
        }
        // Bound reached: fold the journal into a fresh baseline (the
        // refresh drains the worker queue first, so everything in the
        // journal is already covered by the state we anchor to).
        match self.refresh_locked(&mut state) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Unreachable shard with a full journal: any future
                // replay would be incomplete. Escalate rather than
                // silently dropping history.
                state.journal.clear();
                state.overflowed = true;
                Err(TgsError::net(
                    self.inner.peer(),
                    format!(
                        "replay journal overflowed ({} snapshots) and baseline refresh failed: {e}",
                        self.cfg.journal_limit
                    ),
                ))
            }
        }
    }

    /// The recovery state machine: backoff-with-jitter loop around
    /// [`SupervisedShard::try_rebuild`], bounded by attempts and a
    /// wall-clock deadline.
    fn recover_and_replay(
        &self,
        generation: u64,
        pending: Option<EngineSnapshot>,
    ) -> Result<(), TgsError> {
        let mut state = self.state.lock();
        if state.stale {
            return Err(TgsError::net(
                self.inner.peer(),
                "cannot recover: user ranges moved since the last checkpoint (journal is stale)",
            ));
        }
        if state.overflowed {
            return Err(TgsError::net(
                self.inner.peer(),
                "cannot recover: replay journal overflowed while the shard was unreachable",
            ));
        }
        let baseline = match &state.last_good {
            Some(b) => b.materialize()?,
            None => {
                return Err(TgsError::net(
                    self.inner.peer(),
                    "cannot recover: no checkpoint baseline recorded for this slot",
                ));
            }
        };

        let started = Instant::now();
        let mut backoff = self.cfg.recover_backoff;
        let mut last_err = None;
        for attempt in 0..self.cfg.recover_attempts.max(1) {
            if attempt > 0 {
                let wait = self.jittered(backoff);
                if started.elapsed() + wait >= self.cfg.recover_deadline {
                    break;
                }
                std::thread::sleep(wait);
                backoff = backoff.saturating_mul(2);
            }
            match self.try_rebuild(generation, &baseline, &state.journal, pending.as_ref()) {
                Ok(replayed) => {
                    if let Some(snapshot) = pending {
                        state.journal.push(snapshot);
                    }
                    // The respawned slot is a fresh engine with fresh
                    // delta marks — a chain tip id kept across the
                    // rebuild could collide with a newly minted mark on
                    // unrelated state. Demote to a plain section; the
                    // next refresh re-anchors delta capability with a
                    // full CHECKPOINT_BASE.
                    state.last_good = Some(Baseline::Section(baseline));
                    self.counters.respawns.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .replayed_docs
                        .fetch_add(replayed, Ordering::Relaxed);
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            TgsError::net(self.inner.peer(), "recovery gave up before first attempt")
        }))
    }

    /// One rebuild attempt: reconnect, clear the slot, re-seed from the
    /// baseline, re-key the generation, replay the journal in order.
    /// Returns the number of replayed documents.
    fn try_rebuild(
        &self,
        generation: u64,
        baseline: &[u8],
        journal: &[EngineSnapshot],
        pending: Option<&EngineSnapshot>,
    ) -> Result<u64, TgsError> {
        // Drop any wedged connection so the next call re-dials.
        self.inner.disconnect();
        self.inner.ping()?;
        // SHUTDOWN_SLOT is idempotent: clears a half-alive slot on a
        // surviving server, no-ops on a freshly restarted (empty) one.
        self.inner.shutdown()?;
        self.inner.init(baseline)?;
        self.inner.set_generation(generation)?;
        let mut replayed = 0u64;
        for snapshot in journal.iter().chain(pending) {
            replayed += snapshot.len() as u64;
            self.inner.ingest(generation, snapshot.clone())?;
        }
        // Drain the replay before declaring the slot recovered, so the
        // caller's next query sees the reconverged state.
        self.inner.flush()?;
        Ok(replayed)
    }

    /// Whether `e` means "the slot is gone but a rebuild could bring it
    /// back" — the class recovery keys on.
    fn recoverable(e: &TgsError) -> bool {
        e.kind() == TgsErrorKind::Net
    }
}

impl ShardTransport for SupervisedShard {
    fn ingest(&self, generation: u64, snapshot: EngineSnapshot) -> Result<(), TgsError> {
        self.generation.fetch_max(generation, Ordering::Relaxed);
        match self.inner.ingest(generation, snapshot.clone()) {
            Ok(()) => self.record(snapshot),
            Err(e) if Self::recoverable(&e) => self.recover_and_replay(generation, Some(snapshot)),
            Err(e) => Err(e),
        }
    }

    fn timeline(&self, generation: u64, lo: u64, hi: u64) -> Result<Vec<TimelineEntry>, TgsError> {
        self.inner.timeline(generation, lo, hi)
    }

    fn latest_timestamp(&self, generation: u64) -> Result<Option<u64>, TgsError> {
        self.inner.latest_timestamp(generation)
    }

    fn user_sentiment(
        &self,
        generation: u64,
        user: usize,
        at: u64,
    ) -> Result<UserSentiment, TgsError> {
        self.inner.user_sentiment(generation, user, at)
    }

    fn user_timeline(
        &self,
        generation: u64,
        user: usize,
    ) -> Result<Vec<(u64, Vec<f64>)>, TgsError> {
        self.inner.user_timeline(generation, user)
    }

    fn known_users(&self, generation: u64) -> Result<usize, TgsError> {
        self.inner.known_users(generation)
    }

    fn cluster_summary(&self, generation: u64, t: u64) -> Result<ClusterSummary, TgsError> {
        self.inner.cluster_summary(generation, t)
    }

    fn sf_at(&self, generation: u64, t: u64) -> Result<DenseMatrix, TgsError> {
        self.inner.sf_at(generation, t)
    }

    fn flush(&self) -> Result<u64, TgsError> {
        self.inner.flush()
    }

    fn stats(&self) -> Result<EngineStats, TgsError> {
        self.inner.stats()
    }

    fn queue_has_room(&self) -> Result<bool, TgsError> {
        self.inner.queue_has_room()
    }

    fn timestamps(&self) -> Result<Vec<u64>, TgsError> {
        self.inner.timestamps()
    }

    fn k(&self) -> Result<usize, TgsError> {
        self.inner.k()
    }

    fn vocab_tokens(&self) -> Result<Vec<String>, TgsError> {
        self.inner.vocab_tokens()
    }

    fn user_factor(&self, user: usize) -> Result<Option<Vec<f64>>, TgsError> {
        self.inner.user_factor(user)
    }

    fn checkpoint_section(&self) -> Result<Vec<u8>, TgsError> {
        // Same bytes as a plain section read, but `CHECKPOINT_BASE`
        // also mints a delta mark — so a full fetch doubles as the
        // anchor for O(changes) refreshes afterwards.
        let (id, section) = self.inner.checkpoint_base()?;
        let mut state = self.state.lock();
        state.last_good = Some(Baseline::Chain(DeltaChain::new(
            id,
            EngineCheckpoint::from_bytes(section.clone()),
        )));
        state.journal.clear();
        state.stale = false;
        state.overflowed = false;
        Ok(section)
    }

    fn checkpoint_base(&self) -> Result<(u64, Vec<u8>), TgsError> {
        let (id, section) = self.inner.checkpoint_base()?;
        let mut state = self.state.lock();
        state.last_good = Some(Baseline::Chain(DeltaChain::new(
            id,
            EngineCheckpoint::from_bytes(section.clone()),
        )));
        state.journal.clear();
        state.stale = false;
        state.overflowed = false;
        Ok((id, section))
    }

    fn delta_since(&self, base_id: u64) -> Result<Option<Vec<u8>>, TgsError> {
        // Pass-through: the caller's base id is their own anchor, not
        // this slot's local chain tip.
        self.inner.delta_since(base_id)
    }

    fn export_users(&self, lo: usize, hi: usize) -> Result<Vec<u8>, TgsError> {
        let out = self.inner.export_users(lo, hi)?;
        // User rows left this slot: the baseline+journal pair no longer
        // reproduces it. Stale until the next checkpoint refresh.
        self.state.lock().stale = true;
        Ok(out)
    }

    fn import_users(&self, users: &[u8]) -> Result<(), TgsError> {
        self.inner.import_users(users)?;
        self.state.lock().stale = true;
        Ok(())
    }

    fn spawn_sibling(&self) -> Result<Arc<dyn ShardTransport>, TgsError> {
        let sibling = self.inner.spawn_sibling()?;
        self.state.lock().stale = true;
        Ok(sibling)
    }

    fn absorb_section(&self, section: &[u8]) -> Result<(), TgsError> {
        self.inner.absorb_section(section)?;
        self.state.lock().stale = true;
        Ok(())
    }

    fn set_generation(&self, generation: u64) -> Result<(), TgsError> {
        self.generation.fetch_max(generation, Ordering::Relaxed);
        self.inner.set_generation(generation)
    }

    fn request_core_set(&self, set_index: usize, n_sets: usize) {
        self.inner.request_core_set(set_index, n_sets);
    }

    fn shutdown(&self) -> Result<(), TgsError> {
        self.inner.shutdown()
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }
}

/// The fleet-wide control loop: periodic checkpoint refreshes (driven by
/// [`Supervisor::tick`] from the ingest loop) and a background probe
/// thread with threshold-triggered proactive recovery.
pub struct Supervisor {
    shards: Vec<Arc<SupervisedShard>>,
    counters: Arc<RecoveryCounters>,
    cfg: SupervisorConfig,
    windows: AtomicU64,
    fail_counts: Mutex<Vec<u32>>,
    stop: Arc<AtomicBool>,
    probe_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Supervisor {
    /// Builds a supervisor over an already-wrapped fleet.
    pub fn new(
        shards: Vec<Arc<SupervisedShard>>,
        counters: Arc<RecoveryCounters>,
        cfg: SupervisorConfig,
    ) -> Arc<Self> {
        let n = shards.len();
        Arc::new(Self {
            shards,
            counters,
            cfg,
            windows: AtomicU64::new(0),
            fail_counts: Mutex::new(vec![0; n]),
            stop: Arc::new(AtomicBool::new(false)),
            probe_thread: Mutex::new(None),
        })
    }

    /// The shared recovery counters (also overlaid onto the router's
    /// merged [`EngineStats`]).
    pub fn counters(&self) -> Arc<RecoveryCounters> {
        Arc::clone(&self.counters)
    }

    /// Notes one ingested window; every
    /// [`SupervisorConfig::checkpoint_every`]-th call refreshes the
    /// fleet's checkpoint baselines.
    pub fn tick(&self) {
        let n = self.windows.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.cfg.checkpoint_every.max(1)) {
            self.refresh_checkpoints();
        }
    }

    /// Best-effort fleet-wide baseline refresh (on-quiesce entry point:
    /// the CLI calls this once after the stream drains). Delta-first:
    /// anchored shards ship only changed bytes. A shard that is down
    /// keeps its previous baseline — recovery re-seeds from that and
    /// replays the journal instead.
    pub fn refresh_checkpoints(&self) {
        for shard in &self.shards {
            let _ = shard.refresh_baseline();
        }
    }

    /// One probe sweep: ping every shard, count consecutive failures,
    /// and proactively recover any shard that crossed the threshold.
    pub fn probe_once(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            let healthy = shard.probe().is_ok();
            let mut fails = self.fail_counts.lock();
            if healthy {
                fails[i] = 0;
                continue;
            }
            fails[i] += 1;
            if fails[i] >= self.cfg.fail_threshold.max(1) {
                fails[i] = 0;
                drop(fails);
                let _ = shard.recover();
            }
        }
    }

    /// Starts the background probe loop. Idempotent; stopped by
    /// [`Supervisor::stop`].
    pub fn start_probes(self: &Arc<Self>) {
        let mut guard = self.probe_thread.lock();
        if guard.is_some() {
            return;
        }
        let sup = Arc::clone(self);
        let stop = Arc::clone(&self.stop);
        *guard = Some(std::thread::spawn(move || {
            // Sleep in short slices so stop() returns promptly even
            // with a slow probe cadence.
            let slice = Duration::from_millis(25);
            while !stop.load(Ordering::Relaxed) {
                sup.probe_once();
                let mut slept = Duration::ZERO;
                while slept < sup.cfg.probe_interval && !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(slice.min(sup.cfg.probe_interval - slept));
                    slept += slice;
                }
            }
        }));
    }

    /// Stops and joins the probe loop (no-op if it never started).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.probe_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.probe_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

//! The remote [`ShardTransport`]: one lazily-dialed TCP connection per
//! shard slot, with bounded reconnect/backoff and per-call timeouts so
//! a dropped peer surfaces as a typed [`TgsError::Net`] instead of a
//! hang or a panic.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tgs_core::TgsError;
use tgs_engine::{
    ClusterSummary, EngineSnapshot, EngineStats, ShardTransport, TimelineEntry, UserSentiment,
};
use tgs_linalg::DenseMatrix;

use crate::fault::{splitmix, FaultKind, FaultPolicy};
use crate::frame::{read_response, write_request, STATUS_ERR, STATUS_OK};
use crate::wire::{self, op, Rd, Wr};

/// Timeouts and retry budget for one [`TcpShard`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Budget for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Read/write budget per wire call, shared by request and response.
    pub io_timeout: Duration,
    /// Dial (and, for idempotent calls, resend) attempts per call.
    pub reconnect_attempts: u32,
    /// Backoff before the first retry; doubles each further attempt,
    /// with the actual sleep drawn from `[backoff/2, backoff]` off a
    /// seeded per-handle stream so fleet-wide reconnects desynchronize.
    pub backoff_base: Duration,
    /// Total wall-clock budget across all retries of one call: once a
    /// call has been failing this long, the next retry is abandoned and
    /// the last error surfaces instead.
    pub retry_deadline: Duration,
    /// Seed for the backoff-jitter stream. Mixed with the handle's
    /// address and slot so no two handles share a schedule.
    pub jitter_seed: u64,
    /// Fault-injection schedule (tests and chaos drills only). The
    /// default picks this up from the `TGS_FAULTS` environment variable.
    pub faults: Option<FaultPolicy>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(10),
            reconnect_attempts: 3,
            backoff_base: Duration::from_millis(50),
            retry_deadline: Duration::from_secs(30),
            jitter_seed: 0xA5A5_5EED_0F0F_77C3,
            faults: FaultPolicy::from_env(),
        }
    }
}

/// Whether a failed call may be transparently retried on a fresh
/// connection. Before the request frame is fully written the server
/// cannot have acted, so every call is retry-safe; afterwards only
/// idempotent calls are (a re-sent `ingest` would double-count a
/// snapshot if the first one landed and the response was lost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Retry {
    Idempotent,
    OnceOnly,
}

fn retry_class(opcode: u8) -> Retry {
    match opcode {
        // Pure reads, liveness, and monotone or idempotent control ops.
        op::PING
        | op::FLUSH
        | op::STATS
        | op::TIMESTAMPS
        | op::TIMELINE
        | op::LATEST_TIMESTAMP
        | op::USER_SENTIMENT
        | op::USER_TIMELINE
        | op::KNOWN_USERS
        | op::CLUSTER_SUMMARY
        | op::SF_AT
        | op::K
        | op::VOCAB_TOKENS
        | op::USER_FACTOR
        | op::CHECKPOINT_SECTION
        // Delta ops are idempotent by construction: re-asking the same
        // base id yields an equivalent delta under a fresh mark id, and
        // a lost reply's orphaned mark just ages out of the retention
        // window.
        | op::CHECKPOINT_BASE
        | op::DELTA_SINCE
        | op::SET_GENERATION
        | op::SHUTDOWN_SLOT
        | op::TERMINATE
        | op::SERVER_INFO => Retry::Idempotent,
        // State-mutating calls whose replay would not be a no-op.
        _ => Retry::OnceOnly,
    }
}

/// FNV-1a over a handle's address bytes, mixed into its jitter seed so
/// handles dialing different servers never share a backoff schedule.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A TCP [`ShardTransport`] handle addressing one engine slot on a
/// `tgs shard` server. Cloneable via `Arc`; the connection is dialed
/// lazily on first use and re-dialed (with bounded backoff) after a
/// failure, so constructing a handle before its server is up is fine.
pub struct TcpShard {
    addr: String,
    slot: u64,
    cfg: NetConfig,
    conn: Mutex<Option<TcpStream>>,
    /// Counter behind the backoff-jitter stream (keyed by address+slot).
    jitter: AtomicU64,
    /// Counter behind the fault-decision stream. Keyed by the policy
    /// seed and the slot only — never the address, whose ephemeral port
    /// would change between runs and break chaos-run determinism.
    fault_rng: AtomicU64,
}

impl TcpShard {
    /// A handle to `slot` on the server at `addr` (no IO happens here).
    pub fn new(addr: impl Into<String>, slot: u64, cfg: NetConfig) -> Self {
        let addr = addr.into();
        let jitter_base = cfg.jitter_seed ^ fnv1a(addr.as_bytes()) ^ slot.rotate_left(17);
        let fault_base = cfg
            .faults
            .as_ref()
            .map(|p| splitmix(p.seed ^ slot.wrapping_mul(0x9E37_79B9)))
            .unwrap_or(0);
        Self {
            addr,
            slot,
            cfg,
            conn: Mutex::new(None),
            jitter: AtomicU64::new(jitter_base),
            fault_rng: AtomicU64::new(fault_base),
        }
    }

    /// A handle to slot 0 with default timeouts.
    pub fn connect(addr: impl Into<String>) -> Self {
        Self::new(addr, 0, NetConfig::default())
    }

    /// The server address this handle dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The engine slot this handle addresses.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Drops the cached connection so the next call dials fresh. Used
    /// by fleet tooling that knows the peer is about to restart: closing
    /// client-side first leaves the TIME_WAIT on this end's ephemeral
    /// port, keeping the server's listen port immediately rebindable.
    pub fn disconnect(&self) {
        *self.conn.lock() = None;
    }

    fn net_err(&self, detail: impl Into<String>) -> TgsError {
        TgsError::net(self.peer(), detail.into())
    }

    /// Next value of the seeded fault-decision stream.
    fn next_fault_draw(&self) -> u64 {
        splitmix(self.fault_rng.fetch_add(1, Ordering::Relaxed))
    }

    /// A sleep drawn uniformly from `[backoff/2, backoff]` off this
    /// handle's seeded jitter stream.
    fn jittered(&self, backoff: Duration) -> Duration {
        let nanos = backoff.as_nanos().min(u128::from(u64::MAX)) as u64;
        let half = nanos / 2;
        let draw = splitmix(self.jitter.fetch_add(1, Ordering::Relaxed));
        Duration::from_nanos(half + draw % (nanos - half + 1))
    }

    /// Consults the configured [`FaultPolicy`] for one call. `Ok(None)`
    /// means proceed normally (possibly after an injected delay); the
    /// other arms short-circuit `attempt` with the injected outcome.
    #[allow(clippy::type_complexity)]
    fn inject_fault(&self, opcode: u8) -> Result<Option<(u8, Vec<u8>)>, (bool, TgsError)> {
        let Some(policy) = self.cfg.faults.as_ref() else {
            return Ok(None);
        };
        match policy.decide(opcode, || self.next_fault_draw()) {
            None => Ok(None),
            Some(FaultKind::Delay) => {
                std::thread::sleep(policy.delay);
                Ok(None)
            }
            Some(FaultKind::Drop) => {
                // Connection lost before the request left: provably
                // unsent, so the retry loop may transparently resend.
                *self.conn.lock() = None;
                Err((
                    false,
                    self.net_err("injected fault: connection dropped before send"),
                ))
            }
            Some(FaultKind::ErrorReply) => Ok(Some((
                STATUS_ERR,
                wire::enc_error(&self.net_err("injected fault: synthetic error reply")),
            ))),
            Some(FaultKind::Truncate) => {
                let mut guard = self.conn.lock();
                if guard.is_none() {
                    *guard = Some(self.dial().map_err(|e| (false, e))?);
                }
                let stream = guard.as_mut().expect("dialed above");
                // Half a length prefix, then hang up: real bytes hit the
                // socket but can never parse as a request. Reported as
                // `sent` so non-idempotent calls escalate to supervision
                // instead of retrying.
                let _ = std::io::Write::write_all(stream, &[0x02, 0x00]);
                *guard = None;
                Err((
                    true,
                    self.net_err("injected fault: request frame truncated mid-write"),
                ))
            }
        }
    }

    fn dial(&self) -> Result<TcpStream, TgsError> {
        let mut last = None;
        for addr in std::net::ToSocketAddrs::to_socket_addrs(self.addr.as_str())
            .map_err(|e| self.net_err(format!("cannot resolve address: {e}")))?
        {
            match TcpStream::connect_timeout(&addr, self.cfg.connect_timeout) {
                Ok(stream) => {
                    stream
                        .set_nodelay(true)
                        .map_err(|e| self.net_err(format!("cannot set TCP_NODELAY: {e}")))?;
                    stream
                        .set_read_timeout(Some(self.cfg.io_timeout))
                        .and_then(|()| stream.set_write_timeout(Some(self.cfg.io_timeout)))
                        .map_err(|e| self.net_err(format!("cannot set IO timeouts: {e}")))?;
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(self.net_err(match last {
            Some(e) => format!("connect failed: {e}"),
            None => "address resolved to nothing".to_string(),
        }))
    }

    /// One attempt: reuse or dial a connection, write the request, read
    /// the response. On failure reports whether the request frame had
    /// been fully written (`sent`) — a partially-written frame can never
    /// be parsed as a request, so `sent == false` is always retry-safe.
    fn attempt(
        &self,
        opcode: u8,
        generation: u64,
        payload: &[u8],
    ) -> Result<(u8, Vec<u8>), (bool, TgsError)> {
        if let Some(reply) = self.inject_fault(opcode)? {
            return Ok(reply);
        }
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(self.dial().map_err(|e| (false, e))?);
        }
        let stream = guard.as_mut().expect("dialed above");
        if let Err(e) = write_request(stream, opcode, generation, self.slot, payload) {
            *guard = None;
            return Err((false, self.net_err(format!("send failed: {e}"))));
        }
        match read_response(stream) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                *guard = None;
                Err((true, self.net_err(format!("receive failed: {e}"))))
            }
        }
    }

    /// Full call: attempt with bounded reconnect/backoff, decode the
    /// status, and hand the `STATUS_OK` payload to `parse`.
    fn call<T>(
        &self,
        opcode: u8,
        generation: u64,
        payload: &[u8],
        parse: impl FnOnce(&[u8]) -> Result<T, String>,
    ) -> Result<T, TgsError> {
        let started = Instant::now();
        let mut backoff = self.cfg.backoff_base;
        let mut attempt_no = 0u32;
        let (status, body) = loop {
            match self.attempt(opcode, generation, payload) {
                Ok(reply) => break reply,
                Err((sent, err)) => {
                    let retryable = !sent || retry_class(opcode) == Retry::Idempotent;
                    attempt_no += 1;
                    if !retryable || attempt_no >= self.cfg.reconnect_attempts.max(1) {
                        return Err(err);
                    }
                    let wait = self.jittered(backoff);
                    // Total-deadline cap: once this call has burned its
                    // wall-clock budget, surface the last error rather
                    // than sleeping into another attempt.
                    if started.elapsed() + wait >= self.cfg.retry_deadline {
                        return Err(err);
                    }
                    std::thread::sleep(wait);
                    backoff = backoff.saturating_mul(2);
                }
            }
        };
        match status {
            STATUS_OK => parse(&body).map_err(|d| self.net_err(format!("malformed response: {d}"))),
            STATUS_ERR => Err(wire::dec_error(&body, &self.peer())),
            other => Err(self.net_err(format!("unknown response status {other}"))),
        }
    }

    // --- server-management verbs (not part of ShardTransport) ---

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), TgsError> {
        self.call(op::PING, 0, &[], |_| Ok(()))
    }

    /// Creates this handle's slot on the server from a single-engine
    /// checkpoint section. Fails if the slot already exists.
    pub fn init(&self, section: &[u8]) -> Result<(), TgsError> {
        self.call(op::INIT, 0, section, |_| Ok(()))
    }

    /// Asks the server process to stop accepting and exit its serve
    /// loop after responding.
    pub fn terminate(&self) -> Result<(), TgsError> {
        self.call(op::TERMINATE, 0, &[], |_| Ok(()))
    }

    /// Server metadata: the declared user range (if any) and how many
    /// slots are live.
    pub fn server_info(&self) -> Result<ServerInfo, TgsError> {
        self.call(op::SERVER_INFO, 0, &[], |body| {
            let mut r = Rd::new(body);
            let range = match r.u8("range tag")? {
                0 => None,
                1 => Some((r.usize("range lo")?, r.usize("range hi")?)),
                t => return Err(format!("bad range tag {t}")),
            };
            let slots = r.usize("slot count")?;
            r.done()?;
            Ok(ServerInfo { range, slots })
        })
    }
}

/// Metadata reported by a `tgs shard` server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// The `--range lo..hi` the operator declared at launch, if any.
    pub range: Option<(usize, usize)>,
    /// Live engine slots on the server.
    pub slots: usize,
}

impl ShardTransport for TcpShard {
    fn ingest(&self, generation: u64, snapshot: EngineSnapshot) -> Result<(), TgsError> {
        self.call(
            op::INGEST,
            generation,
            &wire::enc_snapshot(&snapshot),
            |_| Ok(()),
        )
    }

    fn timeline(&self, generation: u64, lo: u64, hi: u64) -> Result<Vec<TimelineEntry>, TgsError> {
        let mut w = Wr::new();
        w.u64(lo);
        w.u64(hi);
        self.call(op::TIMELINE, generation, &w.finish(), wire::dec_timeline)
    }

    fn latest_timestamp(&self, generation: u64) -> Result<Option<u64>, TgsError> {
        self.call(op::LATEST_TIMESTAMP, generation, &[], wire::dec_opt_u64)
    }

    fn user_sentiment(
        &self,
        generation: u64,
        user: usize,
        at: u64,
    ) -> Result<UserSentiment, TgsError> {
        let mut w = Wr::new();
        w.usize(user);
        w.u64(at);
        self.call(
            op::USER_SENTIMENT,
            generation,
            &w.finish(),
            wire::dec_user_sentiment,
        )
    }

    fn user_timeline(
        &self,
        generation: u64,
        user: usize,
    ) -> Result<Vec<(u64, Vec<f64>)>, TgsError> {
        self.call(
            op::USER_TIMELINE,
            generation,
            &wire::enc_u64(user as u64),
            wire::dec_user_timeline,
        )
    }

    fn known_users(&self, generation: u64) -> Result<usize, TgsError> {
        self.call(op::KNOWN_USERS, generation, &[], |b| {
            wire::dec_u64(b).and_then(|v| {
                usize::try_from(v).map_err(|_| "user count exceeds usize".to_string())
            })
        })
    }

    fn cluster_summary(&self, generation: u64, t: u64) -> Result<ClusterSummary, TgsError> {
        self.call(
            op::CLUSTER_SUMMARY,
            generation,
            &wire::enc_u64(t),
            wire::dec_cluster_summary,
        )
    }

    fn sf_at(&self, generation: u64, t: u64) -> Result<DenseMatrix, TgsError> {
        self.call(op::SF_AT, generation, &wire::enc_u64(t), wire::dec_matrix)
    }

    fn flush(&self) -> Result<u64, TgsError> {
        self.call(op::FLUSH, 0, &[], wire::dec_u64)
    }

    fn stats(&self) -> Result<EngineStats, TgsError> {
        self.call(op::STATS, 0, &[], wire::dec_stats)
    }

    fn timestamps(&self) -> Result<Vec<u64>, TgsError> {
        self.call(op::TIMESTAMPS, 0, &[], wire::dec_u64s)
    }

    fn k(&self) -> Result<usize, TgsError> {
        self.call(op::K, 0, &[], |b| {
            wire::dec_u64(b)
                .and_then(|v| usize::try_from(v).map_err(|_| "k exceeds usize".to_string()))
        })
    }

    fn vocab_tokens(&self) -> Result<Vec<String>, TgsError> {
        self.call(op::VOCAB_TOKENS, 0, &[], wire::dec_strs)
    }

    fn user_factor(&self, user: usize) -> Result<Option<Vec<f64>>, TgsError> {
        self.call(
            op::USER_FACTOR,
            0,
            &wire::enc_u64(user as u64),
            wire::dec_opt_f64s,
        )
    }

    fn checkpoint_section(&self) -> Result<Vec<u8>, TgsError> {
        self.call(op::CHECKPOINT_SECTION, 0, &[], |b| Ok(b.to_vec()))
    }

    fn checkpoint_base(&self) -> Result<(u64, Vec<u8>), TgsError> {
        self.call(op::CHECKPOINT_BASE, 0, &[], wire::dec_id_bytes)
    }

    fn delta_since(&self, base_id: u64) -> Result<Option<Vec<u8>>, TgsError> {
        self.call(
            op::DELTA_SINCE,
            0,
            &wire::enc_u64(base_id),
            wire::dec_opt_bytes,
        )
    }

    fn export_users(&self, lo: usize, hi: usize) -> Result<Vec<u8>, TgsError> {
        let mut w = Wr::new();
        w.usize(lo);
        w.usize(hi);
        self.call(op::EXPORT_USERS, 0, &w.finish(), |b| Ok(b.to_vec()))
    }

    fn import_users(&self, users: &[u8]) -> Result<(), TgsError> {
        self.call(op::IMPORT_USERS, 0, users, |_| Ok(()))
    }

    fn spawn_sibling(&self) -> Result<Arc<dyn ShardTransport>, TgsError> {
        let slot = self.call(op::SPAWN_SIBLING, 0, &[], wire::dec_u64)?;
        Ok(Arc::new(TcpShard::new(
            self.addr.clone(),
            slot,
            self.cfg.clone(),
        )))
    }

    fn absorb_section(&self, section: &[u8]) -> Result<(), TgsError> {
        self.call(op::ABSORB_SECTION, 0, section, |_| Ok(()))
    }

    fn set_generation(&self, generation: u64) -> Result<(), TgsError> {
        self.call(
            op::SET_GENERATION,
            0,
            &wire::enc_u64(generation),
            |_| Ok(()),
        )
    }

    fn request_core_set(&self, _set_index: usize, _n_sets: usize) {
        // Remote workers pin within their own host's core budget; a
        // router-side set assignment is meaningless across machines.
    }

    fn shutdown(&self) -> Result<(), TgsError> {
        let out = self.call(op::SHUTDOWN_SLOT, 0, &[], |_| Ok(()));
        self.disconnect();
        out
    }

    fn peer(&self) -> String {
        format!("{}#{}", self.addr, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn test_cfg() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_millis(200),
            reconnect_attempts: 3,
            backoff_base: Duration::from_millis(10),
            retry_deadline: Duration::from_secs(5),
            jitter_seed: 1,
            faults: None,
        }
    }

    #[test]
    fn handles_are_lazy_and_fail_typed_when_no_server_listens() {
        // Port 1 on localhost: nothing listens there; connect refuses
        // fast. The constructor itself must do no IO.
        let shard = TcpShard::new("127.0.0.1:1", 0, test_cfg());
        let started = Instant::now();
        let err = shard.ping().expect_err("no server is listening");
        assert_eq!(err.kind(), tgs_core::TgsErrorKind::Net);
        // Three attempts with two sleeps between them, each jittered
        // into [backoff/2, backoff]: at least 5ms + 10ms of waiting.
        assert!(
            started.elapsed() >= Duration::from_millis(15),
            "backoff must actually wait"
        );
        assert_eq!(shard.peer(), "127.0.0.1:1#0");
    }

    #[test]
    fn retry_deadline_caps_total_backoff() {
        let cfg = NetConfig {
            reconnect_attempts: 1_000,
            backoff_base: Duration::from_millis(20),
            retry_deadline: Duration::from_millis(60),
            ..test_cfg()
        };
        let shard = TcpShard::new("127.0.0.1:1", 0, cfg);
        let started = Instant::now();
        let err = shard.ping().expect_err("no server is listening");
        assert_eq!(err.kind(), tgs_core::TgsErrorKind::Net);
        // 1000 attempts of doubling backoff would take minutes; the
        // deadline must cut the loop off almost immediately.
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "deadline must cap the retry loop"
        );
    }

    #[test]
    fn injected_error_reply_surfaces_typed_without_touching_the_network() {
        let cfg = NetConfig {
            faults: Some(FaultPolicy::parse("*.error=1.0").expect("valid spec")),
            ..test_cfg()
        };
        let shard = TcpShard::new("127.0.0.1:1", 0, cfg);
        let started = Instant::now();
        let err = shard.ping().expect_err("every call draws an error reply");
        assert_eq!(err.kind(), tgs_core::TgsErrorKind::Net);
        assert!(err.to_string().contains("injected fault"), "err: {err}");
        // No dial, no backoff: the reply is synthesized client-side.
        assert!(started.elapsed() < Duration::from_millis(150));
    }

    #[test]
    fn injected_drops_exhaust_the_retry_budget() {
        let cfg = NetConfig {
            reconnect_attempts: 2,
            backoff_base: Duration::from_millis(1),
            faults: Some(FaultPolicy::parse("ingest.drop=1.0").expect("valid spec")),
            ..test_cfg()
        };
        let shard = TcpShard::new("127.0.0.1:1", 0, cfg);
        // A dropped-before-send fault is provably unsent, so even the
        // non-idempotent INGEST retries — and then fails typed once the
        // budget runs out.
        let err = shard
            .ingest(0, tgs_engine::EngineSnapshot::default())
            .expect_err("every attempt drops the connection");
        assert_eq!(err.kind(), tgs_core::TgsErrorKind::Net);
        assert!(
            err.to_string().contains("dropped before send"),
            "err: {err}"
        );
    }

    #[test]
    fn non_idempotent_opcodes_are_classified() {
        for opc in [
            op::INGEST,
            op::INIT,
            op::IMPORT_USERS,
            op::EXPORT_USERS,
            op::SPAWN_SIBLING,
            op::ABSORB_SECTION,
        ] {
            assert_eq!(retry_class(opc), Retry::OnceOnly);
        }
        for opc in [op::TIMELINE, op::FLUSH, op::SET_GENERATION, op::PING] {
            assert_eq!(retry_class(opc), Retry::Idempotent);
        }
    }
}

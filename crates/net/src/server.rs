//! The `tgs shard` server: a TCP listener hosting engine slots.
//!
//! Each slot is a [`LocalShard`] (one [`SentimentEngine`] worker)
//! addressed by the `slot` field of every request frame. Slots are
//! created over the wire (`INIT` restores one from a checkpoint
//! section, `SPAWN_SIBLING` forks a cold sibling for a shard split), so
//! a server starts empty and the router deploys topology onto it. One
//! thread per connection; the listener polls non-blocking so a
//! `TERMINATE` request (or [`ShardServer::stop`]) shuts the loop down
//! cleanly.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tgs_core::TgsError;
use tgs_engine::{EngineCheckpoint, LocalShard, SentimentEngine, ShardTransport};

use crate::frame::{read_request, write_response, Request, STATUS_ERR, STATUS_OK};
use crate::wire::{self, op, Wr};

/// How often blocked readers and the accept loop re-check the stop
/// flag. Short enough for prompt shutdown, long enough to stay idle.
const POLL: Duration = Duration::from_millis(25);

struct Srv {
    range: Option<(usize, usize)>,
    slots: Mutex<HashMap<u64, Arc<dyn ShardTransport>>>,
    next_slot: AtomicU64,
    stop: AtomicBool,
}

/// A running shard host bound to one TCP address.
pub struct ShardServer {
    listener: TcpListener,
    srv: Arc<Srv>,
}

impl ShardServer {
    /// Binds the listener. `range` is the operator-declared user range
    /// (`--range lo..hi`), advisory metadata the router checks against
    /// its partition map at deploy time.
    pub fn bind(addr: &str, range: Option<(usize, usize)>) -> Result<Self, TgsError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| TgsError::net(addr, format!("cannot bind listener: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| TgsError::net(addr, format!("cannot set non-blocking accept: {e}")))?;
        Ok(Self {
            listener,
            srv: Arc::new(Srv {
                range,
                slots: Mutex::new(HashMap::new()),
                next_slot: AtomicU64::new(1),
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// The actually-bound address (resolves `:0` to the assigned port).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, TgsError> {
        self.listener
            .local_addr()
            .map_err(|e| TgsError::net("listener", format!("cannot read bound address: {e}")))
    }

    /// Hosts a pre-built engine under `slot` (the non-wire way to
    /// populate a server, used by embedding tests and tools).
    pub fn add_engine(&self, slot: u64, engine: SentimentEngine) -> Result<(), TgsError> {
        let mut slots = self.srv.slots.lock();
        if slots.contains_key(&slot) {
            return Err(TgsError::invalid_argument(format!(
                "slot {slot} already exists on this server"
            )));
        }
        slots.insert(slot, Arc::new(LocalShard::new(engine)));
        self.srv.next_slot.fetch_max(slot + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Hosts an arbitrary transport under `slot`. This is how `tgs
    /// serve --hold` exposes its whole fleet as one endpoint: the
    /// hosted transport is a router fanning requests back out to the
    /// real shards, not a single local engine.
    pub fn add_transport(
        &self,
        slot: u64,
        transport: Arc<dyn ShardTransport>,
    ) -> Result<(), TgsError> {
        let mut slots = self.srv.slots.lock();
        if slots.contains_key(&slot) {
            return Err(TgsError::invalid_argument(format!(
                "slot {slot} already exists on this server"
            )));
        }
        slots.insert(slot, transport);
        self.srv.next_slot.fetch_max(slot + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Asks the serve loop to wind down (same effect as a `TERMINATE`
    /// request). Safe from any thread.
    pub fn stop(&self) {
        self.srv.stop.store(true, Ordering::Relaxed);
    }

    /// Serves until terminated, then drains connection threads and
    /// shuts every hosted slot down. Blocks the calling thread.
    pub fn run(self) -> Result<(), TgsError> {
        let mut conns = Vec::new();
        while !self.srv.stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let srv = Arc::clone(&self.srv);
                    conns.push(std::thread::spawn(move || serve_conn(stream, srv)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.stop();
                    return Err(TgsError::net("listener", format!("accept failed: {e}")));
                }
            }
        }
        for conn in conns {
            let _ = conn.join();
        }
        // Final drain: surface nothing (teardown is best effort), but
        // give every worker the chance to flush pending ingests.
        for (_, shard) in self.srv.slots.lock().drain() {
            let _ = shard.shutdown();
        }
        Ok(())
    }
}

/// Serves one connection until EOF, a fatal IO error, or server stop.
fn serve_conn(mut stream: TcpStream, srv: Arc<Srv>) {
    // Once a frame has started arriving it is read under this budget;
    // the short POLL timeout only governs the idle wait, so a large
    // checkpoint body cannot be cut off by the stop-flag polling.
    const BODY_TIMEOUT: Duration = Duration::from_secs(30);
    if stream.set_nodelay(true).is_err() || stream.set_write_timeout(Some(BODY_TIMEOUT)).is_err() {
        return;
    }
    loop {
        if stream.set_read_timeout(Some(POLL)).is_err() {
            return;
        }
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // clean EOF
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if srv.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        if stream.set_read_timeout(Some(BODY_TIMEOUT)).is_err() {
            return;
        }
        let request = match read_request(&mut stream) {
            Ok(Some(request)) => request,
            Ok(None) | Err(_) => return,
        };
        let terminate = request.opcode == op::TERMINATE;
        let reply = dispatch(&srv, &request);
        let wrote = match reply {
            Ok(payload) => write_response(&mut stream, STATUS_OK, &payload),
            Err(e) => write_response(&mut stream, STATUS_ERR, &wire::enc_error(&e)),
        };
        if terminate {
            srv.stop.store(true, Ordering::Relaxed);
            return;
        }
        if wrote.is_err() {
            return;
        }
    }
}

fn bad_payload(detail: String) -> TgsError {
    TgsError::invalid_argument(format!("bad request payload: {detail}"))
}

fn slot_of(srv: &Srv, slot: u64) -> Result<Arc<dyn ShardTransport>, TgsError> {
    // A missing slot is a *Net*-kinded error, not InvalidArgument: the
    // router only addresses slots it deployed, so reaching an empty one
    // means the server restarted and lost its state — exactly the
    // condition the supervisor's respawn path must classify as
    // recoverable (see PROTOCOL.md, "Failure semantics").
    srv.slots.lock().get(&slot).cloned().ok_or_else(|| {
        TgsError::net(
            format!("slot {slot}"),
            "no such slot on this server (restarted or never initialised)",
        )
    })
}

fn dispatch(srv: &Srv, request: &Request) -> Result<Vec<u8>, TgsError> {
    let Request {
        opcode,
        generation,
        slot,
        ref payload,
    } = *request;
    match opcode {
        op::PING | op::TERMINATE => Ok(Vec::new()),
        op::SERVER_INFO => {
            let mut w = Wr::new();
            match srv.range {
                Some((lo, hi)) => {
                    w.u8(1);
                    w.usize(lo);
                    w.usize(hi);
                }
                None => w.u8(0),
            }
            w.usize(srv.slots.lock().len());
            Ok(w.finish())
        }
        op::INIT => {
            let engine = SentimentEngine::restore(&EngineCheckpoint::from_bytes(payload.clone()))?;
            let mut slots = srv.slots.lock();
            if slots.contains_key(&slot) {
                return Err(TgsError::invalid_argument(format!(
                    "slot {slot} already exists on this server"
                )));
            }
            slots.insert(slot, Arc::new(LocalShard::new(engine)));
            srv.next_slot.fetch_max(slot + 1, Ordering::Relaxed);
            Ok(Vec::new())
        }
        op::SHUTDOWN_SLOT => {
            // Idempotent: removing an absent slot is a success, so a
            // retried teardown cannot fail the fleet shutdown.
            match srv.slots.lock().remove(&slot) {
                Some(shard) => shard.shutdown().map(|()| Vec::new()),
                None => Ok(Vec::new()),
            }
        }
        op::SPAWN_SIBLING => {
            let sibling = slot_of(srv, slot)?.spawn_sibling()?;
            let mut slots = srv.slots.lock();
            let mut id = srv.next_slot.fetch_add(1, Ordering::Relaxed);
            while slots.contains_key(&id) {
                id = srv.next_slot.fetch_add(1, Ordering::Relaxed);
            }
            slots.insert(id, sibling);
            Ok(wire::enc_u64(id))
        }
        op::INGEST => {
            let snapshot = wire::dec_snapshot(payload).map_err(bad_payload)?;
            slot_of(srv, slot)?
                .ingest(generation, snapshot)
                .map(|()| Vec::new())
        }
        op::FLUSH => slot_of(srv, slot)?.flush().map(wire::enc_u64),
        op::STATS => slot_of(srv, slot)?.stats().map(|s| wire::enc_stats(&s)),
        op::TIMESTAMPS => slot_of(srv, slot)?.timestamps().map(|t| wire::enc_u64s(&t)),
        op::TIMELINE => {
            let mut r = wire::Rd::new(payload);
            let lo = r.u64("timeline lo").map_err(bad_payload)?;
            let hi = r.u64("timeline hi").map_err(bad_payload)?;
            r.done().map_err(bad_payload)?;
            slot_of(srv, slot)?
                .timeline(generation, lo, hi)
                .map(|t| wire::enc_timeline(&t))
        }
        op::LATEST_TIMESTAMP => slot_of(srv, slot)?
            .latest_timestamp(generation)
            .map(wire::enc_opt_u64),
        op::USER_SENTIMENT => {
            let mut r = wire::Rd::new(payload);
            let user = r.usize("user").map_err(bad_payload)?;
            let at = r.u64("at").map_err(bad_payload)?;
            r.done().map_err(bad_payload)?;
            slot_of(srv, slot)?
                .user_sentiment(generation, user, at)
                .map(|s| wire::enc_user_sentiment(&s))
        }
        op::USER_TIMELINE => {
            let user = wire::dec_u64(payload).map_err(bad_payload)? as usize;
            slot_of(srv, slot)?
                .user_timeline(generation, user)
                .map(|t| wire::enc_user_timeline(&t))
        }
        op::KNOWN_USERS => slot_of(srv, slot)?
            .known_users(generation)
            .map(|n| wire::enc_u64(n as u64)),
        op::CLUSTER_SUMMARY => {
            let t = wire::dec_u64(payload).map_err(bad_payload)?;
            slot_of(srv, slot)?
                .cluster_summary(generation, t)
                .map(|s| wire::enc_cluster_summary(&s))
        }
        op::SF_AT => {
            let t = wire::dec_u64(payload).map_err(bad_payload)?;
            slot_of(srv, slot)?
                .sf_at(generation, t)
                .map(|m| wire::enc_matrix(&m))
        }
        op::K => slot_of(srv, slot)?.k().map(|k| wire::enc_u64(k as u64)),
        op::VOCAB_TOKENS => slot_of(srv, slot)?
            .vocab_tokens()
            .map(|v| wire::enc_strs(&v)),
        op::USER_FACTOR => {
            let user = wire::dec_u64(payload).map_err(bad_payload)? as usize;
            slot_of(srv, slot)?
                .user_factor(user)
                .map(|f| wire::enc_opt_f64s(&f))
        }
        op::CHECKPOINT_SECTION => slot_of(srv, slot)?.checkpoint_section(),
        op::CHECKPOINT_BASE => slot_of(srv, slot)?
            .checkpoint_base()
            .map(|(id, section)| wire::enc_id_bytes(id, &section)),
        op::DELTA_SINCE => {
            let base_id = wire::dec_u64(payload).map_err(bad_payload)?;
            slot_of(srv, slot)?
                .delta_since(base_id)
                .map(|d| wire::enc_opt_bytes(d.as_deref()))
        }
        op::EXPORT_USERS => {
            let mut r = wire::Rd::new(payload);
            let lo = r.usize("export lo").map_err(bad_payload)?;
            let hi = r.usize("export hi").map_err(bad_payload)?;
            r.done().map_err(bad_payload)?;
            slot_of(srv, slot)?.export_users(lo, hi)
        }
        op::IMPORT_USERS => slot_of(srv, slot)?
            .import_users(payload)
            .map(|()| Vec::new()),
        op::ABSORB_SECTION => slot_of(srv, slot)?
            .absorb_section(payload)
            .map(|()| Vec::new()),
        op::SET_GENERATION => {
            let generation = wire::dec_u64(payload).map_err(bad_payload)?;
            slot_of(srv, slot)?
                .set_generation(generation)
                .map(|()| Vec::new())
        }
        other => Err(TgsError::invalid_argument(format!(
            "unknown opcode {other} (this server speaks protocol version {})",
            crate::frame::WIRE_VERSION
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{NetConfig, TcpShard};
    use tgs_core::TgsErrorKind;

    fn quick_cfg() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(5),
            reconnect_attempts: 2,
            backoff_base: Duration::from_millis(10),
            retry_deadline: Duration::from_secs(5),
            jitter_seed: 1,
            // Explicit `None` so an ambient TGS_FAULTS cannot leak
            // chaos into unit tests.
            faults: None,
        }
    }

    #[test]
    fn empty_server_answers_management_verbs_and_terminates() {
        let server = ShardServer::bind("127.0.0.1:0", Some((0, 64))).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());

        let shard = TcpShard::new(addr, 0, quick_cfg());
        shard.ping().unwrap();
        let info = shard.server_info().unwrap();
        assert_eq!(info.range, Some((0, 64)));
        assert_eq!(info.slots, 0);

        // Engine calls against a slot nobody created fail typed, and
        // the error survives the wire as Net — the recoverable class
        // the supervisor keys respawn on.
        let err = shard.flush().expect_err("no slot 0 yet");
        assert_eq!(err.kind(), TgsErrorKind::Net);
        assert!(err.to_string().contains("slot 0"));

        shard.terminate().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn stop_handle_unblocks_run_without_a_client() {
        let server = ShardServer::bind("127.0.0.1:0", None).unwrap();
        server.stop();
        server.run().unwrap();
    }
}

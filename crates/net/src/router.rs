//! Deploying a fleet onto remote shard servers.
//!
//! The router front-end (`tgs serve`) starts from the same place the
//! in-process path does: a deterministic cold [`ShardedEngine`] built
//! by `EngineBuilder::fit_sharded`. [`deploy_fleet`] checkpoints that
//! template, ships one section to slot 0 of each `tgs shard` server,
//! and rebuilds the router over the TCP transports — restore is exact,
//! so the remote fleet is bit-identical to the local one it was cloned
//! from.

use std::sync::Arc;

use tgs_core::TgsError;
use tgs_engine::{ShardTransport, ShardedEngine};

use crate::client::{NetConfig, TcpShard};

/// Ships `template`'s per-shard state to the servers at `addrs` (one
/// shard per server, slot 0) and returns a [`ShardedEngine`] routing
/// over TCP. The template is consumed: its workers shut down once
/// their state has been deployed.
///
/// Each server must be fresh (no slot 0 yet); a server that declared a
/// `--range` at launch is checked against the template's partition map
/// so a mis-wired fleet fails loudly at deploy time instead of
/// misrouting users later.
pub fn deploy_fleet(
    template: ShardedEngine,
    addrs: &[String],
    cfg: &NetConfig,
) -> Result<ShardedEngine, TgsError> {
    if addrs.len() != template.shards() {
        return Err(TgsError::invalid_argument(format!(
            "{} shard servers for a {}-shard template",
            addrs.len(),
            template.shards()
        )));
    }
    let map = template.map();
    let ghost_mode = template.ghost_mode();
    let sections = template.checkpoint()?.sections()?;
    template.shutdown()?;

    let mut transports: Vec<Arc<dyn ShardTransport>> = Vec::with_capacity(addrs.len());
    for (shard, (addr, section)) in addrs.iter().zip(&sections).enumerate() {
        let handle = TcpShard::new(addr.clone(), 0, cfg.clone());
        let info = handle.server_info()?;
        if let Some((lo, hi)) = info.range {
            let expected = map.range(shard);
            if (lo, hi) != expected {
                return Err(TgsError::invalid_argument(format!(
                    "shard server {addr} declared user range {lo}..{hi} but the \
                     partition map assigns {}..{} to shard {shard}",
                    expected.0, expected.1
                )));
            }
        }
        handle.init(section)?;
        transports.push(Arc::new(handle));
    }
    ShardedEngine::from_transports(map, transports, ghost_mode)
}

/// Re-attaches to servers that already hold fleet state (slot 0 each)
/// without shipping anything — the reconnect path after a router
/// restart. `map` and `ghost_mode` must match what was deployed (take
/// them from a saved fleet checkpoint header or the original launch
/// configuration).
pub fn attach_fleet(
    map: tgs_data::PartitionMap,
    addrs: &[String],
    ghost_mode: bool,
    cfg: &NetConfig,
) -> Result<ShardedEngine, TgsError> {
    let transports: Vec<Arc<dyn ShardTransport>> = addrs
        .iter()
        .map(|addr| {
            Arc::new(TcpShard::new(addr.clone(), 0, cfg.clone())) as Arc<dyn ShardTransport>
        })
        .collect();
    ShardedEngine::from_transports(map, transports, ghost_mode)
}

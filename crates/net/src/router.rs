//! Deploying a fleet onto remote shard servers.
//!
//! The router front-end (`tgs serve`) starts from the same place the
//! in-process path does: a deterministic cold [`ShardedEngine`] built
//! by `EngineBuilder::fit_sharded`. [`deploy_fleet`] checkpoints that
//! template, ships one section to slot 0 of each `tgs shard` server,
//! and rebuilds the router over the TCP transports — restore is exact,
//! so the remote fleet is bit-identical to the local one it was cloned
//! from.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use tgs_core::TgsError;
use tgs_engine::{
    ClusterSummary, EngineSnapshot, EngineStats, FleetTips, RecoveryCounters, ShardTransport,
    ShardedEngine, TimelineEntry, UserSentiment,
};
use tgs_linalg::DenseMatrix;

use crate::client::{NetConfig, TcpShard};
use crate::supervise::{SupervisedShard, Supervisor, SupervisorConfig};

/// Ships `template`'s per-shard state to the servers at `addrs` (one
/// shard per server, slot 0) and returns a [`ShardedEngine`] routing
/// over TCP. The template is consumed: its workers shut down once
/// their state has been deployed.
///
/// Each server must be fresh (no slot 0 yet); a server that declared a
/// `--range` at launch is checked against the template's partition map
/// so a mis-wired fleet fails loudly at deploy time instead of
/// misrouting users later.
pub fn deploy_fleet(
    template: ShardedEngine,
    addrs: &[String],
    cfg: &NetConfig,
) -> Result<ShardedEngine, TgsError> {
    if addrs.len() != template.shards() {
        return Err(TgsError::invalid_argument(format!(
            "{} shard servers for a {}-shard template",
            addrs.len(),
            template.shards()
        )));
    }
    let map = template.map();
    let ghost_mode = template.ghost_mode();
    let sections = template.checkpoint()?.sections()?;
    template.shutdown()?;

    let mut transports: Vec<Arc<dyn ShardTransport>> = Vec::with_capacity(addrs.len());
    for (shard, (addr, section)) in addrs.iter().zip(&sections).enumerate() {
        let handle = TcpShard::new(addr.clone(), 0, cfg.clone());
        let info = handle.server_info()?;
        if let Some((lo, hi)) = info.range {
            let expected = map.range(shard);
            if (lo, hi) != expected {
                return Err(TgsError::invalid_argument(format!(
                    "shard server {addr} declared user range {lo}..{hi} but the \
                     partition map assigns {}..{} to shard {shard}",
                    expected.0, expected.1
                )));
            }
        }
        handle.init(section)?;
        transports.push(Arc::new(handle));
    }
    ShardedEngine::from_transports(map, transports, ghost_mode)
}

/// Like [`deploy_fleet`], but wraps every remote worker in a
/// [`SupervisedShard`] seeded with the exact section it was deployed
/// from, and returns the [`Supervisor`] controlling the fleet alongside
/// the engine. The engine's merged stats carry the supervisor's
/// recovery counters (`respawns`, `replayed_docs`, `degraded_queries`).
///
/// The caller owns the control cadence: call [`Supervisor::tick`] once
/// per ingested window (checkpoint refresh) and
/// [`Supervisor::start_probes`] for background health probing.
pub fn deploy_supervised(
    template: ShardedEngine,
    addrs: &[String],
    cfg: &NetConfig,
    sup_cfg: SupervisorConfig,
) -> Result<(ShardedEngine, Arc<Supervisor>), TgsError> {
    if addrs.len() != template.shards() {
        return Err(TgsError::invalid_argument(format!(
            "{} shard servers for a {}-shard template",
            addrs.len(),
            template.shards()
        )));
    }
    let map = template.map();
    let ghost_mode = template.ghost_mode();
    let sections = template.checkpoint()?.sections()?;
    template.shutdown()?;

    let counters = Arc::new(RecoveryCounters::default());
    let mut supervised = Vec::with_capacity(addrs.len());
    let mut transports: Vec<Arc<dyn ShardTransport>> = Vec::with_capacity(addrs.len());
    for (shard, (addr, section)) in addrs.iter().zip(&sections).enumerate() {
        let handle = Arc::new(TcpShard::new(addr.clone(), 0, cfg.clone()));
        let info = handle.server_info()?;
        if let Some((lo, hi)) = info.range {
            let expected = map.range(shard);
            if (lo, hi) != expected {
                return Err(TgsError::invalid_argument(format!(
                    "shard server {addr} declared user range {lo}..{hi} but the \
                     partition map assigns {}..{} to shard {shard}",
                    expected.0, expected.1
                )));
            }
        }
        handle.init(section)?;
        let wrapped = SupervisedShard::new(
            handle,
            Some(section.clone()),
            Arc::clone(&counters),
            sup_cfg.clone(),
        );
        supervised.push(Arc::clone(&wrapped));
        transports.push(wrapped as Arc<dyn ShardTransport>);
    }
    let mut engine = ShardedEngine::from_transports(map, transports, ghost_mode)?;
    engine.set_recovery_counters(Arc::clone(&counters));
    let supervisor = Supervisor::new(supervised, counters, sup_cfg);
    Ok((engine, supervisor))
}

/// Re-attaches to servers that already hold fleet state (slot 0 each)
/// without shipping anything — the reconnect path after a router
/// restart. `map` and `ghost_mode` must match what was deployed (take
/// them from a saved fleet checkpoint header or the original launch
/// configuration).
pub fn attach_fleet(
    map: tgs_data::PartitionMap,
    addrs: &[String],
    ghost_mode: bool,
    cfg: &NetConfig,
) -> Result<ShardedEngine, TgsError> {
    let transports: Vec<Arc<dyn ShardTransport>> = addrs
        .iter()
        .map(|addr| {
            Arc::new(TcpShard::new(addr.clone(), 0, cfg.clone())) as Arc<dyn ShardTransport>
        })
        .collect();
    ShardedEngine::from_transports(map, transports, ghost_mode)
}

/// The router itself as a [`ShardTransport`]: hosting one of these on a
/// [`crate::ShardServer`] slot is how `tgs serve --hold` answers
/// queries over the wire protocol after streaming. Data-plane reads fan
/// out through the engine's degraded-tolerant query paths, so a client
/// keeps getting (partial) answers while a shard is down and the
/// supervisor rebuilds it.
///
/// Topology verbs (`EXPORT_USERS`, `IMPORT_USERS`, `SPAWN_SIBLING`,
/// `ABSORB_SECTION`) are rejected: rebalancing a held fleet is the
/// router's job, not a remote client's.
pub struct RouterEndpoint {
    engine: Arc<ShardedEngine>,
    /// Fleet base ids handed out over `CHECKPOINT_BASE`, mapped back to
    /// the per-slot tips they anchor. Ids are content-derived
    /// ([`FleetTips::key`]), so a client holding a fleet delta can
    /// recompute its next anchor locally, and re-registering the same
    /// tips is a no-op — retries stay idempotent.
    bases: Mutex<BaseMap>,
}

/// How many distinct fleet anchors the router remembers. An evicted id
/// answers `DELTA_SINCE` with "unavailable" and the client re-bases —
/// the same degradation as an aged-out engine mark.
const ROUTER_BASE_CAP: usize = 16;

#[derive(Default)]
struct BaseMap {
    order: VecDeque<u64>,
    tips: HashMap<u64, FleetTips>,
}

impl BaseMap {
    fn insert(&mut self, id: u64, tips: FleetTips) {
        if self.tips.insert(id, tips).is_none() {
            self.order.push_back(id);
            while self.order.len() > ROUTER_BASE_CAP {
                if let Some(evicted) = self.order.pop_front() {
                    self.tips.remove(&evicted);
                }
            }
        }
    }
}

impl RouterEndpoint {
    /// Wraps a deployed router for hosting.
    pub fn new(engine: Arc<ShardedEngine>) -> Arc<Self> {
        Arc::new(Self {
            engine,
            bases: Mutex::new(BaseMap::default()),
        })
    }

    fn unsupported(verb: &str) -> TgsError {
        TgsError::invalid_argument(format!(
            "{verb} is not supported on a router endpoint (rebalancing is router-side)"
        ))
    }
}

impl ShardTransport for RouterEndpoint {
    fn ingest(&self, _generation: u64, snapshot: EngineSnapshot) -> Result<(), TgsError> {
        // The router runs its own generation bookkeeping against its
        // workers; the client-facing generation is ignored.
        self.engine.ingest(snapshot)
    }

    fn timeline(&self, _generation: u64, lo: u64, hi: u64) -> Result<Vec<TimelineEntry>, TgsError> {
        Ok(self.engine.query().timeline_partial(lo..=hi)?.value)
    }

    fn latest_timestamp(&self, _generation: u64) -> Result<Option<u64>, TgsError> {
        Ok(self
            .engine
            .query()
            .latest_partial()?
            .value
            .map(|e| e.timestamp))
    }

    fn user_sentiment(
        &self,
        _generation: u64,
        user: usize,
        at: u64,
    ) -> Result<UserSentiment, TgsError> {
        self.engine.query().user_sentiment(user, at)
    }

    fn user_timeline(
        &self,
        _generation: u64,
        user: usize,
    ) -> Result<Vec<(u64, Vec<f64>)>, TgsError> {
        self.engine.query().user_timeline(user)
    }

    fn known_users(&self, _generation: u64) -> Result<usize, TgsError> {
        Ok(self.engine.query().known_users_partial()?.value)
    }

    fn cluster_summary(&self, _generation: u64, t: u64) -> Result<ClusterSummary, TgsError> {
        self.engine.query().cluster_summary(t)
    }

    fn sf_at(&self, _generation: u64, t: u64) -> Result<DenseMatrix, TgsError> {
        self.engine.query().merged_sf(t)
    }

    fn flush(&self) -> Result<u64, TgsError> {
        self.engine.flush()
    }

    fn stats(&self) -> Result<EngineStats, TgsError> {
        Ok(self.engine.stats())
    }

    fn timestamps(&self) -> Result<Vec<u64>, TgsError> {
        Ok(self.engine.timestamps())
    }

    fn k(&self) -> Result<usize, TgsError> {
        Ok(self.engine.query().k())
    }

    fn vocab_tokens(&self) -> Result<Vec<String>, TgsError> {
        Ok(self.engine.vocabulary().tokens().to_vec())
    }

    fn user_factor(&self, user: usize) -> Result<Option<Vec<f64>>, TgsError> {
        self.engine.user_factor(user)
    }

    fn checkpoint_section(&self) -> Result<Vec<u8>, TgsError> {
        // A held fleet's "section" is the whole multi-shard checkpoint:
        // `tgs query --connect` restores it with `restore_any`.
        Ok(self.engine.checkpoint()?.as_bytes().to_vec())
    }

    fn checkpoint_base(&self) -> Result<(u64, Vec<u8>), TgsError> {
        // Fleet-level base: the full multi-shard checkpoint plus an id
        // derived from the per-slot tips it was taken at.
        let (tips, ckpt) = self.engine.checkpoint_base()?;
        let id = tips.key();
        self.bases.lock().insert(id, tips);
        Ok((id, ckpt.as_bytes().to_vec()))
    }

    fn delta_since(&self, base_id: u64) -> Result<Option<Vec<u8>>, TgsError> {
        let tips = match self.bases.lock().tips.get(&base_id) {
            Some(tips) => tips.clone(),
            // Unknown or evicted anchor: report unavailable so the
            // client re-bases, mirroring an aged-out engine mark.
            None => return Ok(None),
        };
        match self.engine.delta_since(&tips)? {
            Some(delta) => {
                // Remember the delta's own tips so the client's derived
                // next anchor (FleetTips::key over ShardedDelta::tips)
                // resolves on its next call.
                let next = delta.tips()?;
                self.bases.lock().insert(next.key(), next);
                Ok(Some(delta.as_bytes().to_vec()))
            }
            None => Ok(None),
        }
    }

    fn export_users(&self, _lo: usize, _hi: usize) -> Result<Vec<u8>, TgsError> {
        Err(Self::unsupported("EXPORT_USERS"))
    }

    fn import_users(&self, _users: &[u8]) -> Result<(), TgsError> {
        Err(Self::unsupported("IMPORT_USERS"))
    }

    fn spawn_sibling(&self) -> Result<Arc<dyn ShardTransport>, TgsError> {
        Err(Self::unsupported("SPAWN_SIBLING"))
    }

    fn absorb_section(&self, _section: &[u8]) -> Result<(), TgsError> {
        Err(Self::unsupported("ABSORB_SECTION"))
    }

    fn set_generation(&self, _generation: u64) -> Result<(), TgsError> {
        // Harmless: the router re-keys its own workers during recovery.
        Ok(())
    }

    fn request_core_set(&self, _set_index: usize, _n_sets: usize) {}

    fn shutdown(&self) -> Result<(), TgsError> {
        // Slot teardown must not kill the fleet the CLI still owns; the
        // serve loop shuts the real engine down after `run()` returns.
        Ok(())
    }

    fn peer(&self) -> String {
        "router".to_string()
    }
}

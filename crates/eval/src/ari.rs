//! Adjusted Rand index — a chance-corrected pair-counting clustering
//! metric, complementing accuracy/NMI in ablation studies.

use crate::confusion::ConfusionMatrix;

fn comb2(n: usize) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// Adjusted Rand index in `[-1, 1]`; 1 for identical partitions, ~0 for
/// independent ones.
pub fn adjusted_rand_index(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    let n = pred.len();
    if n < 2 {
        return 1.0;
    }
    let cm = ConfusionMatrix::from_labels(pred, truth);
    let sum_ij: f64 = (0..cm.num_clusters())
        .flat_map(|o| (0..cm.num_classes()).map(move |g| (o, g)))
        .map(|(o, g)| comb2(cm.count(o, g)))
        .sum();
    let sum_a: f64 = cm.cluster_sizes().iter().map(|&s| comb2(s)).sum();
    let sum_b: f64 = cm.class_sizes().iter().map(|&s| comb2(s)).sum();
    let expected = sum_a * sum_b / comb2(n);
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-15 {
        return 1.0; // both partitions degenerate in the same way
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let l = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&l, &l) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_ids_score_one() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![3, 3, 5, 5];
        assert!((adjusted_rand_index(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_split_scores_nonpositive() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 0, 1];
        assert!(adjusted_rand_index(&pred, &truth) <= 0.0);
    }

    #[test]
    fn known_textbook_value() {
        // scikit-learn doc example: ARI([0,0,1,1],[0,0,1,2]) ≈ 0.5714
        let a = adjusted_rand_index(&[0, 0, 1, 2], &[0, 0, 1, 1]);
        assert!((a - 0.5714285714).abs() < 1e-9, "got {a}");
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
    }
}

//! Pearson correlation (used in the paper's discussion of Observation 2:
//! pre-/post-election user sentiments correlate at r = 0.851).

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "sample length mismatch");
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        let dx = a - mx;
        let dy = b - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_returns_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn symmetric() {
        let x = [1.0, 4.0, 2.0, 8.0];
        let y = [3.0, 1.0, 5.0, 2.0];
        assert!((pearson(&x, &y) - pearson(&y, &x)).abs() < 1e-15);
    }
}

//! Hungarian (Kuhn–Munkres) assignment for optimal cluster→class mapping.
//!
//! The paper's accuracy uses majority voting; the Hungarian variant gives
//! the *optimal one-to-one* mapping and is used in ablations to show the
//! two coincide on well-separated clusterings.

use crate::confusion::ConfusionMatrix;

/// Solves the assignment problem on a cost matrix (minimization).
/// `cost` is rectangular `rows × cols` given row-major; returns for each
/// row the assigned column (`usize::MAX` when rows > cols and the row is
/// unmatched).
///
/// O(n³) shortest augmenting path implementation (Jonker–Volgenant style
/// potentials).
#[allow(clippy::needless_range_loop)] // index arithmetic mirrors the textbook algorithm
pub fn hungarian(cost: &[Vec<f64>]) -> Vec<usize> {
    let rows = cost.len();
    if rows == 0 {
        return Vec::new();
    }
    let cols = cost[0].len();
    // Pad to square with zero-cost dummy columns/rows.
    let n = rows.max(cols);
    let big = 0.0;
    let at = |i: usize, j: usize| -> f64 {
        if i < rows && j < cols {
            cost[i][j]
        } else {
            big
        }
    };
    // potentials
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![usize::MAX; n + 1]; // p[j] = row matched to column j (1-indexed cols, p[0] = current row)
    let mut way = vec![0usize; n + 1];
    for i in 0..n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = at(i0, j - 1) - u[i0 + 1] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    let pj = p[j];
                    if pj != usize::MAX {
                        u[pj + 1] += delta;
                    }
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == usize::MAX {
                break;
            }
        }
        // augment
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![usize::MAX; rows];
    for j in 1..=n {
        let r = p[j];
        if r != usize::MAX && r < rows && j - 1 < cols {
            assignment[r] = j - 1;
        }
    }
    assignment
}

/// Accuracy under the *optimal one-to-one* cluster→class assignment
/// (Hungarian on the negated contingency table).
pub fn hungarian_accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    if pred.is_empty() {
        return 0.0;
    }
    let cm = ConfusionMatrix::from_labels(pred, truth);
    let rows = cm.num_clusters();
    let cols = cm.num_classes();
    let cost: Vec<Vec<f64>> = (0..rows)
        .map(|o| (0..cols).map(|g| -(cm.count(o, g) as f64)).collect())
        .collect();
    let assignment = hungarian(&cost);
    let hit: usize = assignment
        .iter()
        .enumerate()
        .filter(|&(_, &g)| g != usize::MAX)
        .map(|(o, &g)| cm.count(o, g))
        .sum();
    hit as f64 / cm.total() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::clustering_accuracy;

    #[test]
    fn solves_small_assignment() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = hungarian(&cost);
        // optimal: (0,1)=1, (1,0)=2, (2,2)=2 → total 5
        let total: f64 = a.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        assert_eq!(a, vec![1, 0, 2]);
        assert!((total - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rectangular_more_clusters_than_classes() {
        let cost = vec![vec![1.0], vec![0.0], vec![2.0]];
        let a = hungarian(&cost);
        // only one column; exactly one row assigned, the cheapest
        let assigned: Vec<_> = a.iter().filter(|&&x| x != usize::MAX).collect();
        assert_eq!(assigned.len(), 1);
        assert_eq!(a[1], 0);
    }

    #[test]
    fn hungarian_accuracy_equals_majority_when_clusters_clean() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(hungarian_accuracy(&pred, &truth), 1.0);
        assert_eq!(clustering_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn hungarian_never_exceeds_majority_accuracy() {
        // majority voting can map two clusters to the same class (upper
        // bound on one-to-one assignment)
        let pred = vec![0, 0, 1, 1, 2, 2];
        let truth = vec![0, 0, 0, 0, 1, 1];
        let h = hungarian_accuracy(&pred, &truth);
        let m = clustering_accuracy(&pred, &truth);
        assert!(
            h <= m + 1e-12,
            "hungarian {h} should not exceed majority {m}"
        );
    }

    #[test]
    fn identity_cost_prefers_diagonal() {
        let cost = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        assert_eq!(hungarian(&cost), vec![0, 1, 2]);
    }
}

//! Contingency/confusion tables between two labelings.

/// A contingency table between predicted clusters (rows) and ground-truth
/// classes (columns). Works for both clustering output (arbitrary cluster
/// ids) and classification output (class-aligned ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
    total: usize,
}

impl ConfusionMatrix {
    /// Builds the table from parallel label slices.
    ///
    /// Panics when lengths differ. Label values are used as dense indices,
    /// so the table is `(max_pred + 1) × (max_truth + 1)`.
    pub fn from_labels(pred: &[usize], truth: &[usize]) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
        let rows = pred.iter().copied().max().map_or(0, |m| m + 1);
        let cols = truth.iter().copied().max().map_or(0, |m| m + 1);
        let mut counts = vec![vec![0usize; cols]; rows];
        for (&p, &t) in pred.iter().zip(truth.iter()) {
            counts[p][t] += 1;
        }
        Self {
            counts,
            total: pred.len(),
        }
    }

    /// Number of predicted clusters (rows).
    pub fn num_clusters(&self) -> usize {
        self.counts.len()
    }

    /// Number of ground-truth classes (columns).
    pub fn num_classes(&self) -> usize {
        self.counts.first().map_or(0, Vec::len)
    }

    /// Count of items in cluster `o` and class `g`.
    pub fn count(&self, o: usize, g: usize) -> usize {
        self.counts[o][g]
    }

    /// Total number of items.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Row (cluster) sizes.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column (class) sizes.
    pub fn class_sizes(&self) -> Vec<usize> {
        let cols = self.num_classes();
        let mut out = vec![0usize; cols];
        for row in &self.counts {
            for (g, &c) in row.iter().enumerate() {
                out[g] += c;
            }
        }
        out
    }

    /// For each cluster, the ground-truth class with the most members
    /// (majority vote). Empty clusters map to class 0.
    pub fn majority_mapping(&self) -> Vec<usize> {
        self.counts
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .map_or(0, |(g, _)| g)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        let cm = ConfusionMatrix::from_labels(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.total(), 5);
    }

    #[test]
    fn sizes() {
        let cm = ConfusionMatrix::from_labels(&[0, 0, 1], &[0, 1, 1]);
        assert_eq!(cm.cluster_sizes(), vec![2, 1]);
        assert_eq!(cm.class_sizes(), vec![1, 2]);
    }

    #[test]
    fn majority_mapping_votes() {
        let cm = ConfusionMatrix::from_labels(&[0, 0, 0, 1, 1], &[1, 1, 0, 0, 0]);
        assert_eq!(cm.majority_mapping(), vec![1, 0]);
    }

    #[test]
    fn empty_input() {
        let cm = ConfusionMatrix::from_labels(&[], &[]);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.num_clusters(), 0);
    }
}

//! Accuracy-family metrics.

use crate::confusion::ConfusionMatrix;

/// Clustering accuracy as defined in the paper (§5):
/// `A(C, G) = (1/n)·Σ_{o∈C} max_{g∈G} |o ∩ g|` — each output cluster is
/// assigned its majority ground-truth label.
pub fn clustering_accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    if pred.is_empty() {
        return 0.0;
    }
    let cm = ConfusionMatrix::from_labels(pred, truth);
    let hit: usize = (0..cm.num_clusters())
        .map(|o| {
            (0..cm.num_classes())
                .map(|g| cm.count(o, g))
                .max()
                .unwrap_or(0)
        })
        .sum();
    hit as f64 / cm.total() as f64
}

/// Plain classification accuracy: fraction of exact label matches.
pub fn classification_accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hit = pred
        .iter()
        .zip(truth.iter())
        .filter(|(p, t)| p == t)
        .count();
    hit as f64 / pred.len() as f64
}

/// Purity — identical to clustering accuracy for hard clusterings but kept
/// as an explicit alias for readers of the clustering literature.
pub fn purity(pred: &[usize], truth: &[usize]) -> f64 {
    clustering_accuracy(pred, truth)
}

/// Macro-averaged F1 over ground-truth classes for *classification*
/// output (labels already aligned with classes).
pub fn macro_f1(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let k = truth
        .iter()
        .chain(pred.iter())
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    let mut f1_sum = 0.0;
    let mut classes = 0usize;
    for c in 0..k {
        let tp = pred
            .iter()
            .zip(truth.iter())
            .filter(|&(&p, &t)| p == c && t == c)
            .count() as f64;
        let fp = pred
            .iter()
            .zip(truth.iter())
            .filter(|&(&p, &t)| p == c && t != c)
            .count() as f64;
        let fn_ = pred
            .iter()
            .zip(truth.iter())
            .filter(|&(&p, &t)| p != c && t == c)
            .count() as f64;
        if tp + fn_ == 0.0 {
            continue; // class absent from ground truth
        }
        classes += 1;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = tp / (tp + fn_);
        if precision + recall > 0.0 {
            f1_sum += 2.0 * precision * recall / (precision + recall);
        }
    }
    if classes == 0 {
        0.0
    } else {
        f1_sum / classes as f64
    }
}

/// Keeps only the positions where ground truth is known, returning
/// parallel `(pred, truth)` vectors — evaluation in the paper only uses
/// labeled tweets/users.
pub fn filter_labeled(pred: &[usize], truth: &[Option<usize>]) -> (Vec<usize>, Vec<usize>) {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    let mut p = Vec::new();
    let mut t = Vec::new();
    for (&pi, &ti) in pred.iter().zip(truth.iter()) {
        if let Some(ti) = ti {
            p.push(pi);
            t.push(ti);
        }
    }
    (p, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_any_permutation() {
        // clusters are ground truth with permuted ids
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(clustering_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn majority_vote_accuracy_value() {
        // cluster 0: {0,0,1} → majority 0 (2 hits); cluster 1: {1,1} → 2 hits
        let pred = vec![0, 0, 0, 1, 1];
        let truth = vec![0, 0, 1, 1, 1];
        assert!((clustering_accuracy(&pred, &truth) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_cluster() {
        let pred = vec![0, 0, 0, 0];
        let truth = vec![0, 0, 1, 1];
        assert!((clustering_accuracy(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classification_accuracy_counts_exact_matches() {
        assert!((classification_accuracy(&[0, 1, 2], &[0, 1, 0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(classification_accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn macro_f1_perfect_is_one() {
        assert!((macro_f1(&[0, 1, 0, 1], &[0, 1, 0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        // class 2 never in truth; should not dilute the average
        let pred = vec![0, 1, 2];
        let truth = vec![0, 1, 1];
        let f1 = macro_f1(&pred, &truth);
        // class0: P=1, R=1, F1=1; class1: P=1, R=0.5, F1=2/3
        assert!((f1 - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn filter_labeled_drops_unknowns() {
        let (p, t) = filter_labeled(&[0, 1, 2], &[Some(0), None, Some(1)]);
        assert_eq!(p, vec![0, 2]);
        assert_eq!(t, vec![0, 1]);
    }
}

//! Normalized mutual information, as defined in §5 of the paper:
//! `NMI(C, G) = 2·I(C; G) / (H(C) + H(G))`.

use crate::confusion::ConfusionMatrix;

/// Shannon entropy (nats) of a labeling.
pub fn entropy(labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let k = labels.iter().copied().max().unwrap() + 1;
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    let n = labels.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information (nats) between two labelings.
pub fn mutual_information(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let cm = ConfusionMatrix::from_labels(pred, truth);
    let n = cm.total() as f64;
    let rows = cm.cluster_sizes();
    let cols = cm.class_sizes();
    let mut mi = 0.0;
    for (o, &row_size) in rows.iter().enumerate() {
        for (g, &col_size) in cols.iter().enumerate() {
            let joint = cm.count(o, g) as f64;
            if joint > 0.0 {
                let p_joint = joint / n;
                mi += p_joint * (n * joint / (row_size as f64 * col_size as f64)).ln();
            }
        }
    }
    mi.max(0.0)
}

/// Normalized mutual information in `[0, 1]`.
///
/// Degenerate cases: when both labelings are constant (zero entropy) they
/// are identical partitions → 1; when exactly one is constant → 0.
pub fn nmi(pred: &[usize], truth: &[usize]) -> f64 {
    let hc = entropy(pred);
    let hg = entropy(truth);
    if hc == 0.0 && hg == 0.0 {
        return 1.0;
    }
    if hc == 0.0 || hg == 0.0 {
        return 0.0;
    }
    (2.0 * mutual_information(pred, truth) / (hc + hg)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_two_classes() {
        let h = entropy(&[0, 1, 0, 1]);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        assert_eq!(entropy(&[1, 1, 1]), 0.0);
    }

    #[test]
    fn nmi_identical_partitions_is_one() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&labels, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_permuted_partition_is_one() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![1, 1, 0, 0];
        assert!((nmi(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_independent_partitions_near_zero() {
        // pred splits orthogonally to truth
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 0, 1];
        assert!(nmi(&pred, &truth).abs() < 1e-12);
    }

    #[test]
    fn nmi_degenerate_cases() {
        assert_eq!(nmi(&[0, 0, 0], &[0, 1, 2]), 0.0);
        assert_eq!(nmi(&[0, 0], &[1, 1]), 1.0);
    }

    #[test]
    fn mi_nonnegative_and_bounded_by_entropies() {
        let pred = vec![0, 1, 1, 2, 0, 2, 1];
        let truth = vec![0, 0, 1, 1, 2, 2, 1];
        let mi = mutual_information(&pred, &truth);
        assert!(mi >= 0.0);
        assert!(mi <= entropy(&pred) + 1e-12);
        assert!(mi <= entropy(&truth) + 1e-12);
    }
}

//! # tgs-eval
//!
//! Evaluation metrics used throughout the paper's experiments: clustering
//! accuracy with majority-vote mapping (§5), NMI (§5), plus ARI, macro-F1,
//! Hungarian-optimal accuracy and Pearson correlation for ablations.
//!
//! ```
//! use tgs_eval::{clustering_accuracy, nmi};
//!
//! let truth = vec![0, 0, 1, 1];
//! let pred = vec![1, 1, 0, 0]; // same partition, renamed clusters
//! assert_eq!(clustering_accuracy(&pred, &truth), 1.0);
//! assert_eq!(nmi(&pred, &truth), 1.0);
//! ```

pub mod accuracy;
pub mod ari;
pub mod confusion;
pub mod hungarian;
pub mod nmi;
pub mod pearson;

pub use accuracy::{
    classification_accuracy, clustering_accuracy, filter_labeled, macro_f1, purity,
};
pub use ari::adjusted_rand_index;
pub use confusion::ConfusionMatrix;
pub use hungarian::{hungarian, hungarian_accuracy};
pub use nmi::{entropy, mutual_information, nmi};
pub use pearson::pearson;

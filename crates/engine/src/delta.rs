//! Delta-encoded incremental checkpoints: O(changes) snapshots.
//!
//! A full [`EngineCheckpoint`] re-encodes
//! O(state) — vocabulary, every user's history, every retained factor
//! snapshot — on every call. Between consecutive steps of the paper's
//! online algorithm only the rows touched by new documents change, so a
//! checkpoint can instead ship a **base** plus per-step **deltas**:
//!
//! * [`SentimentEngine::checkpoint_base`](crate::SentimentEngine::checkpoint_base)
//!   takes a full checkpoint and registers it as a *mark* (an engine-local
//!   `u64` id) with the engine's `DeltaTracker`;
//! * [`SentimentEngine::delta_since`](crate::SentimentEngine::delta_since)
//!   encodes everything that changed since a mark — touched users'
//!   history rows and track appends, new timeline entries, and the
//!   factor stores' removed/appended entries — as a [`CheckpointDelta`],
//!   registering the new tip as a mark so chains extend;
//! * [`SentimentEngine::apply_delta`](crate::SentimentEngine::apply_delta)
//!   folds a delta into a base, producing bytes **identical** to the
//!   full checkpoint the engine would have written at the delta's tip
//!   (the reconstruction re-runs the deterministic full encoder, so byte
//!   equality follows from state equality);
//! * [`DeltaChain`] keeps a base plus its deltas and **compacts** —
//!   materializes a fresh base — once the chain's byte cost exceeds the
//!   base's, bounding both storage and recovery replay cost.
//!
//! Deltas are *unavailable* (not an error — `Ok(None)`) when the engine
//! cannot prove O(changes) coverage: an unknown or trimmed mark, or a
//! structural epoch bump (user migration / absorb rewrites state outside
//! the append-only stream). Callers fall back to a fresh base.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tgs_core::{decode_matrix, OnlineSolver, OnlineSolverState, SnapshotStore, TgsError};
use tgs_linalg::DenseMatrix;

use crate::checkpoint::{
    self, rd_count, rd_f64, rd_timeline_entry, rd_u64, rd_u8, rd_usize, wr_timeline_entry,
    EngineCheckpoint,
};
use crate::engine::{EngineShared, EngineState};
use crate::query::TimelineEntry;

/// Magic + format version prefix of a serialized delta.
const MAGIC: &[u8; 8] = b"TGSDLT\x00\x01";

/// Marks retained per engine: a delta can only be requested against one
/// of the last this-many bases/tips. Old marks age out silently (their
/// `delta_since` returns `None`), bounding the tracker's footprint.
const MAX_MARKS: usize = 8;

/// Change-log cap. If more steps than this commit between a mark and its
/// `delta_since`, the log is trimmed and the mark degrades to
/// unavailable — by then a delta would approach O(state) anyway.
const MAX_RECORDS: usize = 4096;

fn corrupt(what: &str) -> TgsError {
    TgsError::corrupt(format!("malformed checkpoint delta: {what}"))
}

// ---------------------------------------------------------------------
// Dirty tracking
// ---------------------------------------------------------------------

/// One committed step's footprint: which timestamp landed and which
/// (non-ghost) users it touched.
#[derive(Debug, Clone)]
struct ChangeRecord {
    /// Absolute commit sequence number (0-based over the engine's life).
    seq: u64,
    timestamp: u64,
    users: Vec<usize>,
}

/// A registered base/tip: everything needed to later diff the live state
/// against the state at registration time.
#[derive(Debug, Clone)]
struct Mark {
    /// Commit count at registration: records with `seq >= this` are the
    /// steps the delta must cover.
    seq: u64,
    /// Structural epoch at registration (see [`DeltaTracker::bump_epoch`]).
    epoch: u64,
    /// `sf_store` timestamps at registration, in insertion order.
    sf_ts: Vec<u64>,
    /// `sp_store` timestamps at registration, in insertion order.
    sp_ts: Vec<u64>,
}

/// The engine's dirty-state log, fed by the ingest worker's commit path
/// and consumed by the delta encoder. Lives inside `EngineState`, so the
/// state lock covers it.
#[derive(Debug, Default)]
pub(crate) struct DeltaTracker {
    records: VecDeque<ChangeRecord>,
    /// Total commits ever logged (the next record's `seq`).
    next_seq: u64,
    marks: BTreeMap<u64, Mark>,
    next_id: u64,
    /// Bumped by any mutation outside the append-only stream (user
    /// migration, absorb): existing marks can no longer express the
    /// change as a delta and degrade to unavailable.
    epoch: u64,
}

impl DeltaTracker {
    /// Logs one committed step. Cheap when no marks are live (nothing
    /// could ever ask for a delta spanning this step).
    pub(crate) fn record_commit(&mut self, timestamp: u64, users: Vec<usize>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.marks.is_empty() {
            return;
        }
        self.records.push_back(ChangeRecord {
            seq,
            timestamp,
            users,
        });
        while self.records.len() > MAX_RECORDS {
            self.records.pop_front();
        }
    }

    /// Invalidates every live mark: state was rewritten outside the
    /// append-only stream (rebalance migration, shard absorb), so no
    /// retained mark can serve a delta anymore.
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.records.clear();
        self.marks.clear();
    }

    /// Registers the *current* state as a mark and returns its id.
    fn register_mark(&mut self, sf_store: &SnapshotStore, sp_store: &SnapshotStore) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.marks.insert(
            id,
            Mark {
                seq: self.next_seq,
                epoch: self.epoch,
                sf_ts: sf_store.iter().map(|(t, _)| t).collect(),
                sp_ts: sp_store.iter().map(|(t, _)| t).collect(),
            },
        );
        while self.marks.len() > MAX_MARKS {
            let oldest = *self.marks.keys().next().expect("non-empty map");
            self.marks.remove(&oldest);
        }
        // Records older than every live mark can never be requested.
        let floor = self.marks.values().map(|m| m.seq).min();
        match floor {
            Some(floor) => {
                while self.records.front().is_some_and(|r| r.seq < floor) {
                    self.records.pop_front();
                }
            }
            None => self.records.clear(),
        }
        id
    }
}

// ---------------------------------------------------------------------
// The delta payload
// ---------------------------------------------------------------------

/// A serialized incremental checkpoint: everything that changed on one
/// engine between a registered base (`base_id`) and the registration of
/// its own tip (`new_id`). Produced by
/// [`SentimentEngine::delta_since`](crate::SentimentEngine::delta_since);
/// folded into a base with
/// [`SentimentEngine::apply_delta`](crate::SentimentEngine::apply_delta).
/// The raw bytes are stable for a given format version and safe to
/// persist or ship between machines of any endianness.
#[derive(Debug, Clone)]
pub struct CheckpointDelta {
    bytes: Bytes,
}

impl CheckpointDelta {
    /// Wraps previously serialized delta bytes (e.g. read back from
    /// disk). Validation happens at apply time.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self {
            bytes: Bytes::from(data),
        }
    }

    /// The serialized byte stream.
    pub fn as_bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the delta holds no bytes (never produced by the engine).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn header_u64(&self, offset: usize, what: &str) -> Result<u64, TgsError> {
        let bytes = self.bytes.as_slice();
        if bytes.len() < MAGIC.len() + 16 {
            return Err(corrupt("truncated header"));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt(
                "unrecognized magic header (not a tgs delta, or a newer format version)",
            ));
        }
        bytes[offset..offset + 8]
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| corrupt(what))
    }

    /// The mark id this delta applies on top of.
    pub fn base_id(&self) -> Result<u64, TgsError> {
        self.header_u64(MAGIC.len(), "base id")
    }

    /// The mark id of the state this delta produces — the next delta in
    /// a chain names this as its `base_id`.
    pub fn new_id(&self) -> Result<u64, TgsError> {
        self.header_u64(MAGIC.len() + 8, "new id")
    }
}

// ---------------------------------------------------------------------
// Encode (engine side, under the state lock)
// ---------------------------------------------------------------------

/// The set difference between a store's marked timestamp list and its
/// live entries. Stores only pop from the front (FIFO eviction) and
/// append at the back within an epoch, so `(removed, appended)` replayed
/// onto the marked store reproduces the live one entry-for-entry.
fn store_diff(mark_ts: &[u64], store: &SnapshotStore) -> (Vec<u64>, Vec<(u64, Bytes)>) {
    let live: Vec<(u64, Bytes)> = store.iter().collect();
    let live_set: HashSet<u64> = live.iter().map(|(t, _)| *t).collect();
    let mark_set: HashSet<u64> = mark_ts.iter().copied().collect();
    let removed = mark_ts
        .iter()
        .copied()
        .filter(|t| !live_set.contains(t))
        .collect();
    let appended = live
        .into_iter()
        .filter(|(t, _)| !mark_set.contains(t))
        .collect();
    (removed, appended)
}

fn wr_store_diff(buf: &mut BytesMut, removed: &[u64], appended: &[(u64, Bytes)]) {
    buf.put_u64_le(removed.len() as u64);
    for &t in removed {
        buf.put_u64_le(t);
    }
    buf.put_u64_le(appended.len() as u64);
    for (t, bytes) in appended {
        buf.put_u64_le(*t);
        buf.put_u64_le(bytes.len() as u64);
        buf.put_slice(bytes.as_slice());
    }
}

/// Encodes the changes since `base_id`, registering the resulting tip as
/// a new mark. `Ok(None)` means the mark cannot serve a delta (unknown /
/// aged out / epoch bumped / log trimmed) and the caller should take a
/// fresh base instead. Called by the engine with the queue drained and
/// both locks held.
pub(crate) fn encode_delta(
    shared: &EngineShared,
    solver: &OnlineSolver,
    state: &mut EngineState,
    base_id: u64,
) -> Result<Option<CheckpointDelta>, TgsError> {
    let EngineState {
        timeline,
        user_track,
        sf_store,
        sp_store,
        tracker,
        ..
    } = state;
    let Some(mark) = tracker.marks.get(&base_id).cloned() else {
        return Ok(None);
    };
    if mark.epoch != tracker.epoch {
        return Ok(None);
    }
    // The log must fully cover the span since the mark.
    let retained_floor = tracker.next_seq - tracker.records.len() as u64;
    if mark.seq < retained_floor {
        return Ok(None);
    }
    let since: Vec<&ChangeRecord> = tracker
        .records
        .iter()
        .filter(|r| r.seq >= mark.seq)
        .collect();

    let mut touched: BTreeSet<usize> = BTreeSet::new();
    let mut appends_per_user: BTreeMap<usize, usize> = BTreeMap::new();
    let mut new_timestamps: Vec<u64> = Vec::with_capacity(since.len());
    for r in &since {
        new_timestamps.push(r.timestamp);
        for &u in &r.users {
            touched.insert(u);
            *appends_per_user.entry(u).or_insert(0) += 1;
        }
    }
    new_timestamps.sort_unstable();

    let new_id = tracker.register_mark(sf_store, sp_store);
    let k = shared.config.k;

    let mut buf = BytesMut::with_capacity(1 << 12);
    buf.put_slice(MAGIC);
    buf.put_u64_le(base_id);
    buf.put_u64_le(new_id);
    buf.put_u64_le(k as u64);
    buf.put_u64_le(solver.steps());
    // Signed via two's complement, like the full checkpoint.
    buf.put_u64_le(solver.history_step() as u64);

    // --- Sf window: refs into the (reconciled) sf store, inline on
    // eviction — the same compaction the full encoder applies, so the
    // window ships as a handful of bytes in the common case. ---
    let window: Vec<&DenseMatrix> = solver.sf_window_snapshots().collect();
    buf.put_u64_le(window.len() as u64);
    for sf in window {
        let encoded = tgs_core::encode_matrix(sf);
        match sf_store
            .iter()
            .find(|(_, bytes)| bytes.as_slice() == encoded.as_slice())
        {
            Some((t, _)) => {
                buf.put_slice(&[1u8]);
                buf.put_u64_le(t);
            }
            None => {
                buf.put_slice(&[0u8]);
                buf.put_u64_le(encoded.len() as u64);
                buf.put_slice(encoded.as_slice());
            }
        }
    }

    // --- Touched users' history rows (wholesale replacement: the rows
    // are window-bounded, so this is O(touched), not O(stream)). ---
    let touched_vec: Vec<usize> = touched.iter().copied().collect();
    let rows = solver.export_history_rows_for(&touched_vec);
    buf.put_u64_le(rows.len() as u64);
    for (user, entries) in &rows {
        buf.put_u64_le(*user as u64);
        buf.put_u64_le(entries.len() as u64);
        for (step, row) in entries {
            buf.put_u64_le(*step as u64);
            for &v in row {
                buf.put_f64_le(v);
            }
        }
    }

    // --- New timeline entries, ascending by timestamp. ---
    buf.put_u64_le(new_timestamps.len() as u64);
    for &t in &new_timestamps {
        let entry = timeline
            .get(&t)
            .ok_or_else(|| corrupt("change log names a timestamp the timeline lacks"))?;
        wr_timeline_entry(&mut buf, entry);
    }

    // --- Per-user track appends: the commit path pushes exactly one
    // observation per touched user per step, so the last `n` entries of
    // a user's track are precisely the ones this span appended. ---
    buf.put_u64_le(appends_per_user.len() as u64);
    for (&user, &n) in &appends_per_user {
        let track = user_track
            .get(&user)
            .ok_or_else(|| corrupt("change log names a user the track lacks"))?;
        if track.len() < n {
            return Err(corrupt("change log claims more appends than tracked"));
        }
        buf.put_u64_le(user as u64);
        buf.put_u64_le(n as u64);
        for (t, dist) in &track[track.len() - n..] {
            buf.put_u64_le(*t);
            for &v in dist {
                buf.put_f64_le(v);
            }
        }
    }

    // --- Factor-store reconciliation. ---
    let (sf_removed, sf_appended) = store_diff(&mark.sf_ts, sf_store);
    wr_store_diff(&mut buf, &sf_removed, &sf_appended);
    let (sp_removed, sp_appended) = store_diff(&mark.sp_ts, sp_store);
    wr_store_diff(&mut buf, &sp_removed, &sp_appended);

    Ok(Some(CheckpointDelta {
        bytes: buf.freeze(),
    }))
}

/// Registers the current state as a base mark. Called by the engine with
/// the queue drained and the state lock held.
pub(crate) fn register_base(state: &mut EngineState) -> u64 {
    let EngineState {
        sf_store,
        sp_store,
        tracker,
        ..
    } = state;
    tracker.register_mark(sf_store, sp_store)
}

// ---------------------------------------------------------------------
// Apply
// ---------------------------------------------------------------------

enum WindowEntry {
    Inline(DenseMatrix),
    Ref(u64),
}

/// One snapshot-store diff: removed timestamps plus appended
/// `(timestamp, encoded matrix)` pairs.
type StoreDiff = (Vec<u64>, Vec<(u64, Bytes)>);

/// Per-user factor appends decoded from a delta section: each touched
/// user with their `(step-or-timestamp, row)` entries.
type UserRowAppends<T> = Vec<(usize, Vec<(T, Vec<f64>)>)>;

fn rd_store_diff(b: &mut Bytes) -> Result<StoreDiff, TgsError> {
    let removed_n = rd_count(b, 8, "store removed count")?;
    let mut removed = Vec::with_capacity(removed_n);
    for _ in 0..removed_n {
        removed.push(rd_u64(b, "store removed timestamp")?);
    }
    let appended_n = rd_count(b, 16, "store appended count")?;
    let mut appended = Vec::with_capacity(appended_n);
    for _ in 0..appended_n {
        let t = rd_u64(b, "store appended timestamp")?;
        let len = rd_count(b, 1, "store appended length")?;
        let mut raw = vec![0u8; len];
        b.copy_to_slice(&mut raw);
        appended.push((t, Bytes::from(raw)));
    }
    Ok((removed, appended))
}

fn reconcile(store: &mut SnapshotStore, removed: Vec<u64>, appended: Vec<(u64, Bytes)>) {
    // Removals first: the surviving base entries keep their insertion
    // order, then appends land behind them — matching the live store's
    // FIFO history, so a later delta's diff lines up again.
    for t in removed {
        store.remove(t);
    }
    for (t, bytes) in appended {
        store.push_encoded(t, bytes);
    }
}

/// Folds `delta` into `base`, returning the full checkpoint of the
/// delta's tip. Byte-identical to the checkpoint the source engine
/// writes at that tip: the base is decoded, edited at the state level,
/// and re-encoded through the same deterministic full encoder.
pub fn apply_delta(
    base: &EngineCheckpoint,
    delta: &CheckpointDelta,
) -> Result<EngineCheckpoint, TgsError> {
    let (shared, solver, mut state) = checkpoint::decode(base)?;
    let k = shared.config.k;
    let base_state = solver.export_state();

    let mut b = delta.bytes.clone();
    if b.remaining() < MAGIC.len() {
        return Err(corrupt("magic header"));
    }
    let mut magic = [0u8; 8];
    b.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt(
            "unrecognized magic header (not a tgs delta, or a newer format version)",
        ));
    }
    let _base_id = rd_u64(&mut b, "base id")?;
    let _new_id = rd_u64(&mut b, "new id")?;
    let delta_k = rd_usize(&mut b, "k")?;
    if delta_k != k {
        return Err(corrupt("class count disagrees with the base checkpoint"));
    }
    let steps = rd_u64(&mut b, "solver steps")?;
    if steps < base_state.steps {
        return Err(corrupt("solver steps regress from the base checkpoint"));
    }
    let history_step = rd_u64(&mut b, "history step")? as i64;
    if history_step < base_state.history_step {
        return Err(corrupt("history step regresses from the base checkpoint"));
    }

    // --- Parse everything before mutating (truncation can't half-apply). ---
    let window_len = rd_count(&mut b, 9, "sf window length")?;
    let mut window_entries = Vec::with_capacity(window_len);
    for _ in 0..window_len {
        match rd_u8(&mut b, "sf window entry tag")? {
            0 => {
                let len = rd_count(&mut b, 1, "sf window snapshot")?;
                let mut raw = vec![0u8; len];
                b.copy_to_slice(&mut raw);
                let m =
                    decode_matrix(Bytes::from(raw)).ok_or_else(|| corrupt("sf window snapshot"))?;
                window_entries.push(WindowEntry::Inline(m));
            }
            1 => window_entries.push(WindowEntry::Ref(rd_u64(&mut b, "sf window reference")?)),
            _ => return Err(corrupt("sf window entry tag")),
        }
    }
    let touched_n = rd_count(&mut b, 16, "touched user count")?;
    let mut touched_rows: UserRowAppends<i64> = Vec::with_capacity(touched_n);
    for _ in 0..touched_n {
        let user = rd_usize(&mut b, "touched user id")?;
        let entry_count = rd_count(&mut b, 8 * (k + 1), "touched entry count")?;
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let step = rd_u64(&mut b, "touched entry step")? as i64;
            let mut row = Vec::with_capacity(k);
            for _ in 0..k {
                row.push(rd_f64(&mut b, "touched entry value")?);
            }
            entries.push((step, row));
        }
        touched_rows.push((user, entries));
    }
    let timeline_n = rd_count(&mut b, 8 * (7 + 2 * k) + 1, "timeline entry count")?;
    let mut new_entries: Vec<TimelineEntry> = Vec::with_capacity(timeline_n);
    for _ in 0..timeline_n {
        new_entries.push(rd_timeline_entry(&mut b, k)?);
    }
    let track_n = rd_count(&mut b, 16, "track user count")?;
    let mut track_appends: UserRowAppends<u64> = Vec::with_capacity(track_n);
    for _ in 0..track_n {
        let user = rd_usize(&mut b, "track user id")?;
        let obs_count = rd_count(&mut b, 8 * (k + 1), "track append count")?;
        let mut obs = Vec::with_capacity(obs_count);
        for _ in 0..obs_count {
            let t = rd_u64(&mut b, "track append timestamp")?;
            let mut dist = Vec::with_capacity(k);
            for _ in 0..k {
                dist.push(rd_f64(&mut b, "track append value")?);
            }
            obs.push((t, dist));
        }
        track_appends.push((user, obs));
    }
    let (sf_removed, sf_appended) = rd_store_diff(&mut b)?;
    let (sp_removed, sp_appended) = rd_store_diff(&mut b)?;
    if b.remaining() != 0 {
        return Err(corrupt("trailing bytes after the final field"));
    }

    // --- Stores first: the window refs resolve against the result. ---
    reconcile(&mut state.sf_store, sf_removed, sf_appended);
    reconcile(&mut state.sp_store, sp_removed, sp_appended);

    // --- Timeline: strictly new entries (the stream is append-only). ---
    for entry in new_entries {
        let t = entry.timestamp;
        if state.timeline.insert(t, entry).is_some() {
            return Err(corrupt("delta re-adds a timeline timestamp the base holds"));
        }
    }

    // --- Track appends extend (or start) each touched user's list. ---
    for (user, obs) in track_appends {
        state.user_track.entry(user).or_default().extend(obs);
    }

    // --- Per-user history: touched users are replaced wholesale; the
    // rest replay the engine's horizon pruning. Pruning horizons are
    // monotone in the step counter, so pruning untouched users once at
    // the final horizon equals pruning them step by step (entries are
    // newest-first, so the oldest candidates pop from the back). ---
    let touched_set: BTreeSet<usize> = touched_rows.iter().map(|(u, _)| *u).collect();
    let mut rows: BTreeMap<usize, Vec<(i64, Vec<f64>)>> =
        base_state.history_rows.into_iter().collect();
    for (user, entries) in touched_rows {
        if entries.is_empty() {
            return Err(corrupt("touched user with an empty history row"));
        }
        rows.insert(user, entries);
    }
    let horizon = history_step - shared.config.window.saturating_sub(1) as i64;
    for (user, hist) in rows.iter_mut() {
        if touched_set.contains(user) {
            continue;
        }
        while hist.len() > 1 && hist.last().is_some_and(|(step, _)| *step <= horizon) {
            hist.pop();
        }
    }

    // --- Resolve the window and rebuild the solver (validates shapes). ---
    let mut sf_window = Vec::with_capacity(window_entries.len());
    for entry in window_entries {
        let sf = match entry {
            WindowEntry::Inline(sf) => sf,
            WindowEntry::Ref(t) => state.sf_store.get(t).ok_or_else(|| {
                corrupt("sf window references a timestamp the reconciled store lacks")
            })?,
        };
        if sf.shape() != (shared.vocab.len(), k) {
            return Err(corrupt("sf window snapshot shape disagrees with the base"));
        }
        sf_window.push(sf);
    }
    let solver = OnlineSolver::from_state(
        shared.config.clone(),
        OnlineSolverState {
            steps,
            sf_window,
            history_step,
            history_rows: rows.into_iter().collect(),
        },
    )?;

    Ok(checkpoint::encode(&shared, &solver, &state))
}

// ---------------------------------------------------------------------
// Bounded chains with automatic compaction
// ---------------------------------------------------------------------

/// A base checkpoint plus the deltas recorded on top of it, with
/// automatic compaction: once the chain's cumulative delta bytes exceed
/// the base's size, the chain folds into a fresh materialized base (at
/// that point a full snapshot is cheaper than the chain it replaces).
/// This is the client-side half of delta checkpointing — the supervisor
/// and the CLI both hold one per source.
#[derive(Debug, Clone)]
pub struct DeltaChain {
    base_id: u64,
    base: EngineCheckpoint,
    deltas: Vec<CheckpointDelta>,
    delta_bytes: usize,
}

impl DeltaChain {
    /// Starts a chain at a freshly taken base.
    pub fn new(base_id: u64, base: EngineCheckpoint) -> Self {
        Self {
            base_id,
            base,
            deltas: Vec::new(),
            delta_bytes: 0,
        }
    }

    /// The mark id the next delta must name as its base — the last
    /// delta's `new_id`, or the base's own id on a fresh/compacted chain.
    pub fn tip(&self) -> Result<u64, TgsError> {
        match self.deltas.last() {
            Some(d) => d.new_id(),
            None => Ok(self.base_id),
        }
    }

    /// The chain's base checkpoint (post-compaction: the materialized
    /// fold of every delta so far).
    pub fn base(&self) -> &EngineCheckpoint {
        &self.base
    }

    /// The deltas not yet folded into the base.
    pub fn deltas(&self) -> &[CheckpointDelta] {
        &self.deltas
    }

    /// Cumulative serialized size of the retained deltas.
    pub fn delta_bytes(&self) -> usize {
        self.delta_bytes
    }

    /// Appends a delta (which must extend the current tip), compacting
    /// if the chain cost now exceeds a full snapshot. Returns whether a
    /// compaction ran.
    pub fn push(&mut self, delta: CheckpointDelta) -> Result<bool, TgsError> {
        let tip = self.tip()?;
        let base_id = delta.base_id()?;
        if base_id != tip {
            return Err(TgsError::invalid_argument(format!(
                "delta extends mark {base_id}, but the chain tip is {tip}"
            )));
        }
        self.delta_bytes += delta.len();
        self.deltas.push(delta);
        if self.delta_bytes > self.base.len() {
            let tip = self.tip()?;
            let materialized = self.materialize()?;
            self.base_id = tip;
            self.base = materialized;
            self.deltas.clear();
            self.delta_bytes = 0;
            return Ok(true);
        }
        Ok(false)
    }

    /// Folds every retained delta into the base: the full checkpoint at
    /// the chain's tip, byte-identical to what the source engine would
    /// write there.
    pub fn materialize(&self) -> Result<EngineCheckpoint, TgsError> {
        let mut current = self.base.clone();
        for delta in &self.deltas {
            current = apply_delta(&current, delta)?;
        }
        Ok(current)
    }

    /// Restarts the chain at a fresh base (the fallback when
    /// `delta_since` reports the old tip unavailable).
    pub fn reset(&mut self, base_id: u64, base: EngineCheckpoint) {
        self.base_id = base_id;
        self.base = base;
        self.deltas.clear();
        self.delta_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineBuilder, EngineSnapshot, SentimentEngine};

    fn corpus() -> tgs_data::Corpus {
        tgs_data::generate(&tgs_data::GeneratorConfig {
            num_users: 24,
            total_tweets: 200,
            num_days: 10,
            ..Default::default()
        })
    }

    fn engine_over(c: &tgs_data::Corpus) -> SentimentEngine {
        EngineBuilder::new().k(3).max_iters(6).fit(c).unwrap()
    }

    #[test]
    fn delta_chain_matches_full_checkpoint_at_every_step() {
        let c = corpus();
        let engine = engine_over(&c);
        let windows = tgs_data::day_windows(c.num_days, 1);
        // Warm up two steps, then base.
        for &(lo, hi) in &windows[..2] {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
        }
        let (base_id, base) = engine.checkpoint_base().unwrap();
        assert_eq!(
            base.as_bytes(),
            engine.checkpoint().unwrap().as_bytes(),
            "a base is byte-identical to a plain checkpoint"
        );
        let mut chain = DeltaChain::new(base_id, base);
        for &(lo, hi) in &windows[2..] {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
            let delta = engine
                .delta_since(chain.tip().unwrap())
                .unwrap()
                .expect("live mark must serve a delta");
            chain.push(delta).unwrap();
            assert_eq!(
                chain.materialize().unwrap().as_bytes(),
                engine.checkpoint().unwrap().as_bytes(),
                "base + deltas must be byte-identical to the full checkpoint"
            );
        }
        assert!(chain.deltas().len() <= windows.len());
    }

    #[test]
    fn empty_delta_round_trips_to_the_base() {
        let c = corpus();
        let engine = engine_over(&c);
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, 0, c.num_days))
            .unwrap();
        let (base_id, base) = engine.checkpoint_base().unwrap();
        let delta = engine.delta_since(base_id).unwrap().unwrap();
        assert!(
            delta.len() < base.len() / 4,
            "an idle delta must be tiny: {} vs base {}",
            delta.len(),
            base.len()
        );
        let applied = SentimentEngine::apply_delta(&base, &delta).unwrap();
        assert_eq!(applied.as_bytes(), base.as_bytes());
    }

    #[test]
    fn unknown_or_invalidated_marks_are_unavailable_not_errors() {
        let c = corpus();
        let engine = engine_over(&c);
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, 0, c.num_days))
            .unwrap();
        engine.flush().unwrap();
        assert!(engine.delta_since(99).unwrap().is_none(), "unknown mark");
        let (base_id, _) = engine.checkpoint_base().unwrap();
        // A structural rewrite (user migration) invalidates live marks.
        let _ = engine.export_users_bytes(0, usize::MAX);
        assert!(
            engine.delta_since(base_id).unwrap().is_none(),
            "epoch bump must invalidate the mark"
        );
    }

    #[test]
    fn marks_age_out_beyond_the_retention_window() {
        let c = corpus();
        let engine = engine_over(&c);
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, 0, c.num_days))
            .unwrap();
        let (first_id, _) = engine.checkpoint_base().unwrap();
        for _ in 0..MAX_MARKS {
            engine.checkpoint_base().unwrap();
        }
        assert!(
            engine.delta_since(first_id).unwrap().is_none(),
            "aged-out mark must be unavailable"
        );
    }

    #[test]
    fn chain_compacts_once_deltas_outgrow_the_base() {
        let c = corpus();
        let engine = engine_over(&c);
        let windows = tgs_data::day_windows(c.num_days, 1);
        engine
            .ingest(EngineSnapshot::from_corpus_window(
                &c,
                windows[0].0,
                windows[0].1,
            ))
            .unwrap();
        let (base_id, base) = engine.checkpoint_base().unwrap();
        let mut chain = DeltaChain::new(base_id, base);
        let mut compacted = false;
        for &(lo, hi) in &windows[1..] {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
            let delta = engine.delta_since(chain.tip().unwrap()).unwrap().unwrap();
            compacted |= chain.push(delta).unwrap();
        }
        // A tiny first base forces growth past it quickly; whether or not
        // this corpus triggers it, the invariant must hold:
        assert!(chain.delta_bytes() <= chain.base().len());
        // And after any compaction the chain still materializes exactly.
        assert_eq!(
            chain.materialize().unwrap().as_bytes(),
            engine.checkpoint().unwrap().as_bytes()
        );
        let _ = compacted;
    }

    #[test]
    fn out_of_order_chain_pushes_are_rejected() {
        let c = corpus();
        let engine = engine_over(&c);
        let windows = tgs_data::day_windows(c.num_days, 2);
        engine
            .ingest(EngineSnapshot::from_corpus_window(
                &c,
                windows[0].0,
                windows[0].1,
            ))
            .unwrap();
        let (base_id, base) = engine.checkpoint_base().unwrap();
        engine
            .ingest(EngineSnapshot::from_corpus_window(
                &c,
                windows[1].0,
                windows[1].1,
            ))
            .unwrap();
        let d1 = engine.delta_since(base_id).unwrap().unwrap();
        engine
            .ingest(EngineSnapshot::from_corpus_window(
                &c,
                windows[2].0,
                windows[2].1,
            ))
            .unwrap();
        let d2 = engine.delta_since(d1.new_id().unwrap()).unwrap().unwrap();
        let mut chain = DeltaChain::new(base_id, base);
        assert!(chain.push(d2.clone()).is_err(), "gap in the chain");
        chain.push(d1).unwrap();
        chain.push(d2).unwrap();
    }

    #[test]
    fn corrupt_deltas_are_rejected_not_panicked() {
        let c = corpus();
        let engine = engine_over(&c);
        let windows = tgs_data::day_windows(c.num_days, 2);
        engine
            .ingest(EngineSnapshot::from_corpus_window(
                &c,
                windows[0].0,
                windows[0].1,
            ))
            .unwrap();
        let (base_id, base) = engine.checkpoint_base().unwrap();
        engine
            .ingest(EngineSnapshot::from_corpus_window(
                &c,
                windows[1].0,
                windows[1].1,
            ))
            .unwrap();
        let delta = engine.delta_since(base_id).unwrap().unwrap();
        let full = delta.as_bytes().to_vec();
        for cut in (0..full.len()).step_by(131).chain([full.len() - 1]) {
            let bad = CheckpointDelta::from_bytes(full[..cut].to_vec());
            assert!(
                apply_delta(&base, &bad).is_err(),
                "prefix of {cut} bytes applied"
            );
        }
        assert!(apply_delta(&base, &CheckpointDelta::from_bytes(b"garbage!".to_vec())).is_err());
        assert!(apply_delta(&base, &delta).is_ok());
    }

    #[test]
    fn restored_engines_serve_deltas_from_fresh_marks() {
        let c = corpus();
        let engine = engine_over(&c);
        let windows = tgs_data::day_windows(c.num_days, 2);
        engine
            .ingest(EngineSnapshot::from_corpus_window(
                &c,
                windows[0].0,
                windows[0].1,
            ))
            .unwrap();
        let ckpt = engine.checkpoint().unwrap();
        let restored = SentimentEngine::restore(&ckpt).unwrap();
        let (base_id, base) = restored.checkpoint_base().unwrap();
        restored
            .ingest(EngineSnapshot::from_corpus_window(
                &c,
                windows[1].0,
                windows[1].1,
            ))
            .unwrap();
        let delta = restored.delta_since(base_id).unwrap().unwrap();
        assert_eq!(
            apply_delta(&base, &delta).unwrap().as_bytes(),
            restored.checkpoint().unwrap().as_bytes()
        );
    }
}

//! The shard transport seam: every call the multi-shard router makes
//! against a worker, abstracted behind one object-safe trait.
//!
//! [`ShardedEngine`](crate::ShardedEngine) and
//! [`ShardedQuery`](crate::ShardedQuery) route ingest, the per-round
//! `Sf`/ghost exchange, queries, stats, checkpoint sections and the
//! `export_users`/`import_users` migration seam through a
//! [`ShardTransport`], so the same router code drives an in-process
//! fleet ([`LocalShard`], one [`SentimentEngine`] per shard behind a
//! thread) and a distributed one (`tgs-net`'s TCP client speaking the
//! framed wire protocol to `tgs shard` servers).
//!
//! **Generation checking.** Data-plane calls carry the topology
//! generation of the [`PartitionMap`](tgs_data::PartitionMap) the caller
//! routed with. Every transport tracks the newest generation it has
//! seen (monotone: newer generations are adopted on sight) and rejects
//! older ones with [`TgsError::StaleTopology`] — a handle still routing
//! with a pre-rebalance map would otherwise silently miss migrated
//! users or double-count a merged worker's history. Control-plane calls
//! (flush, stats, the rebalance/migration surface itself) are exempt:
//! they are either process-local monitoring or driven by the router
//! while it holds the fleet's topology lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tgs_core::TgsError;
use tgs_linalg::DenseMatrix;

use crate::engine::{EngineStats, SentimentEngine};
use crate::query::{ClusterSummary, TimelineEntry, UserSentiment};
use crate::snapshot::EngineSnapshot;

/// One shard worker as seen by the multi-shard router: the full
/// ingest/query/stats/checkpoint/migration surface, location-agnostic.
///
/// Calls taking a `generation` are data-plane: implementations must
/// reject generations older than the newest they have seen with
/// [`TgsError::StaleTopology`], and adopt newer ones (see the module
/// docs). The remaining calls are control-plane and generation-exempt.
pub trait ShardTransport: Send + Sync {
    // --- data plane (generation-checked) ---

    /// Queues one pre-routed sub-snapshot on the worker.
    fn ingest(&self, generation: u64, snapshot: EngineSnapshot) -> Result<(), TgsError>;

    /// Timeline entries with `lo <= timestamp <= hi`, ascending.
    fn timeline(&self, generation: u64, lo: u64, hi: u64) -> Result<Vec<TimelineEntry>, TgsError>;

    /// The newest committed timestamp, if any.
    fn latest_timestamp(&self, generation: u64) -> Result<Option<u64>, TgsError>;

    /// The user's sentiment as of `at` (see
    /// [`crate::EngineQuery::user_sentiment`]).
    fn user_sentiment(
        &self,
        generation: u64,
        user: usize,
        at: u64,
    ) -> Result<UserSentiment, TgsError>;

    /// Every recorded observation for the user, ascending.
    fn user_timeline(&self, generation: u64, user: usize)
        -> Result<Vec<(u64, Vec<f64>)>, TgsError>;

    /// Users with recorded history on this worker.
    fn known_users(&self, generation: u64) -> Result<usize, TgsError>;

    /// Per-cluster composition of the worker's snapshot at exactly `t`.
    fn cluster_summary(&self, generation: u64, t: u64) -> Result<ClusterSummary, TgsError>;

    /// The worker's recorded `Sf` factor at exactly `t`.
    fn sf_at(&self, generation: u64, t: u64) -> Result<DenseMatrix, TgsError>;

    // --- control plane (generation-exempt) ---

    /// Drains the worker's queue; surfaces the first pending ingest
    /// failure or the worker's committed step count.
    fn flush(&self) -> Result<u64, TgsError>;

    /// The worker's ingest metrics.
    fn stats(&self) -> Result<EngineStats, TgsError>;

    /// Whether the worker's bounded ingest queue currently has room —
    /// the router's pre-split capacity probe, so a shed batch is shed
    /// whole (no partial per-shard commits). Advisory: a slot can be
    /// taken between the probe and the ingest. Remote transports keep
    /// this default `Ok(true)` — a TCP worker's backpressure is applied
    /// by its own server-side queue, and probing it would cost a
    /// round-trip per ingest.
    fn queue_has_room(&self) -> Result<bool, TgsError> {
        Ok(true)
    }

    /// Every committed snapshot timestamp, ascending.
    fn timestamps(&self) -> Result<Vec<u64>, TgsError>;

    /// Number of sentiment clusters.
    fn k(&self) -> Result<usize, TgsError>;

    /// The worker's frozen vocabulary, as its token list (token id =
    /// list index). Fetched once per fleet; the router ranks
    /// `top_words` locally against it.
    fn vocab_tokens(&self) -> Result<Vec<String>, TgsError>;

    /// The solver's current decayed sentiment estimate for a user —
    /// the factor broadcast into ghost rows on other shards.
    fn user_factor(&self, user: usize) -> Result<Option<Vec<f64>>, TgsError>;

    /// Drains the queue and serializes the worker as one single-engine
    /// checkpoint section (the fleet checkpoint's per-shard payload and
    /// the wire serialization of a whole worker).
    fn checkpoint_section(&self) -> Result<Vec<u8>, TgsError>;

    /// Like [`ShardTransport::checkpoint_section`], but also registers
    /// the section as a *base* for delta checkpointing and returns its
    /// worker-local mark id (see [`crate::delta`]). Ids are per-worker
    /// and not persisted: a respawned or restored worker starts fresh.
    fn checkpoint_base(&self) -> Result<(u64, Vec<u8>), TgsError>;

    /// The serialized [`crate::CheckpointDelta`] of everything that
    /// changed on this worker since the mark `base_id`, registering the
    /// tip as a new mark. `Ok(None)` means the mark cannot serve a
    /// delta (unknown, aged out, invalidated by a migration) — take a
    /// fresh [`ShardTransport::checkpoint_base`] instead. Idempotency:
    /// re-asking the same `base_id` yields an equivalent delta (a new
    /// mark id, same state), so retries after a lost reply are safe.
    fn delta_since(&self, base_id: u64) -> Result<Option<Vec<u8>>, TgsError>;

    /// Removes and returns all per-user state for ids in `lo..hi`,
    /// serialized with [`SentimentEngine::export_users_bytes`]. The
    /// caller must have flushed this worker first.
    fn export_users(&self, lo: usize, hi: usize) -> Result<Vec<u8>, TgsError>;

    /// Imports per-user state previously exported from another worker.
    /// On rejection the exported bytes remain valid: re-import them to
    /// the source to roll the migration back.
    fn import_users(&self, users: &[u8]) -> Result<(), TgsError>;

    /// Starts a fresh worker sharing this one's frozen configuration
    /// with a cold solver and empty history — the spawn path of a shard
    /// split. A remote transport spawns the sibling on the same server.
    fn spawn_sibling(&self) -> Result<Arc<dyn ShardTransport>, TgsError>;

    /// Folds an entire (flushed) worker's recorded state — serialized
    /// as a checkpoint section — into this worker: the absorb path of a
    /// shard merge. The section is only read, so a failed absorb leaves
    /// both sides untouched.
    fn absorb_section(&self, section: &[u8]) -> Result<(), TgsError>;

    /// Advances the transport's generation floor (monotone: older
    /// values are ignored). The router calls this on every worker after
    /// a rebalance commits, and with `u64::MAX` on a retired worker so
    /// any handle still holding it re-keys instead of double-counting.
    fn set_generation(&self, generation: u64) -> Result<(), TgsError>;

    /// Asks the worker to pin itself to the `set_index`-th of `n_sets`
    /// disjoint core groups (best effort, `TGS_PIN`-gated). Remote
    /// workers pin within their own host's core budget, so a remote
    /// transport treats this as a no-op.
    fn request_core_set(&self, set_index: usize, n_sets: usize);

    /// Drains the worker and releases it (a remote transport drops the
    /// server-side slot). Idempotent best effort during fleet teardown.
    fn shutdown(&self) -> Result<(), TgsError>;

    /// Where this worker lives, for error context and diagnostics —
    /// `"local"` for in-process workers, the peer address for remote
    /// ones.
    fn peer(&self) -> String;
}

/// The in-process [`ShardTransport`]: a [`SentimentEngine`] plus the
/// monotone generation floor. This is the transport every fleet built
/// by [`crate::EngineBuilder::fit_sharded`] runs on; the router cannot
/// tell it apart from a TCP shard.
pub struct LocalShard {
    engine: SentimentEngine,
    generation: AtomicU64,
}

impl LocalShard {
    /// Wraps an engine as a shard transport, starting at generation 0.
    pub fn new(engine: SentimentEngine) -> Self {
        Self {
            engine,
            generation: AtomicU64::new(0),
        }
    }

    /// Adopts `generation` if newer; rejects it if older than the
    /// newest seen (see the module docs for why both halves matter).
    fn check(&self, generation: u64) -> Result<(), TgsError> {
        let newest = self.generation.fetch_max(generation, Ordering::Relaxed);
        if generation < newest {
            return Err(TgsError::StaleTopology {
                have: generation,
                current: newest,
            });
        }
        Ok(())
    }
}

impl ShardTransport for LocalShard {
    fn ingest(&self, generation: u64, snapshot: EngineSnapshot) -> Result<(), TgsError> {
        self.check(generation)?;
        self.engine.ingest(snapshot)
    }

    fn timeline(&self, generation: u64, lo: u64, hi: u64) -> Result<Vec<TimelineEntry>, TgsError> {
        self.check(generation)?;
        Ok(self.engine.query().timeline(lo..=hi))
    }

    fn latest_timestamp(&self, generation: u64) -> Result<Option<u64>, TgsError> {
        self.check(generation)?;
        Ok(self.engine.query().latest().map(|e| e.timestamp))
    }

    fn user_sentiment(
        &self,
        generation: u64,
        user: usize,
        at: u64,
    ) -> Result<UserSentiment, TgsError> {
        self.check(generation)?;
        self.engine.query().user_sentiment(user, at)
    }

    fn user_timeline(
        &self,
        generation: u64,
        user: usize,
    ) -> Result<Vec<(u64, Vec<f64>)>, TgsError> {
        self.check(generation)?;
        self.engine.query().user_timeline(user)
    }

    fn known_users(&self, generation: u64) -> Result<usize, TgsError> {
        self.check(generation)?;
        Ok(self.engine.query().known_users())
    }

    fn cluster_summary(&self, generation: u64, t: u64) -> Result<ClusterSummary, TgsError> {
        self.check(generation)?;
        self.engine.query().cluster_summary(t)
    }

    fn sf_at(&self, generation: u64, t: u64) -> Result<DenseMatrix, TgsError> {
        self.check(generation)?;
        self.engine.query().sf_at(t)
    }

    fn flush(&self) -> Result<u64, TgsError> {
        self.engine.flush()
    }

    fn stats(&self) -> Result<EngineStats, TgsError> {
        Ok(self.engine.stats())
    }

    fn queue_has_room(&self) -> Result<bool, TgsError> {
        Ok(self.engine.has_capacity())
    }

    fn timestamps(&self) -> Result<Vec<u64>, TgsError> {
        Ok(self.engine.query().timestamps())
    }

    fn k(&self) -> Result<usize, TgsError> {
        Ok(self.engine.config().k)
    }

    fn vocab_tokens(&self) -> Result<Vec<String>, TgsError> {
        Ok(self.engine.vocabulary().tokens().to_vec())
    }

    fn user_factor(&self, user: usize) -> Result<Option<Vec<f64>>, TgsError> {
        Ok(self.engine.user_factor(user))
    }

    fn checkpoint_section(&self) -> Result<Vec<u8>, TgsError> {
        Ok(self.engine.checkpoint()?.as_bytes().to_vec())
    }

    fn checkpoint_base(&self) -> Result<(u64, Vec<u8>), TgsError> {
        let (id, ckpt) = self.engine.checkpoint_base()?;
        Ok((id, ckpt.as_bytes().to_vec()))
    }

    fn delta_since(&self, base_id: u64) -> Result<Option<Vec<u8>>, TgsError> {
        Ok(self
            .engine
            .delta_since(base_id)?
            .map(|d| d.as_bytes().to_vec()))
    }

    fn export_users(&self, lo: usize, hi: usize) -> Result<Vec<u8>, TgsError> {
        Ok(self.engine.export_users_bytes(lo, hi))
    }

    fn import_users(&self, users: &[u8]) -> Result<(), TgsError> {
        self.engine.import_users_bytes(users)
    }

    fn spawn_sibling(&self) -> Result<Arc<dyn ShardTransport>, TgsError> {
        let sibling = self.engine.spawn_sibling()?;
        let transport = LocalShard::new(sibling);
        // The sibling joins mid-rebalance: start it at this worker's
        // floor so the post-rebalance generation bump lands uniformly.
        transport
            .generation
            .store(self.generation.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(Arc::new(transport))
    }

    fn absorb_section(&self, section: &[u8]) -> Result<(), TgsError> {
        let donor = SentimentEngine::restore(&crate::checkpoint::EngineCheckpoint::from_bytes(
            section.to_vec(),
        ))?;
        self.engine.absorb(&donor)?;
        donor.shutdown()
    }

    fn set_generation(&self, generation: u64) -> Result<(), TgsError> {
        self.generation.fetch_max(generation, Ordering::Relaxed);
        Ok(())
    }

    fn request_core_set(&self, set_index: usize, n_sets: usize) {
        self.engine.request_core_set(set_index, n_sets);
    }

    fn shutdown(&self) -> Result<(), TgsError> {
        // Drain and surface pending failures; the worker thread itself
        // joins when the last Arc drops (SentimentEngine's Drop).
        self.engine.flush().map(|_| ())
    }

    fn peer(&self) -> String {
        "local".to_string()
    }
}

/// Reads the user count out of an [`ShardTransport::export_users`]
/// payload without decoding the rows — the router skips the import call
/// for empty migrations.
pub fn exported_users_len(bytes: &[u8]) -> Result<u64, TgsError> {
    if bytes.len() < 16 {
        return Err(TgsError::corrupt(
            "truncated migrated-users payload: missing row counts",
        ));
    }
    let track = u64::from_le_bytes(bytes[..8].try_into().expect("checked length"));
    let solver = u64::from_le_bytes(bytes[8..16].try_into().expect("checked length"));
    Ok(track.max(solver))
}

fn corrupt(what: &str) -> TgsError {
    TgsError::corrupt(format!("malformed migrated-users payload: {what}"))
}

fn rd_u64(b: &mut Bytes, what: &str) -> Result<u64, TgsError> {
    if b.remaining() < 8 {
        return Err(corrupt(what));
    }
    Ok(b.get_u64_le())
}

fn rd_count(b: &mut Bytes, elem_floor: usize, what: &str) -> Result<usize, TgsError> {
    usize::try_from(rd_u64(b, what)?)
        .ok()
        .filter(|&n| n.saturating_mul(elem_floor.max(1)) <= b.remaining())
        .ok_or_else(|| corrupt(what))
}

/// One user's `(timestamp key, distribution)` observations — the shared
/// row shape of the queryable track and the solver's aged history.
pub(crate) type UserRow = (usize, Vec<(u64, Vec<f64>)>);

fn wr_dists(buf: &mut BytesMut, rows: &[(u64, Vec<f64>)]) {
    buf.put_u64_le(rows.len() as u64);
    for (key, dist) in rows {
        buf.put_u64_le(*key);
        buf.put_u64_le(dist.len() as u64);
        for &v in dist {
            buf.put_f64_le(v);
        }
    }
}

fn rd_dists(b: &mut Bytes, what: &str) -> Result<Vec<(u64, Vec<f64>)>, TgsError> {
    let n = rd_count(b, 16, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let key = rd_u64(b, what)?;
        let k = rd_count(b, 8, what)?;
        let mut dist = Vec::with_capacity(k);
        for _ in 0..k {
            if b.remaining() < 8 {
                return Err(corrupt(what));
            }
            dist.push(b.get_f64_le());
        }
        out.push((key, dist));
    }
    Ok(out)
}

/// Serializes rows of `(user id, [(key, distribution)])` — the shared
/// shape of the queryable track and the solver's aged history rows.
fn wr_user_rows(buf: &mut BytesMut, rows: &[UserRow]) {
    for (user, observations) in rows {
        buf.put_u64_le(*user as u64);
        wr_dists(buf, observations);
    }
}

fn rd_user_rows(b: &mut Bytes, n: usize, what: &str) -> Result<Vec<UserRow>, TgsError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let user = usize::try_from(rd_u64(b, what)?).map_err(|_| corrupt(what))?;
        out.push((user, rd_dists(b, what)?));
    }
    Ok(out)
}

/// Byte-level migration seam used by [`SentimentEngine`]'s
/// `export_users_bytes` / `import_users_bytes` pair. Layout (all LE):
/// `u64 track_users | u64 solver_rows | track rows | solver rows`,
/// where each row is `u64 user | u64 n | n × (u64 key, u64 k, k × f64)`.
/// `f64`s round-trip by bit pattern, so a local rebalance through bytes
/// stays byte-identical to the former in-memory path.
pub(crate) fn encode_user_range(track: &[UserRow], solver_rows: &[UserRow]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u64_le(track.len() as u64);
    buf.put_u64_le(solver_rows.len() as u64);
    wr_user_rows(&mut buf, track);
    wr_user_rows(&mut buf, solver_rows);
    buf.freeze().as_slice().to_vec()
}

pub(crate) fn decode_user_range(bytes: &[u8]) -> Result<(Vec<UserRow>, Vec<UserRow>), TgsError> {
    let mut b = Bytes::from(bytes.to_vec());
    let track_n = rd_count(&mut b, 8, "track user count")?;
    let solver_n = rd_count(&mut b, 8, "solver row count")?;
    let track = rd_user_rows(&mut b, track_n, "track rows")?;
    let solver = rd_user_rows(&mut b, solver_n, "solver rows")?;
    if b.remaining() != 0 {
        return Err(corrupt("trailing bytes"));
    }
    Ok((track, solver))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_range_codec_roundtrips() {
        let track = vec![
            (
                3usize,
                vec![(10u64, vec![0.25, 0.75]), (11, vec![0.5, 0.5])],
            ),
            (9, vec![]),
        ];
        let solver = vec![(3usize, vec![(0u64, vec![1.0, 0.0])])];
        let bytes = encode_user_range(&track, &solver);
        assert_eq!(exported_users_len(&bytes).unwrap(), 2);
        let (t2, s2) = decode_user_range(&bytes).unwrap();
        assert_eq!(t2, track);
        assert_eq!(s2, solver);
        // Empty payloads are legal and read as zero users.
        let empty = encode_user_range(&[], &[]);
        assert_eq!(exported_users_len(&empty).unwrap(), 0);
        assert!(decode_user_range(&empty).unwrap().0.is_empty());
    }

    #[test]
    fn user_range_codec_rejects_corruption() {
        assert!(exported_users_len(&[0u8; 15]).is_err());
        let bytes = encode_user_range(&[(1, vec![(5, vec![0.5])])], &[]);
        assert!(decode_user_range(&bytes[..bytes.len() - 1]).is_err());
        let mut huge = bytes.clone();
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_user_range(&huge).is_err(), "bounded row count");
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_user_range(&trailing).is_err());
    }
}

//! The multi-shard router: `S` [`SentimentEngine`] workers behind one
//! ingest/query seam.
//!
//! A [`ShardedEngine`] owns one worker per user-range shard (see
//! `tgs_data::UserRangePartitioner`). Ingest **fans out**: each document
//! follows its author's shard (re-tweets follow their document and are
//! dropped — and counted — when they cross shards); every worker keeps
//! its own ingest queue, worker thread and solver, so shard-local solves
//! run concurrently on multi-core hosts. Queries **fan in**: timelines
//! merge per timestamp, `top_words` merges the per-shard word–sentiment
//! factors (weighted by shard tweet counts) before ranking, and per-user
//! queries route transparently to the owning shard.
//!
//! With `shards = 1` the router is the identity: the single worker
//! receives byte-identical snapshots, records a byte-identical timeline,
//! and its checkpoint section equals a plain [`SentimentEngine`]
//! checkpoint byte for byte (tested in `tests/sharded_engine.rs`). With
//! more shards, shard solves are independent per snapshot — anchored to
//! common cluster semantics by the shared lexicon prior — so merged
//! timelines agree with the single-shard ones within a documented
//! tolerance rather than exactly.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::RangeBounds;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use tgs_core::sharded::merge_sf;
use tgs_core::TgsError;
use tgs_data::{route_docs, UserRangePartitioner};
use tgs_linalg::DenseMatrix;

use crate::checkpoint::EngineCheckpoint;
use crate::engine::{EngineStats, SentimentEngine};
use crate::query::{rank_top_words, ClusterSummary, EngineQuery, TimelineEntry, UserSentiment};
use crate::snapshot::{EngineRetweet, EngineSnapshot};

/// Magic + format version prefix of the multi-shard checkpoint.
const SHARD_MAGIC: &[u8; 8] = b"TGSSHR\x00\x01";

/// A serialized multi-shard session: a validated header (shard count +
/// partitioner parameters + fingerprint) followed by one length-prefixed
/// [`EngineCheckpoint`] section per shard.
#[derive(Debug, Clone)]
pub struct ShardedCheckpoint {
    bytes: Bytes,
}

impl ShardedCheckpoint {
    /// Wraps previously serialized bytes (validation happens at
    /// [`ShardedEngine::restore`]).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self {
            bytes: Bytes::from(data),
        }
    }

    /// The serialized byte stream.
    pub fn as_bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the checkpoint holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// True when `data` carries the multi-shard magic (as opposed to a
    /// single-engine [`EngineCheckpoint`] stream).
    pub fn sniff(data: &[u8]) -> bool {
        data.starts_with(SHARD_MAGIC)
    }

    /// The per-shard checkpoint sections, in shard order. Each section is
    /// a complete single-engine checkpoint byte stream.
    pub fn sections(&self) -> Result<Vec<Vec<u8>>, TgsError> {
        let (_, sections) = decode_header(&self.bytes)?;
        Ok(sections)
    }
}

fn corrupt(what: &str) -> TgsError {
    TgsError::corrupt(format!("truncated or malformed field: {what}"))
}

fn rd_u64(b: &mut Bytes, what: &str) -> Result<u64, TgsError> {
    if b.remaining() < 8 {
        return Err(corrupt(what));
    }
    Ok(b.get_u64_le())
}

/// Parses the header and splits off the per-shard sections.
fn decode_header(bytes: &Bytes) -> Result<(UserRangePartitioner, Vec<Vec<u8>>), TgsError> {
    let mut b = bytes.clone();
    if b.remaining() < SHARD_MAGIC.len() {
        return Err(corrupt("sharded magic header"));
    }
    let mut magic = [0u8; 8];
    b.copy_to_slice(&mut magic);
    if &magic != SHARD_MAGIC {
        return Err(TgsError::corrupt(
            "unrecognized magic header (not a multi-shard tgs-engine checkpoint)",
        ));
    }
    // Bound the count against the remaining bytes (each section needs at
    // least an 8-byte length prefix) so a crafted header cannot trigger a
    // huge allocation — mirrors `rd_count` in the single-engine decoder.
    let shards = usize::try_from(rd_u64(&mut b, "shard count")?)
        .ok()
        .filter(|&s| s >= 1 && s.saturating_mul(8) <= b.remaining())
        .ok_or_else(|| corrupt("shard count"))?;
    let universe = usize::try_from(rd_u64(&mut b, "partitioner universe")?)
        .map_err(|_| corrupt("universe"))?;
    let stride =
        usize::try_from(rd_u64(&mut b, "partitioner stride")?).map_err(|_| corrupt("stride"))?;
    let fingerprint = rd_u64(&mut b, "partitioner fingerprint")?;
    let partitioner = UserRangePartitioner::new(universe, shards);
    if partitioner.stride() != stride || partitioner.fingerprint() != fingerprint {
        return Err(TgsError::corrupt(format!(
            "partitioner mismatch: checkpoint declares stride {stride} / fingerprint \
             {fingerprint:#x}, but {shards} shards over {universe} users derive stride {} / \
             fingerprint {:#x}",
            partitioner.stride(),
            partitioner.fingerprint()
        )));
    }
    let mut sections = Vec::with_capacity(shards);
    for shard in 0..shards {
        let len = usize::try_from(rd_u64(&mut b, "shard section length")?)
            .map_err(|_| corrupt("shard section length"))?;
        if b.remaining() < len {
            return Err(TgsError::corrupt(format!(
                "shard {shard} section claims {len} bytes but only {} remain",
                b.remaining()
            )));
        }
        let mut raw = vec![0u8; len];
        b.copy_to_slice(&mut raw);
        sections.push(raw);
    }
    if b.remaining() != 0 {
        return Err(TgsError::corrupt(format!(
            "{} trailing bytes after the final shard section",
            b.remaining()
        )));
    }
    Ok((partitioner, sections))
}

/// A fleet of per-shard [`SentimentEngine`] workers behind one router.
///
/// Built via [`crate::EngineBuilder::fit_sharded`]; see the module docs
/// for the fan-out/fan-in semantics and the single-shard identity
/// guarantee.
pub struct ShardedEngine {
    partitioner: UserRangePartitioner,
    workers: Vec<SentimentEngine>,
    dropped_cross_shard: AtomicU64,
    /// Every timestamp ever fanned out (or restored). Workers enforce
    /// append-only per shard, but a re-ingested timestamp whose documents
    /// route to *different* shards than the original would slip past the
    /// per-worker check and silently mix two snapshots in the merged
    /// timeline — so the router enforces the invariant fleet-wide.
    ingested: Mutex<BTreeSet<u64>>,
}

impl ShardedEngine {
    pub(crate) fn start(partitioner: UserRangePartitioner, workers: Vec<SentimentEngine>) -> Self {
        assert_eq!(
            workers.len(),
            partitioner.shards(),
            "one worker per shard required"
        );
        let ingested = workers
            .iter()
            .flat_map(|w| w.query().timestamps())
            .collect();
        Self {
            partitioner,
            workers,
            dropped_cross_shard: AtomicU64::new(0),
            ingested: Mutex::new(ingested),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The routing function (shared with the checkpoint format).
    pub fn partitioner(&self) -> &UserRangePartitioner {
        &self.partitioner
    }

    /// Cross-shard re-tweets dropped at ingest so far (a re-tweet whose
    /// user lives in a different shard than the document's author cannot
    /// be represented once the user axis is partitioned).
    pub fn dropped_cross_shard(&self) -> u64 {
        self.dropped_cross_shard.load(Ordering::Relaxed)
    }

    /// Splits one snapshot into per-shard snapshots: documents follow
    /// their author's shard; re-tweets follow their document and are
    /// dropped when they cross shards. Pure routing — the caller commits
    /// the dropped count only once the snapshot is accepted.
    fn split(&self, snapshot: EngineSnapshot) -> Result<(Vec<EngineSnapshot>, usize), TgsError> {
        let EngineSnapshot {
            timestamp,
            docs,
            retweets,
        } = snapshot;
        let n = docs.len();
        for r in &retweets {
            if r.doc >= n {
                return Err(TgsError::invalid_argument(format!(
                    "retweet references document {} but the snapshot has {n}",
                    r.doc
                )));
            }
        }
        let authors: Vec<usize> = docs.iter().map(|d| d.user).collect();
        let events: Vec<(usize, usize)> = retweets.iter().map(|r| (r.user, r.doc)).collect();
        let routing = route_docs(&self.partitioner, &authors, &events);
        let mut shards: Vec<EngineSnapshot> = (0..self.shards())
            .map(|_| EngineSnapshot::new(timestamp))
            .collect();
        for (doc, &shard) in docs.into_iter().zip(routing.doc_shard.iter()) {
            shards[shard].docs.push(doc);
        }
        for (shard, events) in routing.shard_retweets.iter().enumerate() {
            shards[shard].retweets = events
                .iter()
                .map(|&(user, doc)| EngineRetweet { user, doc })
                .collect();
        }
        Ok((shards, routing.dropped_retweets))
    }

    /// Fans one snapshot out to the owning shards. Returns as soon as
    /// every sub-snapshot is queued; shards whose slice is empty are
    /// skipped entirely (their workers do not step). The stream is
    /// append-only *fleet-wide*: re-ingesting an already-seen timestamp
    /// is rejected here (synchronously), not per worker, so a duplicate
    /// whose documents route to different shards than the original can
    /// never partially commit.
    pub fn ingest(&self, snapshot: EngineSnapshot) -> Result<(), TgsError> {
        if snapshot.is_empty() {
            // Workers skip empty snapshots without advancing the stream;
            // the router mirrors that (the timestamp stays claimable).
            return Ok(());
        }
        let timestamp = snapshot.timestamp;
        // Validate + route before claiming the timestamp, so a malformed
        // snapshot (dangling re-tweet reference) does not burn it.
        let (subs, dropped) = self.split(snapshot)?;
        if !self.ingested.lock().insert(timestamp) {
            return Err(TgsError::invalid_argument(format!(
                "timestamp {timestamp} already ingested; the stream is append-only"
            )));
        }
        self.dropped_cross_shard
            .fetch_add(dropped as u64, Ordering::Relaxed);
        for (shard, sub) in subs.into_iter().enumerate() {
            if !sub.is_empty() {
                self.workers[shard].ingest(sub)?;
            }
        }
        Ok(())
    }

    /// Blocks until every worker drained its queue, then reports the
    /// first pending ingest failure (if any) or the number of distinct
    /// timestamps in the merged timeline.
    pub fn flush(&self) -> Result<u64, TgsError> {
        let mut first_err = None;
        for worker in &self.workers {
            // Drain every worker even after a failure so the router never
            // leaves queues half-processed.
            if let Err(e) = worker.flush() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(self.steps()),
        }
    }

    /// Distinct timestamps committed across all shards.
    pub fn steps(&self) -> u64 {
        let mut seen = BTreeSet::new();
        for worker in &self.workers {
            seen.extend(worker.query().timestamps());
        }
        seen.len() as u64
    }

    /// A read handle that fans queries across all shards.
    pub fn query(&self) -> ShardedQuery {
        ShardedQuery {
            partitioner: self.partitioner.clone(),
            queries: self.workers.iter().map(|w| w.query()).collect(),
        }
    }

    /// Merged ingest metrics: counters sum across shards;
    /// `last_step_ns` is the slowest shard's (it gates the fan-out's
    /// latency).
    pub fn stats(&self) -> EngineStats {
        self.workers
            .iter()
            .map(SentimentEngine::stats)
            .fold(EngineStats::default(), |acc, s| acc.merge(&s))
    }

    /// Drains every queue and serializes the whole fleet: a validated
    /// header (shard count + partitioner parameters) followed by each
    /// worker's [`EngineCheckpoint`] section.
    pub fn checkpoint(&self) -> Result<ShardedCheckpoint, TgsError> {
        let mut sections = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            sections.push(worker.checkpoint()?);
        }
        let mut buf =
            BytesMut::with_capacity(64 + sections.iter().map(|s| s.len() + 8).sum::<usize>());
        buf.put_slice(SHARD_MAGIC);
        buf.put_u64_le(self.workers.len() as u64);
        buf.put_u64_le(self.partitioner.universe() as u64);
        buf.put_u64_le(self.partitioner.stride() as u64);
        buf.put_u64_le(self.partitioner.fingerprint());
        for section in &sections {
            buf.put_u64_le(section.len() as u64);
            buf.put_slice(section.as_bytes());
        }
        Ok(ShardedCheckpoint {
            bytes: buf.freeze(),
        })
    }

    /// Rebuilds a fleet from a multi-shard checkpoint. The header's shard
    /// count and partitioner parameters are validated against each other
    /// (and the fingerprint) before any section decodes, so a restore can
    /// never silently re-route users.
    pub fn restore(ckpt: &ShardedCheckpoint) -> Result<Self, TgsError> {
        let (partitioner, sections) = decode_header(&ckpt.bytes)?;
        let workers = sections
            .into_iter()
            .map(|raw| SentimentEngine::restore(&EngineCheckpoint::from_bytes(raw)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::start(partitioner, workers))
    }

    /// Restores either checkpoint flavor from raw bytes: a multi-shard
    /// stream rebuilds the fleet; a single-engine [`EngineCheckpoint`]
    /// stream is wrapped as a one-shard fleet (the router is then the
    /// identity). This is what `tgs query` serves from.
    pub fn restore_any(data: Vec<u8>) -> Result<Self, TgsError> {
        if ShardedCheckpoint::sniff(&data) {
            return Self::restore(&ShardedCheckpoint::from_bytes(data));
        }
        let worker = SentimentEngine::restore(&EngineCheckpoint::from_bytes(data))?;
        Ok(Self::start(UserRangePartitioner::new(1, 1), vec![worker]))
    }

    /// Drains every queue and stops all workers, surfacing the first
    /// pending ingest failure instead of discarding it.
    pub fn shutdown(self) -> Result<(), TgsError> {
        let outcome = self.flush();
        for worker in self.workers {
            // Queues are already drained; shutdown only joins the worker
            // (and would re-surface the same failure we already hold).
            let _ = worker.shutdown();
        }
        outcome.map(|_| ())
    }
}

/// Read handle over a [`ShardedEngine`]'s merged history.
#[derive(Clone)]
pub struct ShardedQuery {
    partitioner: UserRangePartitioner,
    queries: Vec<EngineQuery>,
}

/// Folds shard `b` into the merged entry `a` (same timestamp).
fn merge_entries(a: &mut TimelineEntry, b: &TimelineEntry) {
    a.tweets += b.tweets;
    a.users += b.users;
    a.new_users += b.new_users;
    a.evolving_users += b.evolving_users;
    // The slowest shard gates the step; convergence means *every* shard
    // converged; objectives are additive across disjoint shards.
    a.iterations = a.iterations.max(b.iterations);
    a.converged &= b.converged;
    a.objective += b.objective;
    for (x, y) in a.tweet_counts.iter_mut().zip(&b.tweet_counts) {
        *x += y;
    }
    for (x, y) in a.user_counts.iter_mut().zip(&b.user_counts) {
        *x += y;
    }
}

impl ShardedQuery {
    /// Number of sentiment clusters.
    pub fn k(&self) -> usize {
        self.queries[0].k()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queries.len()
    }

    /// Merged timeline entries whose timestamp falls in `range`,
    /// ascending. Per timestamp, shard aggregates sum (tweets, users,
    /// per-cluster counts, objective), `iterations` is the slowest
    /// shard's, and `converged` requires every shard to have converged.
    pub fn timeline<R: RangeBounds<u64> + Clone>(&self, range: R) -> Vec<TimelineEntry> {
        let mut merged: BTreeMap<u64, TimelineEntry> = BTreeMap::new();
        for query in &self.queries {
            for entry in query.timeline(range.clone()) {
                match merged.entry(entry.timestamp) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(entry);
                    }
                    std::collections::btree_map::Entry::Occupied(mut slot) => {
                        merge_entries(slot.get_mut(), &entry);
                    }
                }
            }
        }
        merged.into_values().collect()
    }

    /// The most recent merged timeline entry, if any.
    pub fn latest(&self) -> Option<TimelineEntry> {
        let t = self
            .queries
            .iter()
            .filter_map(|q| q.latest().map(|e| e.timestamp))
            .max()?;
        self.timeline(t..=t).pop()
    }

    /// The user's sentiment as of `at`, answered by the shard that owns
    /// the user (shard-transparent: callers never see the routing).
    pub fn user_sentiment(&self, user: usize, at: u64) -> Result<UserSentiment, TgsError> {
        self.queries[self.partitioner.shard_of(user)].user_sentiment(user, at)
    }

    /// Every recorded observation for the user, ascending by timestamp.
    pub fn user_timeline(&self, user: usize) -> Result<Vec<(u64, Vec<f64>)>, TgsError> {
        self.queries[self.partitioner.shard_of(user)].user_timeline(user)
    }

    /// Users with recorded history across all shards (shards are
    /// user-disjoint, so the sum never double-counts).
    pub fn known_users(&self) -> usize {
        self.queries.iter().map(EngineQuery::known_users).sum()
    }

    /// Per-cluster composition of the merged snapshot at exactly `t`.
    pub fn cluster_summary(&self, t: u64) -> Result<ClusterSummary, TgsError> {
        let entry = self
            .timeline(t..=t)
            .pop()
            .ok_or(TgsError::SnapshotUnavailable { timestamp: t })?;
        Ok(ClusterSummary {
            timestamp: t,
            tweet_shares: entry.tweet_shares(),
            tweet_counts: entry.tweet_counts,
            user_counts: entry.user_counts,
        })
    }

    /// Cross-shard `top_words`: merges the shards' word–sentiment factors
    /// at `t` — weighted by each shard's tweet count that snapshot, in
    /// fixed shard order — then ranks the merged columns. Fails with
    /// [`TgsError::SnapshotUnavailable`] when no shard recorded `t`, or
    /// when any shard that did has already evicted its factors (a partial
    /// merge would silently skew the ranking).
    pub fn top_words(&self, t: u64, topk: usize) -> Result<Vec<Vec<(String, f64)>>, TgsError> {
        let mut parts: Vec<(f64, DenseMatrix)> = Vec::new();
        for query in &self.queries {
            match query.cluster_summary(t) {
                Ok(summary) => {
                    let weight = summary.tweet_counts.iter().sum::<usize>() as f64;
                    parts.push((weight, query.sf_at(t)?));
                }
                Err(TgsError::SnapshotUnavailable { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        // The solvers' merge policy verbatim (single part = bit-exact
        // clone), so engine-level rankings can never drift from
        // `solve_offline_sharded` / `ShardedOnlineSolver` semantics.
        let borrowed: Vec<(f64, &DenseMatrix)> = parts.iter().map(|(w, sf)| (*w, sf)).collect();
        let sf = merge_sf(&borrowed).ok_or(TgsError::SnapshotUnavailable { timestamp: t })?;
        Ok(rank_top_words(&sf, &self.queries[0].shared.vocab, topk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineBuilder, EngineSnapshot};
    use tgs_data::{day_windows, generate, GeneratorConfig};

    fn corpus() -> tgs_data::Corpus {
        generate(&GeneratorConfig {
            num_users: 24,
            total_tweets: 200,
            num_days: 8,
            ..Default::default()
        })
    }

    fn sharded(corpus: &tgs_data::Corpus, shards: usize) -> ShardedEngine {
        EngineBuilder::new()
            .k(3)
            .max_iters(8)
            .fit_sharded(corpus, shards)
            .expect("valid build")
    }

    fn stream(engine: &ShardedEngine, corpus: &tgs_data::Corpus) {
        for (lo, hi) in day_windows(corpus.num_days, 2) {
            engine
                .ingest(EngineSnapshot::from_corpus_window(corpus, lo, hi))
                .unwrap();
        }
        engine.flush().unwrap();
    }

    #[test]
    fn fan_out_covers_every_tweet_and_user_query_routes() {
        let c = corpus();
        let engine = sharded(&c, 3);
        stream(&engine, &c);
        let query = engine.query();
        let timeline = query.timeline(..);
        assert_eq!(timeline.len() as u64, engine.steps());
        let total: usize = timeline.iter().map(|e| e.tweets).sum();
        assert_eq!(total, c.num_tweets(), "no tweet may vanish in fan-out");
        for entry in &timeline {
            assert_eq!(entry.tweet_counts.iter().sum::<usize>(), entry.tweets);
            assert_eq!(entry.user_counts.iter().sum::<usize>(), entry.users);
        }
        // Every author answers through the router.
        let last = timeline.last().unwrap().timestamp;
        for t in c.tweets.iter().take(40) {
            let s = query.user_sentiment(t.author, last).unwrap();
            assert_eq!(s.distribution.len(), 3);
        }
        // Merged summary and top words answer for a recorded snapshot.
        let summary = query.cluster_summary(timeline[0].timestamp).unwrap();
        assert!((summary.tweet_shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let words = query.top_words(timeline[0].timestamp, 5).unwrap();
        assert_eq!(words.len(), 3);
        assert!(words.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn checkpoint_restore_roundtrips_the_fleet() {
        let c = corpus();
        let engine = sharded(&c, 2);
        stream(&engine, &c);
        let ckpt = engine.checkpoint().unwrap();
        assert!(ShardedCheckpoint::sniff(ckpt.as_bytes()));
        assert_eq!(ckpt.sections().unwrap().len(), 2);

        let restored = ShardedEngine::restore(&ckpt).unwrap();
        assert_eq!(restored.shards(), 2);
        assert_eq!(restored.query().timeline(..), engine.query().timeline(..));
        // Restored fleet keeps solving bit-identically.
        let extra = EngineSnapshot::from_corpus_window(&c, 0, c.num_days);
        let mut a_snap = extra.clone();
        a_snap.timestamp = 1000;
        let mut b_snap = extra;
        b_snap.timestamp = 1000;
        engine.ingest(a_snap).unwrap();
        restored.ingest(b_snap).unwrap();
        engine.flush().unwrap();
        restored.flush().unwrap();
        assert_eq!(restored.query().timeline(..), engine.query().timeline(..));
    }

    #[test]
    fn restore_rejects_tampered_headers() {
        let c = corpus();
        let engine = sharded(&c, 2);
        stream(&engine, &c);
        let full = engine.checkpoint().unwrap().as_bytes().to_vec();
        // Shard count flipped: partitioner fingerprint no longer matches.
        let mut wrong_shards = full.clone();
        wrong_shards[8..16].copy_from_slice(&3u64.to_le_bytes());
        assert!(ShardedEngine::restore(&ShardedCheckpoint::from_bytes(wrong_shards)).is_err());
        // Universe flipped: same.
        let mut wrong_universe = full.clone();
        wrong_universe[16..24].copy_from_slice(&7u64.to_le_bytes());
        assert!(ShardedEngine::restore(&ShardedCheckpoint::from_bytes(wrong_universe)).is_err());
        // Truncated section.
        let cut = full.len() - 9;
        assert!(
            ShardedEngine::restore(&ShardedCheckpoint::from_bytes(full[..cut].to_vec())).is_err()
        );
        assert!(ShardedEngine::restore(&ShardedCheckpoint::from_bytes(full)).is_ok());
    }

    #[test]
    fn restore_any_wraps_single_engine_checkpoints() {
        let c = corpus();
        let single = EngineBuilder::new().k(3).max_iters(8).fit(&c).unwrap();
        for (lo, hi) in day_windows(c.num_days, 2) {
            single
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
        }
        single.flush().unwrap();
        let ckpt = single.checkpoint().unwrap();
        let wrapped = ShardedEngine::restore_any(ckpt.as_bytes().to_vec()).unwrap();
        assert_eq!(wrapped.shards(), 1);
        assert_eq!(wrapped.query().timeline(..), single.query().timeline(..));
        let t = single.query().latest().unwrap().timestamp;
        assert_eq!(
            wrapped.query().top_words(t, 6).unwrap(),
            single.query().top_words(t, 6).unwrap()
        );
    }

    #[test]
    fn cross_shard_retweets_are_counted() {
        let c = corpus();
        let engine = sharded(&c, 4);
        let full = EngineSnapshot::from_corpus_window(&c, 0, c.num_days);
        let had_retweets = !full.retweets.is_empty();
        engine.ingest(full).unwrap();
        engine.flush().unwrap();
        if had_retweets {
            // The synthetic corpus re-tweets across the user range, so 4
            // shards must drop at least one edge.
            assert!(engine.dropped_cross_shard() > 0);
        }
    }

    #[test]
    fn duplicate_timestamps_rejected_fleet_wide() {
        // A duplicate whose documents route to a *different* shard than
        // the original would pass every per-worker append-only check;
        // the router must reject it synchronously.
        let c = corpus();
        let engine = sharded(&c, 2);
        let shard_user = |shard: usize| {
            (0..c.num_users())
                .find(|&u| engine.partitioner().shard_of(u) == shard)
                .expect("both shards own users")
        };
        let mut first = EngineSnapshot::new(5);
        first.push_tokens(shard_user(0), vec!["hello".into()]);
        engine.ingest(first).unwrap();
        let mut dup = EngineSnapshot::new(5);
        dup.push_tokens(shard_user(1), vec!["hello".into()]);
        let err = engine.ingest(dup).unwrap_err();
        assert_eq!(err.kind(), tgs_core::TgsErrorKind::InvalidArgument);
        engine.flush().unwrap();
        assert_eq!(engine.steps(), 1, "the duplicate must not commit anywhere");
        // A fresh timestamp still flows normally afterwards.
        let mut next = EngineSnapshot::new(6);
        next.push_tokens(shard_user(1), vec!["hello".into()]);
        engine.ingest(next).unwrap();
        engine.flush().unwrap();
        assert_eq!(engine.steps(), 2);
    }

    #[test]
    fn stats_aggregate_across_workers() {
        let c = corpus();
        let engine = sharded(&c, 2);
        stream(&engine, &c);
        let stats = engine.stats();
        assert_eq!(stats.queued, 0);
        assert!(stats.ingested > 0);
        assert!(stats.last_step_ns > 0);
    }
}

//! The multi-shard router: `S` [`SentimentEngine`] workers behind one
//! ingest/query seam, over an **elastic** user-range topology.
//!
//! A [`ShardedEngine`] owns one worker per shard of a
//! `tgs_data::PartitionMap` (explicit sorted user-range boundaries).
//! Ingest **fans out**: each document follows its author's shard; every
//! worker keeps its own ingest queue, worker thread and solver, so
//! shard-local solves run concurrently on multi-core hosts. Queries
//! **fan in**: timelines merge per timestamp, `top_words` merges the
//! per-shard word–sentiment factors (weighted by shard tweet counts)
//! before ranking, and per-user queries route transparently to the
//! owning shard.
//!
//! **Cross-shard re-tweets.** In legacy drop mode a re-tweet whose user
//! lives on another shard is counted and dropped. With the ghost-user
//! protocol ([`crate::EngineBuilder::ghost_users`]) the edge is *kept*
//! on its document's shard: the remote user materializes as a ghost row
//! carrying their current sentiment factor (sampled from the owning
//! worker after a fleet quiesce, so the exchange is deterministic),
//! excluded from the receiving shard's history and user aggregates. No
//! edge is dropped — `dropped_cross_shard` stays 0 by construction.
//!
//! **Live rebalance.** [`ShardedEngine::rebalance`] applies a
//! `RepartitionPlan` (split / merge / boundary move) to a running
//! fleet: quiesce, evolve the worker set op by op in lockstep with the
//! map (a split spawns a cold sibling for the right half, a merge
//! absorbs the retired worker's recorded state into its neighbour, a
//! boundary move keeps both workers), migrate every re-owned user's
//! history through the per-user export/import seam (age-relative
//! solver rows — placement-independent), swap the map, resume.
//! [`ShardedEngine::maybe_rebalance`] automates this from per-shard
//! tweet-count skew (`tgs stream --max-skew`).
//!
//! With `shards = 1` the router is the identity: the single worker
//! receives byte-identical snapshots, records a byte-identical timeline,
//! and its checkpoint section equals a plain [`SentimentEngine`]
//! checkpoint byte for byte (tested in `tests/sharded_engine.rs`). With
//! more shards, shard solves are independent per snapshot — anchored to
//! common cluster semantics by the shared lexicon prior — so merged
//! timelines agree with the single-shard ones within a documented
//! tolerance rather than exactly.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Bound, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use tgs_core::sharded::merge_sf;
use tgs_core::{TgsError, TgsErrorKind};
use tgs_data::{
    route_docs, route_docs_ghost, PartitionMap, RepartitionOp, RepartitionPlan,
    UserRangePartitioner,
};
use tgs_linalg::DenseMatrix;
use tgs_text::Vocabulary;

use crate::batch::{BatchPolicy, BatchingIngest};
use crate::checkpoint::EngineCheckpoint;
use crate::engine::{EngineStats, SentimentEngine};
use crate::query::{rank_top_words, ClusterSummary, TimelineEntry, UserSentiment};
use crate::snapshot::{EngineRetweet, EngineSnapshot};
use crate::transport::{exported_users_len, LocalShard, ShardTransport};

/// Magic + format version prefix of the v1 (stride-map) multi-shard
/// checkpoint. Still restorable; no longer written.
const SHARD_MAGIC_V1: &[u8; 8] = b"TGSSHR\x00\x01";
/// Magic + format version prefix of the v2 (explicit partition map +
/// ghost flag) multi-shard checkpoint.
const SHARD_MAGIC_V2: &[u8; 8] = b"TGSSHR\x00\x02";

/// A serialized multi-shard session: a validated header (partition map +
/// ghost flag + fingerprint) followed by one length-prefixed
/// [`EngineCheckpoint`] section per shard.
#[derive(Debug, Clone)]
pub struct ShardedCheckpoint {
    bytes: Bytes,
}

impl ShardedCheckpoint {
    /// Wraps previously serialized bytes (validation happens at
    /// [`ShardedEngine::restore`]).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self {
            bytes: Bytes::from(data),
        }
    }

    /// The serialized byte stream.
    pub fn as_bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the checkpoint holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// True when `data` carries a multi-shard magic — either format
    /// version — as opposed to a single-engine [`EngineCheckpoint`]
    /// stream.
    pub fn sniff(data: &[u8]) -> bool {
        data.starts_with(SHARD_MAGIC_V1) || data.starts_with(SHARD_MAGIC_V2)
    }

    /// The per-shard checkpoint sections, in shard order. Each section is
    /// a complete single-engine checkpoint byte stream.
    pub fn sections(&self) -> Result<Vec<Vec<u8>>, TgsError> {
        let header = decode_header(&self.bytes)?;
        Ok(header.sections)
    }
}

/// Magic + format version prefix of a serialized multi-shard delta.
const SHARD_DELTA_MAGIC: &[u8; 8] = b"TGSSDL\x00\x01";

/// The delta-checkpoint tips of a whole fleet: the partition-map
/// fingerprint the tips were taken under plus one worker-local mark id
/// per slot. Feed the tips back to [`ShardedEngine::delta_since`] to
/// get everything that changed since; a rebalance in between changes
/// the fingerprint and the call reports the tips unavailable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetTips {
    /// Fingerprint of the partition map the tips were taken under.
    pub fingerprint: u64,
    /// One worker-local mark id per shard slot, in shard order.
    pub slots: Vec<u64>,
}

impl FleetTips {
    /// A content-derived 64-bit key for these tips (splitmix-style
    /// mixing over the fingerprint and slot ids). Both ends of a wire
    /// protocol can derive the same key from the same tips, so a router
    /// can hand it out as a fleet base id and a client holding a
    /// [`ShardedDelta`] can recompute its next anchor from
    /// [`ShardedDelta::tips`] without a second round trip.
    pub fn key(&self) -> u64 {
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut acc = mix(self.fingerprint ^ (self.slots.len() as u64).rotate_left(17));
        for (i, &slot) in self.slots.iter().enumerate() {
            acc = mix(acc ^ slot.wrapping_add(i as u64).rotate_left(23));
        }
        acc
    }
}

/// A serialized multi-shard incremental checkpoint: the same validated
/// topology header as [`ShardedCheckpoint`], followed by one section
/// per slot — a single-engine [`crate::CheckpointDelta`] where the
/// worker could serve one, or a full checkpoint-base fallback where it
/// could not (e.g. a freshly respawned slot). Coverage semantics match
/// full fleet checkpoints: every slot is present or the encode fails.
#[derive(Debug, Clone)]
pub struct ShardedDelta {
    bytes: Bytes,
}

impl ShardedDelta {
    /// Wraps previously serialized bytes (validation happens at
    /// [`ShardedEngine::apply_delta`]).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self {
            bytes: Bytes::from(data),
        }
    }

    /// The serialized byte stream.
    pub fn as_bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the delta holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// True when `data` carries the multi-shard delta magic.
    pub fn sniff(data: &[u8]) -> bool {
        data.starts_with(SHARD_DELTA_MAGIC)
    }

    /// The tips this delta advances the fleet to — the next
    /// [`ShardedEngine::delta_since`] call takes these.
    pub fn tips(&self) -> Result<FleetTips, TgsError> {
        let (fingerprint, slots) = decode_delta_sections(&self.bytes)?;
        Ok(FleetTips {
            fingerprint,
            slots: slots
                .iter()
                .map(|s| match s {
                    DeltaSection::Delta(bytes) => {
                        crate::CheckpointDelta::from_bytes(bytes.clone()).new_id()
                    }
                    DeltaSection::Base(id, _) => Ok(*id),
                })
                .collect::<Result<Vec<u64>, TgsError>>()?,
        })
    }
}

/// One slot's payload inside a [`ShardedDelta`].
enum DeltaSection {
    /// An incremental [`crate::CheckpointDelta`] byte stream.
    Delta(Vec<u8>),
    /// A full checkpoint-base fallback: the new mark id plus the whole
    /// single-engine checkpoint section.
    Base(u64, Vec<u8>),
}

/// Parses a multi-shard delta into its declared fingerprint and
/// per-slot sections. The topology fields beyond the fingerprint are
/// validated at apply time against the base checkpoint's header.
fn decode_delta_sections(bytes: &Bytes) -> Result<(u64, Vec<DeltaSection>), TgsError> {
    let mut b = bytes.clone();
    if b.remaining() < SHARD_DELTA_MAGIC.len() {
        return Err(corrupt("sharded delta magic header"));
    }
    let mut magic = [0u8; 8];
    b.copy_to_slice(&mut magic);
    if &magic != SHARD_DELTA_MAGIC {
        return Err(TgsError::corrupt(
            "unrecognized magic header (not a multi-shard tgs-engine delta)",
        ));
    }
    let shards = usize::try_from(rd_u64(&mut b, "shard count")?)
        .ok()
        .filter(|&s| s >= 1 && s.saturating_mul(9) <= b.remaining())
        .ok_or_else(|| corrupt("shard count"))?;
    let fingerprint = rd_u64(&mut b, "partition fingerprint")?;
    let mut sections = Vec::with_capacity(shards);
    for shard in 0..shards {
        if b.remaining() < 1 {
            return Err(corrupt("slot section tag"));
        }
        let mut tag = [0u8; 1];
        b.copy_to_slice(&mut tag);
        let base_id = match tag[0] {
            1 => None,
            0 => Some(rd_u64(&mut b, "slot base mark id")?),
            _ => return Err(corrupt("slot section tag")),
        };
        let len = usize::try_from(rd_u64(&mut b, "slot section length")?)
            .map_err(|_| corrupt("slot section length"))?;
        if b.remaining() < len {
            return Err(TgsError::corrupt(format!(
                "slot {shard} section claims {len} bytes but only {} remain",
                b.remaining()
            )));
        }
        let mut raw = vec![0u8; len];
        b.copy_to_slice(&mut raw);
        sections.push(match base_id {
            None => DeltaSection::Delta(raw),
            Some(id) => DeltaSection::Base(id, raw),
        });
    }
    if b.remaining() != 0 {
        return Err(TgsError::corrupt(format!(
            "{} trailing bytes after the final slot section",
            b.remaining()
        )));
    }
    Ok((fingerprint, sections))
}

fn corrupt(what: &str) -> TgsError {
    TgsError::corrupt(format!("truncated or malformed field: {what}"))
}

fn rd_u64(b: &mut Bytes, what: &str) -> Result<u64, TgsError> {
    if b.remaining() < 8 {
        return Err(corrupt(what));
    }
    Ok(b.get_u64_le())
}

struct ShardedHeader {
    map: PartitionMap,
    ghost_mode: bool,
    sections: Vec<Vec<u8>>,
}

/// Parses either header version and splits off the per-shard sections.
fn decode_header(bytes: &Bytes) -> Result<ShardedHeader, TgsError> {
    let mut b = bytes.clone();
    if b.remaining() < SHARD_MAGIC_V2.len() {
        return Err(corrupt("sharded magic header"));
    }
    let mut magic = [0u8; 8];
    b.copy_to_slice(&mut magic);
    let v2 = match &magic {
        m if m == SHARD_MAGIC_V2 => true,
        m if m == SHARD_MAGIC_V1 => false,
        _ => {
            return Err(TgsError::corrupt(
                "unrecognized magic header (not a multi-shard tgs-engine checkpoint)",
            ))
        }
    };
    // Bound the count against the remaining bytes (each shard needs at
    // least an 8-byte section length prefix, and in v2 an 8-byte start)
    // so a crafted header cannot trigger a huge allocation — mirrors
    // `rd_count` in the single-engine decoder.
    let per_shard_floor = if v2 { 16 } else { 8 };
    let shards = usize::try_from(rd_u64(&mut b, "shard count")?)
        .ok()
        .filter(|&s| s >= 1 && s.saturating_mul(per_shard_floor) <= b.remaining())
        .ok_or_else(|| corrupt("shard count"))?;
    let universe = usize::try_from(rd_u64(&mut b, "partitioner universe")?)
        .map_err(|_| corrupt("universe"))?;
    let (map, ghost_mode) = if v2 {
        if b.remaining() < 1 {
            return Err(corrupt("ghost mode flag"));
        }
        let mut flag = [0u8; 1];
        b.copy_to_slice(&mut flag);
        let ghost_mode = match flag[0] {
            0 => false,
            1 => true,
            _ => return Err(corrupt("ghost mode flag")),
        };
        let mut starts = Vec::with_capacity(shards);
        for _ in 0..shards {
            starts.push(
                usize::try_from(rd_u64(&mut b, "partition start")?)
                    .map_err(|_| corrupt("partition start"))?,
            );
        }
        let map = PartitionMap::new(universe, starts)
            .map_err(|e| TgsError::corrupt(format!("malformed partition map: {e}")))?;
        let fingerprint = rd_u64(&mut b, "partition fingerprint")?;
        if map.fingerprint() != fingerprint {
            return Err(TgsError::corrupt(format!(
                "partition map fingerprint mismatch: checkpoint declares {fingerprint:#x}, \
                 the serialized boundaries derive {:#x}",
                map.fingerprint()
            )));
        }
        (map, ghost_mode)
    } else {
        let stride = usize::try_from(rd_u64(&mut b, "partitioner stride")?)
            .map_err(|_| corrupt("stride"))?;
        let fingerprint = rd_u64(&mut b, "partitioner fingerprint")?;
        let partitioner = UserRangePartitioner::new(universe, shards);
        if partitioner.stride() != stride || partitioner.fingerprint() != fingerprint {
            return Err(TgsError::corrupt(format!(
                "partitioner mismatch: checkpoint declares stride {stride} / fingerprint \
                 {fingerprint:#x}, but {shards} shards over {universe} users derive stride {} / \
                 fingerprint {:#x}",
                partitioner.stride(),
                partitioner.fingerprint()
            )));
        }
        (partitioner.to_map(), false)
    };
    let mut sections = Vec::with_capacity(shards);
    for shard in 0..shards {
        let len = usize::try_from(rd_u64(&mut b, "shard section length")?)
            .map_err(|_| corrupt("shard section length"))?;
        if b.remaining() < len {
            return Err(TgsError::corrupt(format!(
                "shard {shard} section claims {len} bytes but only {} remain",
                b.remaining()
            )));
        }
        let mut raw = vec![0u8; len];
        b.copy_to_slice(&mut raw);
        sections.push(raw);
    }
    if b.remaining() != 0 {
        return Err(TgsError::corrupt(format!(
            "{} trailing bytes after the final shard section",
            b.remaining()
        )));
    }
    Ok(ShardedHeader {
        map,
        ghost_mode,
        sections,
    })
}

/// Assembles per-shard sections under the deterministic v2 header —
/// shared by full checkpoints, base checkpoints, and delta application,
/// so a reassembled checkpoint is byte-identical to a directly taken
/// one given equal sections and topology.
fn assemble_sharded(
    map: &PartitionMap,
    ghost_mode: bool,
    sections: &[Vec<u8>],
) -> ShardedCheckpoint {
    let mut buf = BytesMut::with_capacity(
        64 + 8 * map.shards() + sections.iter().map(|s| s.len() + 8).sum::<usize>(),
    );
    buf.put_slice(SHARD_MAGIC_V2);
    buf.put_u64_le(map.shards() as u64);
    buf.put_u64_le(map.universe() as u64);
    buf.put_slice(&[ghost_mode as u8]);
    for &start in map.starts() {
        buf.put_u64_le(start as u64);
    }
    buf.put_u64_le(map.fingerprint());
    for section in sections {
        buf.put_u64_le(section.len() as u64);
        buf.put_slice(section);
    }
    ShardedCheckpoint {
        bytes: buf.freeze(),
    }
}

/// The mutable topology of the fleet: the partition map and one worker
/// transport per shard, swapped atomically by a rebalance. Workers are
/// location-agnostic [`ShardTransport`]s — in-process engines behind
/// [`LocalShard`], or TCP clients to `tgs shard` servers (`tgs-net`).
struct Fleet {
    map: PartitionMap,
    workers: Vec<Arc<dyn ShardTransport>>,
}

/// Cumulative fleet-recovery telemetry, shared between a supervisor
/// (which rebuilds failed shards) and the router (which tags degraded
/// queries). The router allocates a private set by default;
/// [`ShardedEngine::set_recovery_counters`] swaps in a shared one so
/// supervisor-side respawns surface in the merged [`EngineStats`].
#[derive(Debug, Default)]
pub struct RecoveryCounters {
    /// Shard slots rebuilt from their last good checkpoint section.
    pub respawns: AtomicU64,
    /// Documents re-ingested from replay journals during rebuilds.
    pub replayed_docs: AtomicU64,
    /// Fan-out queries answered with partial coverage.
    pub degraded_queries: AtomicU64,
    /// Slot baselines refreshed incrementally (base + delta chain)
    /// instead of through a full checkpoint section — the supervisor's
    /// O(changes) refresh path.
    pub delta_refreshes: AtomicU64,
    /// Last successfully committed ingest timestamp per worker, keyed
    /// by the transport's `Arc` data pointer (stable for a surviving
    /// worker across rebalances) — the source of
    /// [`Coverage::stale_since`] when that worker later goes down.
    committed: Mutex<BTreeMap<usize, u64>>,
}

/// A transport's identity key in the per-worker commit registry.
fn worker_key(worker: &Arc<dyn ShardTransport>) -> usize {
    Arc::as_ptr(worker) as *const u8 as usize
}

impl RecoveryCounters {
    /// Records that `worker` committed the snapshot stamped `t`.
    pub fn note_commit(&self, worker: &Arc<dyn ShardTransport>, t: u64) {
        self.committed.lock().insert(worker_key(worker), t);
    }

    /// The last timestamp `worker` is known to have committed, if any.
    pub fn last_commit(&self, worker: &Arc<dyn ShardTransport>) -> Option<u64> {
        self.committed.lock().get(&worker_key(worker)).copied()
    }
}

/// How much of the fleet answered a degraded-capable fan-out query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Shards that answered.
    pub healthy: usize,
    /// Shards the query fanned out to.
    pub total: usize,
    /// The oldest last-committed timestamp among the shards that did
    /// *not* answer — results may miss anything those shards ingested
    /// after it. `None` when every shard answered or when no commit is
    /// on record for a missing shard.
    pub stale_since: Option<u64>,
}

impl Coverage {
    /// Whether every shard answered (the result is not degraded).
    pub fn is_full(&self) -> bool {
        self.healthy == self.total
    }
}

/// A fan-out result tagged with the [`Coverage`] that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial<T> {
    /// The merged result over the shards that answered.
    pub value: T,
    /// How many shards that was.
    pub coverage: Coverage,
}

/// One shard's load summary (see [`ShardedEngine::shard_loads`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLoad {
    /// The shard index.
    pub shard: usize,
    /// The shard's `[lo, hi)` user-id range (the last shard additionally
    /// owns every id `>= hi`).
    pub range: (usize, usize),
    /// Documents routed to the shard by this router (process-local, like
    /// [`EngineStats`]).
    pub tweets: u64,
    /// Users with recorded history on the shard's worker.
    pub users: usize,
}

/// A fleet of per-shard [`SentimentEngine`] workers behind one elastic
/// router.
///
/// Built via [`crate::EngineBuilder::fit_sharded`]; see the module docs
/// for the fan-out/fan-in semantics, the ghost-user protocol, live
/// rebalancing, and the single-shard identity guarantee.
pub struct ShardedEngine {
    inner: Arc<RwLock<Fleet>>,
    /// Ghost-user protocol switch (frozen at construction; serialized in
    /// the v2 checkpoint header).
    ghost_mode: bool,
    dropped_cross_shard: AtomicU64,
    ghost_edges: AtomicU64,
    /// Shard calls that failed with a network error (cumulative; see
    /// [`EngineStats::shard_unavailable`]). Always 0 on all-local fleets.
    shard_unavailable: AtomicU64,
    /// Whole batches shed by [`ShardedEngine::try_ingest`]'s pre-split
    /// capacity probe (some worker's queue was full). Overlaid onto the
    /// merged stats' `dropped_capacity` and histogram shed count.
    router_shed: AtomicU64,
    /// Process-local micro-batching knobs for
    /// [`ShardedEngine::batching`]; set by the builder, defaulted on
    /// restore/`from_transports` (like the single engine's policy, this
    /// is a tuning knob of the process, not checkpointed state).
    batch_policy: BatchPolicy,
    /// Documents routed per author id — the load statistic behind
    /// [`ShardedEngine::shard_loads`] and the `--max-skew` auto-trigger.
    /// Process-local (reset on restore), like [`EngineStats`].
    doc_counts: Mutex<BTreeMap<usize, u64>>,
    /// Every timestamp ever fanned out (or restored). Workers enforce
    /// append-only per shard, but a re-ingested timestamp whose documents
    /// route to *different* shards than the original would slip past the
    /// per-worker check and silently mix two snapshots in the merged
    /// timeline — so the router enforces the invariant fleet-wide.
    ingested: Mutex<BTreeSet<u64>>,
    /// The fleet's frozen vocabulary (identical on every worker), cached
    /// at construction so `top_words` never re-fetches token lists.
    vocab: Vocabulary,
    /// Number of sentiment clusters (identical on every worker).
    k: usize,
    /// Recovery telemetry + per-worker commit registry; private by
    /// default, swapped for a supervisor-shared set by
    /// [`ShardedEngine::set_recovery_counters`].
    recovery: Arc<RecoveryCounters>,
}

impl ShardedEngine {
    /// Read access to the fleet. The lock is poisoned only if a panic
    /// escaped a rebalance, which leaves no coherent topology to serve.
    fn fleet(&self) -> std::sync::RwLockReadGuard<'_, Fleet> {
        self.inner.read().expect("fleet lock poisoned")
    }

    fn fleet_mut(&self) -> std::sync::RwLockWriteGuard<'_, Fleet> {
        self.inner.write().expect("fleet lock poisoned")
    }

    /// Counts a worker-call failure when it was a network error — the
    /// `shard_unavailable` monitoring surface. Other error kinds are the
    /// caller's to surface, not a fleet-health signal.
    fn note(&self, e: &TgsError) {
        if e.kind() == TgsErrorKind::Net {
            self.shard_unavailable.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn start(
        map: PartitionMap,
        workers: Vec<SentimentEngine>,
        ghost_mode: bool,
    ) -> Self {
        assert_eq!(workers.len(), map.shards(), "one worker per shard required");
        let vocab = workers[0].vocabulary().clone();
        let k = workers[0].config().k;
        let transports: Vec<Arc<dyn ShardTransport>> = workers
            .into_iter()
            .map(|w| Arc::new(LocalShard::new(w)) as Arc<dyn ShardTransport>)
            .collect();
        Self::assemble(map, transports, ghost_mode, vocab, k).expect("local transports cannot fail")
    }

    /// Builds a router over caller-supplied transports — the entry point
    /// for distributed fleets (`tgs-net` hands in TCP shard clients).
    /// Each worker must already hold the state for its shard's user
    /// range; the fleet's vocabulary and cluster count are fetched from
    /// the first worker, every worker's generation floor is advanced to
    /// the map's, and previously committed timestamps are re-claimed so
    /// the fleet-wide append-only check survives reconnects.
    pub fn from_transports(
        map: PartitionMap,
        transports: Vec<Arc<dyn ShardTransport>>,
        ghost_mode: bool,
    ) -> Result<Self, TgsError> {
        if transports.len() != map.shards() {
            return Err(TgsError::invalid_argument(format!(
                "{} transports for a {}-shard partition map",
                transports.len(),
                map.shards()
            )));
        }
        let k = transports[0].k()?;
        let vocab = Vocabulary::from_tokens(transports[0].vocab_tokens()?);
        Self::assemble(map, transports, ghost_mode, vocab, k)
    }

    fn assemble(
        map: PartitionMap,
        transports: Vec<Arc<dyn ShardTransport>>,
        ghost_mode: bool,
        vocab: Vocabulary,
        k: usize,
    ) -> Result<Self, TgsError> {
        for t in &transports {
            t.set_generation(map.generation())?;
        }
        assign_core_sets(&transports);
        let mut ingested = BTreeSet::new();
        for t in &transports {
            ingested.extend(t.timestamps()?);
        }
        Ok(Self {
            inner: Arc::new(RwLock::new(Fleet {
                map,
                workers: transports,
            })),
            ghost_mode,
            dropped_cross_shard: AtomicU64::new(0),
            ghost_edges: AtomicU64::new(0),
            shard_unavailable: AtomicU64::new(0),
            router_shed: AtomicU64::new(0),
            batch_policy: BatchPolicy::default(),
            doc_counts: Mutex::new(BTreeMap::new()),
            ingested: Mutex::new(ingested),
            vocab,
            k,
            recovery: Arc::new(RecoveryCounters::default()),
        })
    }

    /// Shares recovery telemetry with a supervisor: the supervisor bumps
    /// `respawns`/`replayed_docs` as it rebuilds shards, the router bumps
    /// `degraded_queries` and feeds the commit registry, and the merged
    /// [`ShardedEngine::stats`] report all three. Call before the first
    /// ingest (the registry starts empty).
    pub fn set_recovery_counters(&mut self, counters: Arc<RecoveryCounters>) {
        self.recovery = counters;
    }

    /// The recovery telemetry this router reports through.
    pub fn recovery_counters(&self) -> Arc<RecoveryCounters> {
        Arc::clone(&self.recovery)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.fleet().workers.len()
    }

    /// The current partition map (a snapshot — a concurrent rebalance
    /// may swap the fleet's map afterwards).
    pub fn map(&self) -> PartitionMap {
        self.fleet().map.clone()
    }

    /// Whether the ghost-user protocol is on (cross-shard re-tweet edges
    /// kept via ghost rows instead of dropped).
    pub fn ghost_mode(&self) -> bool {
        self.ghost_mode
    }

    /// The fleet's frozen vocabulary (identical on every worker).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Cross-shard re-tweets dropped at ingest so far (always 0 in ghost
    /// mode).
    pub fn dropped_cross_shard(&self) -> u64 {
        self.dropped_cross_shard.load(Ordering::Relaxed)
    }

    /// Cross-shard re-tweets kept as ghost edges so far (always 0 in
    /// drop mode).
    pub fn ghost_edges(&self) -> u64 {
        self.ghost_edges.load(Ordering::Relaxed)
    }

    /// Fans one snapshot out to the owning shards. Returns as soon as
    /// every sub-snapshot is queued; shards whose slice is empty are
    /// skipped entirely (their workers do not step). The stream is
    /// append-only *fleet-wide*: re-ingesting an already-seen timestamp
    /// is rejected here (synchronously), not per worker, so a duplicate
    /// whose documents route to different shards than the original can
    /// never partially commit.
    ///
    /// In ghost mode, a snapshot carrying cross-shard re-tweets quiesces
    /// the fleet first: ghost factors are sampled from the owning
    /// workers' *committed* state, so the exchange is deterministic
    /// (snapshots without cross-shard edges keep the fully pipelined
    /// path).
    pub fn ingest(&self, snapshot: EngineSnapshot) -> Result<(), TgsError> {
        if snapshot.is_empty() {
            // Workers skip empty snapshots without advancing the stream;
            // the router mirrors that (the timestamp stays claimable).
            return Ok(());
        }
        let fleet = self.fleet();
        let timestamp = snapshot.timestamp;
        // Validate + route before claiming the timestamp, so a malformed
        // snapshot (dangling re-tweet reference) does not burn it.
        let (subs, dropped, ghost_edges, authors) =
            match split(&fleet, self.ghost_mode, self.k, snapshot) {
                Ok(routed) => routed,
                Err(e) => {
                    self.note(&e);
                    return Err(e);
                }
            };
        if !self.ingested.lock().insert(timestamp) {
            return Err(TgsError::invalid_argument(format!(
                "timestamp {timestamp} already ingested; the stream is append-only"
            )));
        }
        self.dropped_cross_shard
            .fetch_add(dropped as u64, Ordering::Relaxed);
        self.ghost_edges
            .fetch_add(ghost_edges as u64, Ordering::Relaxed);
        {
            let mut counts = self.doc_counts.lock();
            for author in authors {
                *counts.entry(author).or_insert(0) += 1;
            }
        }
        let generation = fleet.map.generation();
        for (shard, sub) in subs.into_iter().enumerate() {
            if !sub.is_empty() {
                if let Err(e) = fleet.workers[shard].ingest(generation, sub) {
                    self.note(&e);
                    return Err(e);
                }
                // Feed the commit registry so a later outage of this
                // worker can report how stale partial results may be.
                self.recovery.note_commit(&fleet.workers[shard], timestamp);
            }
        }
        Ok(())
    }

    /// Non-blocking variant of [`ShardedEngine::ingest`]: probes every
    /// worker's queue *before* splitting and hands the snapshot back
    /// (`Ok(Some(snapshot))`) when any queue is full — the batch is shed
    /// whole, allocation-free, before the timestamp is claimed, so the
    /// caller can retry it later. Sheds count into the merged stats'
    /// `dropped_capacity` and the histogram's shed bucket. The probe is
    /// advisory under concurrent producers (a slot can be taken between
    /// probe and send, in which case the ingest briefly blocks); with
    /// one producer per router the shed decision is exact.
    pub fn try_ingest(&self, snapshot: EngineSnapshot) -> Result<Option<EngineSnapshot>, TgsError> {
        if snapshot.is_empty() {
            return Ok(None);
        }
        {
            let fleet = self.fleet();
            for worker in &fleet.workers {
                let room = match worker.queue_has_room() {
                    Ok(room) => room,
                    Err(e) => {
                        self.note(&e);
                        return Err(e);
                    }
                };
                if !room {
                    self.router_shed.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(snapshot));
                }
            }
        }
        self.ingest(snapshot).map(|()| None)
    }

    /// Installs the micro-batching policy (builder-time only; validated
    /// by the builder).
    pub(crate) fn set_batch_policy(&mut self, policy: BatchPolicy) {
        self.batch_policy = policy;
    }

    /// The micro-batching policy [`ShardedEngine::batching`] applies.
    pub fn batch_policy(&self) -> BatchPolicy {
        self.batch_policy
    }

    /// A micro-batching front end over this router using the builder's
    /// [`BatchPolicy`]: each flushed batch splits per-shard once, so the
    /// whole fleet amortizes tokenize/assembly/bind costs per bucket
    /// instead of per micro-snapshot. See [`BatchingIngest`].
    pub fn batching(&self) -> BatchingIngest<&ShardedEngine> {
        BatchingIngest::with_policy_unchecked(self, self.batch_policy)
    }

    /// Blocks until every worker drained its queue, then reports the
    /// first pending ingest failure (if any) or the number of distinct
    /// timestamps in the merged timeline.
    pub fn flush(&self) -> Result<u64, TgsError> {
        let fleet = self.fleet();
        if let Err(e) = flush_fleet(&fleet) {
            self.note(&e);
            return Err(e);
        }
        Ok(self.steps_of(&fleet))
    }

    /// Distinct timestamps committed across all shards (best effort:
    /// unreachable workers contribute nothing and count into
    /// `shard_unavailable`).
    pub fn steps(&self) -> u64 {
        self.steps_of(&self.fleet())
    }

    /// A read handle that fans queries across all shards. The handle
    /// snapshots the current topology but keeps a reference to the
    /// fleet: when a rebalance bumps the topology generation, workers
    /// answer the handle's next routed call with
    /// [`TgsError::StaleTopology`] and the handle re-keys itself from
    /// the fleet before retrying — it can neither misroute nor miss
    /// migrated users.
    pub fn query(&self) -> ShardedQuery {
        let fleet = self.fleet();
        ShardedQuery {
            fleet: Arc::clone(&self.inner),
            topo: Mutex::new(Topo {
                map: fleet.map.clone(),
                workers: fleet.workers.clone(),
            }),
            vocab: self.vocab.clone(),
            k: self.k,
            recovery: Arc::clone(&self.recovery),
        }
    }

    /// Merged ingest metrics: counters sum across shards;
    /// `last_step_ns` is the slowest shard's (it gates the fan-out's
    /// latency); the router's cross-shard edge counters and the
    /// cumulative `shard_unavailable` count ride along. Unreachable
    /// workers are skipped (and counted) rather than failing the merge.
    pub fn stats(&self) -> EngineStats {
        let fleet = self.fleet();
        let mut merged = EngineStats::default();
        for worker in &fleet.workers {
            match worker.stats() {
                Ok(s) => merged = merged.merge(&s),
                Err(e) => self.note(&e),
            }
        }
        // Router-level sheds (whole batches rejected before splitting)
        // overlay the per-worker counts: they never reached a worker, so
        // no worker's stats carry them.
        let shed = self.router_shed.load(Ordering::Relaxed);
        let mut step_hist = merged.step_hist;
        step_hist.add_shed(shed);
        EngineStats {
            dropped_capacity: merged.dropped_capacity + shed,
            step_hist,
            ghost_edges: self.ghost_edges(),
            dropped_cross_shard: self.dropped_cross_shard(),
            shard_unavailable: self.shard_unavailable.load(Ordering::Relaxed),
            respawns: self.recovery.respawns.load(Ordering::Relaxed),
            replayed_docs: self.recovery.replayed_docs.load(Ordering::Relaxed),
            degraded_queries: self.recovery.degraded_queries.load(Ordering::Relaxed),
            ..merged
        }
    }

    /// Every timestamp this fleet has committed (or restored), sorted —
    /// the fleet-wide analogue of a worker's
    /// [`ShardTransport::timestamps`].
    pub fn timestamps(&self) -> Vec<u64> {
        self.ingested.lock().iter().copied().collect()
    }

    /// The owning worker's current factor row for `user` (routed by the
    /// current map; `None` for a user with no recorded history).
    pub fn user_factor(&self, user: usize) -> Result<Option<Vec<f64>>, TgsError> {
        let fleet = self.fleet();
        let shard = fleet.map.shard_of(user);
        fleet.workers[shard].user_factor(user).inspect_err(|e| {
            self.note(e);
        })
    }

    /// Per-shard load: the shard's user range, the documents this router
    /// fanned to it (process-local), and its worker's known users.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.shard_loads_of(&self.fleet())
    }

    /// [`ShardedEngine::shard_loads`] against an already-held guard, so
    /// the rebalance paths never re-enter the fleet lock (a recursive
    /// `RwLock` read can deadlock behind a queued writer).
    fn shard_loads_of(&self, fleet: &Fleet) -> Vec<ShardLoad> {
        let counts = self.doc_counts.lock();
        let starts = fleet.map.starts();
        let generation = fleet.map.generation();
        (0..fleet.map.shards())
            .map(|shard| {
                let lo = starts[shard];
                let hi = starts.get(shard + 1).copied().unwrap_or(usize::MAX);
                let tweets = counts.range(lo..hi).map(|(_, &c)| c).sum();
                // Best-effort monitoring: an unreachable worker reports 0
                // users (and counts into `shard_unavailable`) rather than
                // failing the whole load report.
                let users = match fleet.workers[shard].known_users(generation) {
                    Ok(n) => n,
                    Err(e) => {
                        self.note(&e);
                        0
                    }
                };
                ShardLoad {
                    shard,
                    range: fleet.map.range(shard),
                    tweets,
                    users,
                }
            })
            .collect()
    }

    /// The fleet's tweet-count skew: the hottest shard's routed document
    /// count over the per-shard mean (1.0 = perfectly even; 0.0 before
    /// any document routed).
    pub fn load_skew(&self) -> f64 {
        Self::skew_of(&self.shard_loads())
    }

    fn skew_of(loads: &[ShardLoad]) -> f64 {
        let total: u64 = loads.iter().map(|l| l.tweets).sum();
        if total == 0 {
            return 0.0;
        }
        let max = loads.iter().map(|l| l.tweets).max().unwrap_or(0);
        max as f64 * loads.len() as f64 / total as f64
    }

    /// Applies a repartition plan to the running fleet: quiesce, evolve
    /// the worker set op by op (a split spawns a cold sibling for the
    /// right half; a merge absorbs the retired worker's recorded state
    /// into its left neighbour; a boundary move keeps both workers),
    /// migrate every re-owned user's history (solver temporal rows
    /// age-relative + queryable per-user observations), swap the map,
    /// resume. Returns the new map.
    ///
    /// Migration is lossless: applying a plan and its inverse with no
    /// ingest in between restores byte-identical behaviour (tested in
    /// `tests/rebalance.rs`).
    pub fn rebalance(&self, plan: &RepartitionPlan) -> Result<PartitionMap, TgsError> {
        let mut fleet = self.fleet_mut();
        self.rebalance_locked(&mut fleet, plan)
    }

    /// The rebalance body, against an already-held write guard (shared
    /// with [`ShardedEngine::maybe_rebalance`], whose skew inspection
    /// and plan application must be one atomic step).
    fn rebalance_locked(
        &self,
        fleet: &mut Fleet,
        plan: &RepartitionPlan,
    ) -> Result<PartitionMap, TgsError> {
        // Validate the whole plan against the current map before
        // quiescing or touching any worker.
        let new_map = plan
            .apply(&fleet.map)
            .map_err(|e| TgsError::invalid_argument(format!("inapplicable plan: {e}")))?;
        if new_map == fleet.map {
            // Topology-identical plan (equality ignores the generation):
            // return the *current* map so a no-op never bumps the epoch.
            return Ok(fleet.map.clone());
        }
        // Quiesce: every worker drains (and surfaces pending failures)
        // before any state moves.
        flush_fleet(fleet)?;

        // The phases below keep `cur_map` and the worker vec in lockstep
        // after every delta, and the fleet is restored from them on ANY
        // outcome — an error mid-plan leaves a consistent, servable
        // topology (partially applied, never zero workers).
        let mut cur_map = fleet.map.clone();
        let mut workers = std::mem::take(&mut fleet.workers);
        let outcome = apply_plan(plan, &new_map, &mut cur_map, &mut workers);
        fleet.workers = workers;
        fleet.map = cur_map;
        // The shard count may have changed: re-deal the disjoint core
        // sets so solver threads stop overlapping (TGS_PIN-gated).
        assign_core_sets(&fleet.workers);
        // Stamp the surviving workers with the new topology generation.
        // Any query handle still keyed to the old topology now gets
        // `StaleTopology` from every worker and re-keys lazily; a worker
        // unreachable here learns the generation from the next stamped
        // call it serves (the floor is monotone), so this is best effort.
        for worker in &fleet.workers {
            if let Err(e) = worker.set_generation(fleet.map.generation()) {
                self.note(&e);
            }
        }
        outcome.map(|()| fleet.map.clone())
    }

    /// The `--max-skew` auto-trigger: when the fleet's tweet-count skew
    /// exceeds `max_skew`, split the hottest shard at its load midpoint
    /// (the user id halving its routed document count) and rebalance.
    /// Returns the new map when a rebalance ran, `None` when the fleet
    /// is within budget or no useful split exists (e.g. the whole load
    /// sits on ids past the universe). Inspection and rebalance happen
    /// under one lock acquisition, so a concurrent caller can neither
    /// deadlock a recursive read nor apply the plan to a swapped map.
    pub fn maybe_rebalance(&self, max_skew: f64) -> Result<Option<PartitionMap>, TgsError> {
        let mut fleet = self.fleet_mut();
        if fleet.map.shards() < 2 {
            // With one shard the skew statistic is identically 1;
            // there is no imbalance to detect yet.
            return Ok(None);
        }
        if Self::skew_of(&self.shard_loads_of(&fleet)) <= max_skew {
            return Ok(None);
        }
        let Some(plan) = self.split_plan(&fleet.map) else {
            return Ok(None);
        };
        self.rebalance_locked(&mut fleet, &plan).map(Some)
    }

    /// The merge counterpart of [`ShardedEngine::maybe_rebalance`]: when
    /// the *coldest* shard's routed tweet share falls below `min_share`
    /// of the per-shard mean, drain it into its left neighbour (the
    /// first shard merges rightward) via `RepartitionPlan::merge` and
    /// the per-user migration seam. Returns the new map when a merge
    /// ran, `None` when every shard carries enough load or only one
    /// shard remains. Inspection and rebalance happen under one lock
    /// acquisition, exactly like the split trigger.
    pub fn maybe_merge(&self, min_share: f64) -> Result<Option<PartitionMap>, TgsError> {
        let mut fleet = self.fleet_mut();
        if fleet.map.shards() < 2 {
            return Ok(None);
        }
        let loads = self.shard_loads_of(&fleet);
        let total: u64 = loads.iter().map(|l| l.tweets).sum();
        if total == 0 {
            // No routed documents yet: every shard is equally "cold" and
            // collapsing the topology would be pure noise.
            return Ok(None);
        }
        let mean = total as f64 / loads.len() as f64;
        let cold = loads
            .iter()
            .min_by_key(|l| (l.tweets, l.shard))
            .expect("at least two shards");
        if cold.tweets as f64 >= mean * min_share {
            return Ok(None);
        }
        let left = cold.shard.saturating_sub(1);
        let plan = RepartitionPlan::single(RepartitionOp::Merge { left });
        self.rebalance_locked(&mut fleet, &plan).map(Some)
    }

    /// Builds the hottest-shard split plan behind
    /// [`ShardedEngine::maybe_rebalance`].
    fn split_plan(&self, map: &PartitionMap) -> Option<RepartitionPlan> {
        let counts = self.doc_counts.lock();
        let starts = map.starts();
        let per_shard: Vec<u64> = (0..map.shards())
            .map(|s| {
                let lo = starts[s];
                let hi = starts.get(s + 1).copied().unwrap_or(usize::MAX);
                counts.range(lo..hi).map(|(_, &c)| c).sum()
            })
            .collect();
        let hot = per_shard
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(s, _)| s)?;
        let lo = starts[hot];
        let hi_raw = starts.get(hot + 1).copied().unwrap_or(usize::MAX);
        // The split boundary must be strictly inside (lo, min(hi, universe)).
        let hi_valid = hi_raw.min(map.universe());
        let half = per_shard[hot] / 2;
        let mut acc = 0u64;
        let mut at = None;
        for (&user, &c) in counts.range(lo..hi_raw) {
            acc += c;
            if acc >= half.max(1) {
                // Prefer splitting *after* the crossing user (they stay
                // on the left half); when that boundary is out of range
                // — the hot user is the shard's last in-range id — fall
                // back to splitting *before* them, isolating the hot
                // user on the right half instead of giving up.
                let after = user + 1;
                if after > lo && after < hi_valid {
                    at = Some(after);
                } else if user > lo && user < hi_valid {
                    at = Some(user);
                }
                break;
            }
        }
        at.map(|at| RepartitionPlan::single(RepartitionOp::Split { shard: hot, at }))
    }

    /// Drains every queue and serializes the whole fleet: a validated v2
    /// header (explicit partition map + ghost flag) followed by each
    /// worker's [`EngineCheckpoint`] section.
    pub fn checkpoint(&self) -> Result<ShardedCheckpoint, TgsError> {
        let fleet = self.fleet();
        let mut sections = Vec::with_capacity(fleet.workers.len());
        for worker in &fleet.workers {
            match worker.checkpoint_section() {
                Ok(section) => sections.push(section),
                Err(e) => {
                    // A fleet checkpoint missing a shard's users would
                    // restore into silent data loss — fail it instead.
                    self.note(&e);
                    return Err(e);
                }
            }
        }
        Ok(assemble_sharded(&fleet.map, self.ghost_mode, &sections))
    }

    /// Like [`ShardedEngine::checkpoint`], but also registers every
    /// worker's section as a delta base and returns the fleet's
    /// [`FleetTips`] alongside the full checkpoint. Feed the tips to
    /// [`ShardedEngine::delta_since`] to ship only what changed since.
    pub fn checkpoint_base(&self) -> Result<(FleetTips, ShardedCheckpoint), TgsError> {
        let fleet = self.fleet();
        let mut slots = Vec::with_capacity(fleet.workers.len());
        let mut sections = Vec::with_capacity(fleet.workers.len());
        for worker in &fleet.workers {
            match worker.checkpoint_base() {
                Ok((id, section)) => {
                    slots.push(id);
                    sections.push(section);
                }
                Err(e) => {
                    self.note(&e);
                    return Err(e);
                }
            }
        }
        let tips = FleetTips {
            fingerprint: fleet.map.fingerprint(),
            slots,
        };
        Ok((
            tips,
            assemble_sharded(&fleet.map, self.ghost_mode, &sections),
        ))
    }

    /// Everything that changed on the fleet since `tips`, as one
    /// multi-section [`ShardedDelta`]: slots whose worker can serve an
    /// incremental delta ship one; slots that cannot (respawned worker,
    /// aged-out mark) fall back to a full checkpoint-base section, so
    /// coverage always matches a full fleet checkpoint. `Ok(None)` means
    /// the tips as a whole are unusable — the topology changed under
    /// them (rebalance) — and the caller should take a fresh
    /// [`ShardedEngine::checkpoint_base`].
    pub fn delta_since(&self, tips: &FleetTips) -> Result<Option<ShardedDelta>, TgsError> {
        let fleet = self.fleet();
        if tips.fingerprint != fleet.map.fingerprint() || tips.slots.len() != fleet.workers.len() {
            return Ok(None);
        }
        let mut buf = BytesMut::with_capacity(1 << 12);
        buf.put_slice(SHARD_DELTA_MAGIC);
        buf.put_u64_le(fleet.workers.len() as u64);
        buf.put_u64_le(fleet.map.fingerprint());
        for (worker, &tip) in fleet.workers.iter().zip(&tips.slots) {
            let outcome = worker.delta_since(tip).and_then(|d| match d {
                Some(delta) => Ok((None, delta)),
                None => {
                    // This slot cannot serve a delta — re-base it inline
                    // so the fleet delta still covers every shard.
                    let (id, section) = worker.checkpoint_base()?;
                    Ok((Some(id), section))
                }
            });
            match outcome {
                Ok((None, delta)) => {
                    buf.put_slice(&[1u8]);
                    buf.put_u64_le(delta.len() as u64);
                    buf.put_slice(&delta);
                }
                Ok((Some(id), section)) => {
                    buf.put_slice(&[0u8]);
                    buf.put_u64_le(id);
                    buf.put_u64_le(section.len() as u64);
                    buf.put_slice(&section);
                }
                Err(e) => {
                    // Same all-or-nothing rule as full fleet checkpoints:
                    // a delta missing a shard would apply into data loss.
                    self.note(&e);
                    return Err(e);
                }
            }
        }
        Ok(Some(ShardedDelta {
            bytes: buf.freeze(),
        }))
    }

    /// Folds a fleet delta into its base fleet checkpoint, producing the
    /// full [`ShardedCheckpoint`] of the delta's tips — byte-identical
    /// to what [`ShardedEngine::checkpoint`] returned there. Pure: needs
    /// no running fleet.
    pub fn apply_delta(
        base: &ShardedCheckpoint,
        delta: &ShardedDelta,
    ) -> Result<ShardedCheckpoint, TgsError> {
        let header = decode_header(&base.bytes)?;
        let (fingerprint, slot_deltas) = decode_delta_sections(&delta.bytes)?;
        if fingerprint != header.map.fingerprint() {
            return Err(TgsError::corrupt(format!(
                "fleet delta keyed to partition fingerprint {fingerprint:#x}, but the base \
                 checkpoint's map derives {:#x}",
                header.map.fingerprint()
            )));
        }
        if slot_deltas.len() != header.sections.len() {
            return Err(TgsError::corrupt(format!(
                "fleet delta carries {} slot sections, the base checkpoint {}",
                slot_deltas.len(),
                header.sections.len()
            )));
        }
        let sections = header
            .sections
            .into_iter()
            .zip(slot_deltas)
            .map(|(section, slot)| match slot {
                DeltaSection::Delta(d) => Ok(SentimentEngine::apply_delta(
                    &EngineCheckpoint::from_bytes(section),
                    &crate::CheckpointDelta::from_bytes(d),
                )?
                .as_bytes()
                .to_vec()),
                DeltaSection::Base(_, fresh) => Ok(fresh),
            })
            .collect::<Result<Vec<Vec<u8>>, TgsError>>()?;
        Ok(assemble_sharded(&header.map, header.ghost_mode, &sections))
    }

    /// Rebuilds a fleet from a multi-shard checkpoint (either format
    /// version). The header's shard count, partition boundaries and
    /// fingerprint are validated against each other before any section
    /// decodes, so a restore can never silently re-route users. v1
    /// headers restore with the equivalent explicit map and ghost mode
    /// off (the v1 fleets always dropped cross-shard edges).
    pub fn restore(ckpt: &ShardedCheckpoint) -> Result<Self, TgsError> {
        let header = decode_header(&ckpt.bytes)?;
        let workers = header
            .sections
            .into_iter()
            .map(|raw| SentimentEngine::restore(&EngineCheckpoint::from_bytes(raw)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::start(header.map, workers, header.ghost_mode))
    }

    /// Restores any checkpoint flavor from raw bytes: a multi-shard
    /// stream (v1 or v2) rebuilds the fleet; a single-engine
    /// [`EngineCheckpoint`] stream is wrapped as a one-shard fleet (the
    /// router is then the identity). This is what `tgs query` serves
    /// from.
    pub fn restore_any(data: Vec<u8>) -> Result<Self, TgsError> {
        if ShardedCheckpoint::sniff(&data) {
            return Self::restore(&ShardedCheckpoint::from_bytes(data));
        }
        let worker = SentimentEngine::restore(&EngineCheckpoint::from_bytes(data))?;
        Ok(Self::start(PartitionMap::even(1, 1), vec![worker], false))
    }

    /// Drains every queue and stops all workers, surfacing the first
    /// pending ingest failure instead of discarding it. Remote workers
    /// release their server-side slot; in-process worker threads join
    /// once the last query handle drops its transport.
    pub fn shutdown(self) -> Result<(), TgsError> {
        let outcome = self.flush();
        {
            let fleet = self.fleet();
            for worker in &fleet.workers {
                // Queues are already drained; shutdown only releases the
                // worker (and would re-surface the failure we already
                // hold).
                let _ = worker.shutdown();
            }
        }
        outcome.map(|_| ())
    }
}

/// Deals the fleet's workers disjoint, near-equal core sets (worker `i`
/// of `n` gets the `i`-th of `n` groups). Best-effort and `TGS_PIN`-
/// gated; a no-op request costs one queued command per worker.
fn assign_core_sets(workers: &[Arc<dyn ShardTransport>]) {
    if !tgs_linalg::pinning_enabled() {
        return;
    }
    let n = workers.len();
    for (i, worker) in workers.iter().enumerate() {
        worker.request_core_set(i, n);
    }
}

/// Runs both rebalance phases against a (map, workers) pair that the
/// caller restores into the fleet regardless of outcome.
///
/// Phase A — topology. The worker vec evolves in lockstep with the map,
/// one delta at a time, so worker identity follows the operator's
/// intent: a boundary move keeps both workers (only users migrate, in
/// phase B); a split keeps the left half's worker and spawns a cold
/// sibling for the right; a merge absorbs the right worker's recorded
/// state into the left and retires it. Workers mutate *before* the map
/// advances (with the merge's removal rolled back on absorb failure),
/// so `cur_map.shards() == workers.len()` holds at every exit point.
///
/// Phase B — user migration. For every shard's new range, pull matching
/// users from every other worker; exports of ranges a worker never held
/// are empty and free, so this is correct for any combination of deltas
/// without tracking provenance.
fn apply_plan(
    plan: &RepartitionPlan,
    new_map: &PartitionMap,
    cur_map: &mut PartitionMap,
    workers: &mut Vec<Arc<dyn ShardTransport>>,
) -> Result<(), TgsError> {
    let mut retired_workers = Vec::new();
    for op in &plan.ops {
        match *op {
            RepartitionOp::Split { shard, .. } => {
                let sibling = workers[shard].spawn_sibling()?;
                workers.insert(shard + 1, sibling);
            }
            RepartitionOp::Merge { left } => {
                // Absorb through the checkpoint-section seam: the
                // retired worker serializes wholesale and the absorber
                // folds the section in. The section is only read, so an
                // absorb failure re-inserts the retired worker untouched.
                let retired = workers.remove(left + 1);
                let outcome = retired
                    .checkpoint_section()
                    .and_then(|section| workers[left].absorb_section(&section));
                if let Err(e) = outcome {
                    workers.insert(left + 1, retired);
                    return Err(e);
                }
                retired_workers.push(retired);
            }
            RepartitionOp::MoveBoundary { .. } => {}
        }
        *cur_map = RepartitionPlan::single(*op)
            .apply(cur_map)
            .expect("whole plan validated before phase A");
    }
    debug_assert_eq!(cur_map, new_map);

    let starts = new_map.starts();
    for (j, &lo) in starts.iter().enumerate() {
        let hi = starts.get(j + 1).copied().unwrap_or(usize::MAX);
        for i in 0..workers.len() {
            if i == j {
                continue;
            }
            let moved = workers[i].export_users(lo, hi)?;
            if exported_users_len(&moved)? > 0 {
                if let Err(e) = workers[j].import_users(&moved) {
                    // Restore the exported state to its source (which
                    // just released these users, so re-import cannot
                    // collide) before surfacing the error: a rejected
                    // migration must never destroy user history.
                    workers[i].import_users(&moved)?;
                    return Err(e);
                }
            }
        }
    }
    // Retired merge workers release only once every delta landed, so an
    // error above never leaves the map and worker vec out of step. Their
    // generation floor is poisoned first: a query handle still holding
    // the retired transport gets `StaleTopology` (and re-keys) instead
    // of silently double-counting state the absorber now owns.
    for retired in retired_workers {
        let _ = retired.set_generation(u64::MAX);
        retired.shutdown()?;
    }
    Ok(())
}

/// Issues `f` against every worker concurrently — one in-flight call per
/// peer — and returns the results in shard order, so downstream merges
/// stay deterministic. Over TCP transports this pipelines the fleet:
/// a fan-out costs the slowest peer's round-trip instead of the sum of
/// all of them. With one worker the call runs inline (no thread spawn on
/// the single-shard path).
fn fan_out<T, F>(workers: &[Arc<dyn ShardTransport>], f: F) -> Vec<Result<T, TgsError>>
where
    T: Send,
    F: Fn(usize, &dyn ShardTransport) -> Result<T, TgsError> + Sync,
{
    if workers.len() <= 1 {
        return workers
            .iter()
            .enumerate()
            .map(|(i, w)| f(i, w.as_ref()))
            .collect();
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = workers
            .iter()
            .enumerate()
            .map(|(i, w)| s.spawn(move || f(i, w.as_ref())))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan-out worker panicked"))
            .collect()
    })
}

/// Flushes every worker, reporting the first failure after draining all.
fn flush_fleet(fleet: &Fleet) -> Result<(), TgsError> {
    // Every worker drains even after a failure (the router never leaves
    // queues half-processed), and they drain concurrently: a quiesce is
    // a barrier, so it costs the slowest worker, not the sum.
    let mut first_err = None;
    for outcome in fan_out(&fleet.workers, |_, worker| worker.flush()) {
        if let Err(e) = outcome {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

impl ShardedEngine {
    /// Distinct committed timestamps across reachable workers; network
    /// failures count into `shard_unavailable` and skip the worker.
    fn steps_of(&self, fleet: &Fleet) -> u64 {
        let mut seen = BTreeSet::new();
        for worker in &fleet.workers {
            match worker.timestamps() {
                Ok(ts) => seen.extend(ts),
                Err(e) => self.note(&e),
            }
        }
        seen.len() as u64
    }
}

/// Splits one snapshot into per-shard snapshots: documents follow their
/// author's shard; re-tweets follow their document; cross-shard
/// re-tweets are dropped (drop mode) or kept with their user attached as
/// a ghost seed (ghost mode — this quiesces the fleet to sample each
/// ghost's committed factor from its owning worker). Returns the
/// sub-snapshots, the dropped count, the ghost-edge count, and the
/// authors (for load accounting); the caller commits the counters only
/// once the snapshot is accepted.
#[allow(clippy::type_complexity)]
fn split(
    fleet: &Fleet,
    ghost_mode: bool,
    k: usize,
    snapshot: EngineSnapshot,
) -> Result<(Vec<EngineSnapshot>, usize, usize, Vec<usize>), TgsError> {
    let EngineSnapshot {
        timestamp,
        docs,
        retweets,
        ghosts,
    } = snapshot;
    if !ghosts.is_empty() {
        // Ghost seeds are the router's output, not its input: silently
        // recomputing them would discard whatever the producer thought
        // they were injecting.
        return Err(TgsError::invalid_argument(
            "snapshots ingested through the sharded router must leave `ghosts` \
             empty; the router derives ghost seeds from its own routing",
        ));
    }
    let n = docs.len();
    for r in &retweets {
        if r.doc >= n {
            return Err(TgsError::invalid_argument(format!(
                "retweet references document {} but the snapshot has {n}",
                r.doc
            )));
        }
    }
    let authors: Vec<usize> = docs.iter().map(|d| d.user).collect();
    let events: Vec<(usize, usize)> = retweets.iter().map(|r| (r.user, r.doc)).collect();
    let routing = if ghost_mode {
        route_docs_ghost(&fleet.map, &authors, &events)
    } else {
        route_docs(&fleet.map, &authors, &events)
    };
    let mut shards: Vec<EngineSnapshot> = (0..fleet.map.shards())
        .map(|_| EngineSnapshot::new(timestamp))
        .collect();
    for (doc, &shard) in docs.into_iter().zip(routing.doc_shard.iter()) {
        shards[shard].docs.push(doc);
    }
    for (shard, events) in routing.shard_retweets.iter().enumerate() {
        shards[shard].retweets = events
            .iter()
            .map(|&(user, doc)| EngineRetweet { user, doc })
            .collect();
    }
    if routing.ghost_edges > 0 {
        // Quiesce so every ghost factor reflects the owners' committed
        // state — the sampled exchange is then a pure function of the
        // stream prefix, independent of queue timing.
        flush_fleet(fleet)?;
        for (shard, ghost_users) in routing.shard_ghosts.iter().enumerate() {
            let mut seeds = Vec::with_capacity(ghost_users.len());
            for &user in ghost_users {
                let owner = fleet.map.shard_of(user);
                let factor = fleet.workers[owner]
                    .user_factor(user)?
                    .unwrap_or_else(|| vec![1.0 / k as f64; k]);
                seeds.push((user, factor));
            }
            shards[shard].ghosts = seeds;
        }
    }
    Ok((
        shards,
        routing.dropped_retweets,
        routing.ghost_edges,
        authors,
    ))
}

/// One topology snapshot a query handle routes with: the map whose
/// generation stamps every call, and the transports it fans out to.
struct Topo {
    map: PartitionMap,
    workers: Vec<Arc<dyn ShardTransport>>,
}

/// How many times a fanned-out query re-keys itself from the fleet after
/// a `StaleTopology` rejection before giving up. More than one retry is
/// only consumed when rebalances land *between* the re-key and the
/// retried fan-out — vanishingly rare, but bounded so a rebalance storm
/// cannot spin a reader forever.
const REKEY_ATTEMPTS: usize = 3;

/// Read handle over a [`ShardedEngine`]'s merged history.
///
/// The handle snapshots the topology at creation and keeps a reference
/// to the fleet. Routed calls stamp the snapshot's generation; when a
/// rebalance has bumped it, a worker answers [`TgsError::StaleTopology`]
/// and the handle re-keys itself from the fleet before retrying
/// (lazily — an idle handle costs nothing). Fan-outs are safe against
/// mid-flight rebalances because every surviving worker rejects the old
/// generation: partially merged results from a stale topology are
/// discarded, never returned.
pub struct ShardedQuery {
    fleet: Arc<RwLock<Fleet>>,
    topo: Mutex<Topo>,
    /// The fleet's frozen vocabulary (for `top_words` ranking).
    vocab: Vocabulary,
    /// Number of sentiment clusters.
    k: usize,
    /// Shared recovery telemetry: the `*_partial` methods bump
    /// `degraded_queries` and read the commit registry for
    /// [`Coverage::stale_since`].
    recovery: Arc<RecoveryCounters>,
}

impl Clone for ShardedQuery {
    fn clone(&self) -> Self {
        let topo = self.topo.lock();
        Self {
            fleet: Arc::clone(&self.fleet),
            topo: Mutex::new(Topo {
                map: topo.map.clone(),
                workers: topo.workers.clone(),
            }),
            vocab: self.vocab.clone(),
            k: self.k,
            recovery: Arc::clone(&self.recovery),
        }
    }
}

impl ShardedQuery {
    /// Number of sentiment clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of shards (as of this handle's topology snapshot).
    pub fn shards(&self) -> usize {
        self.topo.lock().workers.len()
    }

    /// The partition map this handle currently routes per-user queries
    /// with (a snapshot; the handle re-keys lazily after rebalances).
    pub fn map(&self) -> PartitionMap {
        self.topo.lock().map.clone()
    }

    /// Refreshes this handle's topology snapshot from the fleet.
    fn rekey(&self) {
        let fleet = self.fleet.read().expect("fleet lock poisoned");
        *self.topo.lock() = Topo {
            map: fleet.map.clone(),
            workers: fleet.workers.clone(),
        };
    }

    /// Runs `f` against the current topology snapshot, re-keying from
    /// the fleet and retrying (bounded) when a worker rejects the
    /// snapshot's generation as stale.
    fn with_topo<T>(&self, f: impl Fn(&Topo) -> Result<T, TgsError>) -> Result<T, TgsError> {
        for _ in 1..REKEY_ATTEMPTS {
            let outcome = {
                let topo = self.topo.lock();
                f(&topo)
            };
            match outcome {
                Err(TgsError::StaleTopology { .. }) => self.rekey(),
                other => return other,
            }
        }
        let topo = self.topo.lock();
        f(&topo)
    }

    /// Merged timeline entries whose timestamp falls in `range`,
    /// ascending. Per timestamp, shard aggregates sum (tweets, users,
    /// per-cluster counts, objective), `iterations` is the slowest
    /// shard's, and `converged` requires every shard to have converged.
    pub fn timeline<R: RangeBounds<u64>>(&self, range: R) -> Result<Vec<TimelineEntry>, TgsError> {
        let Some((lo, hi)) = normalize_range(&range) else {
            return Ok(Vec::new());
        };
        self.with_topo(|topo| {
            let generation = topo.map.generation();
            let mut merged: BTreeMap<u64, TimelineEntry> = BTreeMap::new();
            // Concurrent fan-out, merged in shard order (deterministic).
            for entries in fan_out(&topo.workers, |_, w| w.timeline(generation, lo, hi)) {
                merge_timeline_into(&mut merged, entries?);
            }
            Ok(merged.into_values().collect())
        })
    }

    /// Degraded-capable [`ShardedQuery::timeline`]: shards that fail
    /// with a network error are skipped instead of failing the query,
    /// and the merged entries come back tagged with the [`Coverage`]
    /// that produced them. Fails only when *no* shard answered or a
    /// non-network error surfaced.
    pub fn timeline_partial<R: RangeBounds<u64>>(
        &self,
        range: R,
    ) -> Result<Partial<Vec<TimelineEntry>>, TgsError> {
        let Some((lo, hi)) = normalize_range(&range) else {
            let shards = self.shards();
            return Ok(Partial {
                value: Vec::new(),
                coverage: Coverage {
                    healthy: shards,
                    total: shards,
                    stale_since: None,
                },
            });
        };
        self.with_topo(|topo| {
            let generation = topo.map.generation();
            let results = fan_out(&topo.workers, |_, w| w.timeline(generation, lo, hi));
            let (answers, coverage) = self.degrade(topo, results)?;
            let mut merged: BTreeMap<u64, TimelineEntry> = BTreeMap::new();
            for entries in answers {
                merge_timeline_into(&mut merged, entries);
            }
            Ok(Partial {
                value: merged.into_values().collect(),
                coverage: self.tag(coverage),
            })
        })
    }

    /// Folds a fan-out's per-shard outcomes for the degraded-capable
    /// methods: a shard failing with a network error is counted out of
    /// coverage (feeding `stale_since` from the commit registry), any
    /// other error — including `StaleTopology`, which must reach
    /// `with_topo`'s re-key — still fails the query, and so does a
    /// fleet where *no* shard answered (a fully-empty answer would be
    /// indistinguishable from an empty history).
    fn degrade<T>(
        &self,
        topo: &Topo,
        results: Vec<Result<T, TgsError>>,
    ) -> Result<(Vec<T>, Coverage), TgsError> {
        let total = results.len();
        let mut answers = Vec::with_capacity(total);
        let mut stale_since: Option<u64> = None;
        let mut last_net: Option<TgsError> = None;
        for (shard, outcome) in results.into_iter().enumerate() {
            match outcome {
                Ok(v) => answers.push(v),
                Err(e) if e.kind() == TgsErrorKind::Net => {
                    if let Some(t) = self.recovery.last_commit(&topo.workers[shard]) {
                        stale_since = Some(stale_since.map_or(t, |s| s.min(t)));
                    }
                    last_net = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        if let (0, Some(e)) = (answers.len(), last_net) {
            return Err(e);
        }
        let coverage = Coverage {
            healthy: answers.len(),
            total,
            stale_since,
        };
        Ok((answers, coverage))
    }

    /// Counts a degraded answer exactly once per public query.
    fn tag(&self, coverage: Coverage) -> Coverage {
        if !coverage.is_full() {
            self.recovery
                .degraded_queries
                .fetch_add(1, Ordering::Relaxed);
        }
        coverage
    }

    /// The most recent merged timeline entry, if any.
    pub fn latest(&self) -> Result<Option<TimelineEntry>, TgsError> {
        self.with_topo(|topo| {
            let generation = topo.map.generation();
            let mut newest: Option<u64> = None;
            for t in fan_out(&topo.workers, |_, w| w.latest_timestamp(generation)) {
                if let Some(t) = t? {
                    newest = Some(newest.map_or(t, |n| n.max(t)));
                }
            }
            let Some(t) = newest else {
                return Ok(None);
            };
            let mut merged: Option<TimelineEntry> = None;
            for entries in fan_out(&topo.workers, |_, w| w.timeline(generation, t, t)) {
                for entry in entries? {
                    match merged.as_mut() {
                        None => merged = Some(entry),
                        Some(m) => m.merge_from(&entry),
                    }
                }
            }
            Ok(merged)
        })
    }

    /// Degraded-capable [`ShardedQuery::latest`]: the newest entry over
    /// the shards that answered, tagged with the worse of the two
    /// fan-outs' [`Coverage`] (finding the newest timestamp, then
    /// merging that snapshot's per-shard entries).
    pub fn latest_partial(&self) -> Result<Partial<Option<TimelineEntry>>, TgsError> {
        self.with_topo(|topo| {
            let generation = topo.map.generation();
            let stamps = fan_out(&topo.workers, |_, w| w.latest_timestamp(generation));
            let (stamps, stamp_cov) = self.degrade(topo, stamps)?;
            let Some(t) = stamps.into_iter().flatten().max() else {
                return Ok(Partial {
                    value: None,
                    coverage: self.tag(stamp_cov),
                });
            };
            let entries = fan_out(&topo.workers, |_, w| w.timeline(generation, t, t));
            let (answers, entry_cov) = self.degrade(topo, entries)?;
            let mut merged: Option<TimelineEntry> = None;
            for entries in answers {
                for entry in entries {
                    match merged.as_mut() {
                        None => merged = Some(entry),
                        Some(m) => m.merge_from(&entry),
                    }
                }
            }
            let coverage = if entry_cov.healthy < stamp_cov.healthy {
                entry_cov
            } else {
                stamp_cov
            };
            Ok(Partial {
                value: merged,
                coverage: self.tag(coverage),
            })
        })
    }

    /// The user's sentiment as of `at`, answered by the shard that owns
    /// the user (shard-transparent: callers never see the routing).
    pub fn user_sentiment(&self, user: usize, at: u64) -> Result<UserSentiment, TgsError> {
        self.with_topo(|topo| {
            topo.workers[topo.map.shard_of(user)].user_sentiment(topo.map.generation(), user, at)
        })
    }

    /// Every recorded observation for the user, ascending by timestamp.
    pub fn user_timeline(&self, user: usize) -> Result<Vec<(u64, Vec<f64>)>, TgsError> {
        self.with_topo(|topo| {
            topo.workers[topo.map.shard_of(user)].user_timeline(topo.map.generation(), user)
        })
    }

    /// Users with recorded history across all shards (shards are
    /// user-disjoint — ghost rows are never recorded — so the sum never
    /// double-counts).
    pub fn known_users(&self) -> Result<usize, TgsError> {
        self.with_topo(|topo| {
            let generation = topo.map.generation();
            fan_out(&topo.workers, |_, w| w.known_users(generation))
                .into_iter()
                .try_fold(0, |total, n| Ok(total + n?))
        })
    }

    /// Degraded-capable [`ShardedQuery::known_users`]: the sum over the
    /// shards that answered, tagged with [`Coverage`].
    pub fn known_users_partial(&self) -> Result<Partial<usize>, TgsError> {
        self.with_topo(|topo| {
            let generation = topo.map.generation();
            let counts = fan_out(&topo.workers, |_, w| w.known_users(generation));
            let (counts, coverage) = self.degrade(topo, counts)?;
            Ok(Partial {
                value: counts.into_iter().sum(),
                coverage: self.tag(coverage),
            })
        })
    }

    /// Per-cluster composition of the merged snapshot at exactly `t`.
    pub fn cluster_summary(&self, t: u64) -> Result<ClusterSummary, TgsError> {
        let entry = self
            .timeline(t..=t)?
            .pop()
            .ok_or(TgsError::SnapshotUnavailable { timestamp: t })?;
        Ok(ClusterSummary {
            timestamp: t,
            tweet_shares: entry.tweet_shares(),
            tweet_counts: entry.tweet_counts,
            user_counts: entry.user_counts,
        })
    }

    /// Cross-shard `top_words`: merges the shards' word–sentiment factors
    /// at `t` — weighted by each shard's tweet count that snapshot, in
    /// fixed shard order — then ranks the merged columns. Fails with
    /// [`TgsError::SnapshotUnavailable`] when no shard recorded `t`, or
    /// when any shard that did has already evicted its factors (a partial
    /// merge would silently skew the ranking).
    pub fn top_words(&self, t: u64, topk: usize) -> Result<Vec<Vec<(String, f64)>>, TgsError> {
        let sf = self.merged_sf(t)?;
        Ok(rank_top_words(&sf, &self.vocab, topk))
    }

    /// The merged word–sentiment factor matrix at `t` — exactly what
    /// [`ShardedQuery::top_words`] ranks (per-shard factors weighted by
    /// that snapshot's tweet counts, merged in fixed shard order).
    /// Public so wire endpoints can serve `sf_at` for a whole fleet.
    pub fn merged_sf(&self, t: u64) -> Result<DenseMatrix, TgsError> {
        self.with_topo(|topo| {
            let generation = topo.map.generation();
            // Per peer: summary then factor, still one in-flight frame
            // at a time on each connection, pipelined across peers.
            let fetched = fan_out(&topo.workers, |_, worker| {
                match worker.cluster_summary(generation, t) {
                    Ok(summary) => {
                        let weight = summary.tweet_counts.iter().sum::<usize>() as f64;
                        Ok(Some((weight, worker.sf_at(generation, t)?)))
                    }
                    Err(TgsError::SnapshotUnavailable { .. }) => Ok(None),
                    Err(e) => Err(e),
                }
            });
            let mut parts: Vec<(f64, DenseMatrix)> = Vec::new();
            for part in fetched {
                if let Some(part) = part? {
                    parts.push(part);
                }
            }
            // The solvers' merge policy verbatim (single part = bit-exact
            // clone), so engine-level rankings can never drift from
            // `solve_offline_sharded` / `ShardedOnlineSolver` semantics.
            let borrowed: Vec<(f64, &DenseMatrix)> = parts.iter().map(|(w, sf)| (*w, sf)).collect();
            merge_sf(&borrowed).ok_or(TgsError::SnapshotUnavailable { timestamp: t })
        })
    }
}

/// Normalizes any `RangeBounds<u64>` to an inclusive `[lo, hi]` pair
/// (the wire call's shape); `None` means the range is empty or
/// inverted and the query answers empty without fanning out.
fn normalize_range<R: RangeBounds<u64>>(range: &R) -> Option<(u64, u64)> {
    let lo = match range.start_bound() {
        Bound::Unbounded => 0,
        Bound::Included(&lo) => lo,
        Bound::Excluded(&lo) => lo.checked_add(1)?,
    };
    let hi = match range.end_bound() {
        Bound::Unbounded => u64::MAX,
        Bound::Included(&hi) => hi,
        Bound::Excluded(&hi) => hi.checked_sub(1)?,
    };
    (lo <= hi).then_some((lo, hi))
}

/// Folds one shard's timeline slice into the merged per-timestamp map.
fn merge_timeline_into(merged: &mut BTreeMap<u64, TimelineEntry>, entries: Vec<TimelineEntry>) {
    for entry in entries {
        match merged.entry(entry.timestamp) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(entry);
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                slot.get_mut().merge_from(&entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineBuilder, EngineSnapshot};
    use tgs_data::{day_windows, generate, GeneratorConfig};

    fn corpus() -> tgs_data::Corpus {
        generate(&GeneratorConfig {
            num_users: 24,
            total_tweets: 200,
            num_days: 8,
            ..Default::default()
        })
    }

    fn sharded(corpus: &tgs_data::Corpus, shards: usize) -> ShardedEngine {
        EngineBuilder::new()
            .k(3)
            .max_iters(8)
            .fit_sharded(corpus, shards)
            .expect("valid build")
    }

    fn stream(engine: &ShardedEngine, corpus: &tgs_data::Corpus) {
        for (lo, hi) in day_windows(corpus.num_days, 2) {
            engine
                .ingest(EngineSnapshot::from_corpus_window(corpus, lo, hi))
                .unwrap();
        }
        engine.flush().unwrap();
    }

    #[test]
    fn fan_out_covers_every_tweet_and_user_query_routes() {
        let c = corpus();
        let engine = sharded(&c, 3);
        stream(&engine, &c);
        let query = engine.query();
        let timeline = query.timeline(..).unwrap();
        assert_eq!(timeline.len() as u64, engine.steps());
        let total: usize = timeline.iter().map(|e| e.tweets).sum();
        assert_eq!(total, c.num_tweets(), "no tweet may vanish in fan-out");
        for entry in &timeline {
            assert_eq!(entry.tweet_counts.iter().sum::<usize>(), entry.tweets);
            assert_eq!(entry.user_counts.iter().sum::<usize>(), entry.users);
        }
        // Every author answers through the router.
        let last = timeline.last().unwrap().timestamp;
        for t in c.tweets.iter().take(40) {
            let s = query.user_sentiment(t.author, last).unwrap();
            assert_eq!(s.distribution.len(), 3);
        }
        // Merged summary and top words answer for a recorded snapshot.
        let summary = query.cluster_summary(timeline[0].timestamp).unwrap();
        assert!((summary.tweet_shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let words = query.top_words(timeline[0].timestamp, 5).unwrap();
        assert_eq!(words.len(), 3);
        assert!(words.iter().all(|c| !c.is_empty()));
        // Load accounting covers every routed document.
        let loads = engine.shard_loads();
        assert_eq!(
            loads.iter().map(|l| l.tweets).sum::<u64>(),
            c.num_tweets() as u64
        );
        assert!(engine.load_skew() >= 1.0);
    }

    #[test]
    fn fleet_delta_chain_matches_full_checkpoint_at_every_step() {
        let c = corpus();
        let engine = sharded(&c, 3);
        let windows = day_windows(c.num_days, 1);
        for &(lo, hi) in &windows[..2] {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
        }
        engine.flush().unwrap();
        let (mut tips, base) = engine.checkpoint_base().unwrap();
        assert_eq!(
            base.as_bytes(),
            engine.checkpoint().unwrap().as_bytes(),
            "a fleet base is byte-identical to a plain fleet checkpoint"
        );
        let mut current = base;
        for &(lo, hi) in &windows[2..] {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
            engine.flush().unwrap();
            let delta = engine
                .delta_since(&tips)
                .unwrap()
                .expect("unchanged topology must serve a delta");
            assert!(ShardedDelta::sniff(delta.as_bytes()));
            current = ShardedEngine::apply_delta(&current, &delta).unwrap();
            assert_eq!(
                current.as_bytes(),
                engine.checkpoint().unwrap().as_bytes(),
                "base + fleet deltas must be byte-identical to the full fleet checkpoint"
            );
            tips = delta.tips().unwrap();
        }
        // And the materialized checkpoint restores into a working fleet.
        let restored = ShardedEngine::restore(&current).unwrap();
        assert_eq!(
            restored.query().timeline(..).unwrap(),
            engine.query().timeline(..).unwrap()
        );
    }

    #[test]
    fn fleet_delta_unavailable_after_rebalance() {
        let c = corpus();
        let engine = sharded(&c, 2);
        stream(&engine, &c);
        let (tips, _) = engine.checkpoint_base().unwrap();
        // A topology change re-keys the fingerprint: old tips are dead.
        let plan = RepartitionPlan::single(RepartitionOp::MoveBoundary {
            boundary: 1,
            to: engine.map().starts()[1] + 1,
        });
        engine.rebalance(&plan).unwrap();
        assert!(
            engine.delta_since(&tips).unwrap().is_none(),
            "stale fingerprint must report unavailable, not mis-apply"
        );
        // A fresh base serves deltas again.
        let (tips, base) = engine.checkpoint_base().unwrap();
        let delta = engine.delta_since(&tips).unwrap().unwrap();
        assert_eq!(
            ShardedEngine::apply_delta(&base, &delta)
                .unwrap()
                .as_bytes(),
            engine.checkpoint().unwrap().as_bytes()
        );
    }

    #[test]
    fn checkpoint_restore_roundtrips_the_fleet() {
        let c = corpus();
        let engine = sharded(&c, 2);
        stream(&engine, &c);
        let ckpt = engine.checkpoint().unwrap();
        assert!(ShardedCheckpoint::sniff(ckpt.as_bytes()));
        assert_eq!(ckpt.sections().unwrap().len(), 2);

        let restored = ShardedEngine::restore(&ckpt).unwrap();
        assert_eq!(restored.shards(), 2);
        assert_eq!(restored.map(), engine.map());
        assert_eq!(
            restored.query().timeline(..).unwrap(),
            engine.query().timeline(..).unwrap()
        );
        // Restored fleet keeps solving bit-identically.
        let extra = EngineSnapshot::from_corpus_window(&c, 0, c.num_days);
        let mut a_snap = extra.clone();
        a_snap.timestamp = 1000;
        let mut b_snap = extra;
        b_snap.timestamp = 1000;
        engine.ingest(a_snap).unwrap();
        restored.ingest(b_snap).unwrap();
        engine.flush().unwrap();
        restored.flush().unwrap();
        assert_eq!(
            restored.query().timeline(..).unwrap(),
            engine.query().timeline(..).unwrap()
        );
    }

    #[test]
    fn restore_rejects_tampered_headers() {
        let c = corpus();
        let engine = sharded(&c, 2);
        stream(&engine, &c);
        let full = engine.checkpoint().unwrap().as_bytes().to_vec();
        // Shard count flipped: starts list length / fingerprint no longer
        // match.
        let mut wrong_shards = full.clone();
        wrong_shards[8..16].copy_from_slice(&3u64.to_le_bytes());
        assert!(ShardedEngine::restore(&ShardedCheckpoint::from_bytes(wrong_shards)).is_err());
        // A boundary flipped: fingerprint mismatch.
        let mut wrong_start = full.clone();
        // Layout: magic(8) + shards(8) + universe(8) + ghost(1) + starts.
        wrong_start[25 + 8..25 + 16].copy_from_slice(&7u64.to_le_bytes());
        assert!(ShardedEngine::restore(&ShardedCheckpoint::from_bytes(wrong_start)).is_err());
        // Truncated section.
        let cut = full.len() - 9;
        assert!(
            ShardedEngine::restore(&ShardedCheckpoint::from_bytes(full[..cut].to_vec())).is_err()
        );
        assert!(ShardedEngine::restore(&ShardedCheckpoint::from_bytes(full)).is_ok());
    }

    #[test]
    fn restore_any_wraps_single_engine_checkpoints() {
        let c = corpus();
        let single = EngineBuilder::new().k(3).max_iters(8).fit(&c).unwrap();
        for (lo, hi) in day_windows(c.num_days, 2) {
            single
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
        }
        single.flush().unwrap();
        let ckpt = single.checkpoint().unwrap();
        let wrapped = ShardedEngine::restore_any(ckpt.as_bytes().to_vec()).unwrap();
        assert_eq!(wrapped.shards(), 1);
        assert_eq!(
            wrapped.query().timeline(..).unwrap(),
            single.query().timeline(..)
        );
        let t = single.query().latest().unwrap().timestamp;
        assert_eq!(
            wrapped.query().top_words(t, 6).unwrap(),
            single.query().top_words(t, 6).unwrap()
        );
    }

    #[test]
    fn cross_shard_retweets_are_counted() {
        let c = corpus();
        let engine = sharded(&c, 4);
        let full = EngineSnapshot::from_corpus_window(&c, 0, c.num_days);
        let had_retweets = !full.retweets.is_empty();
        engine.ingest(full).unwrap();
        engine.flush().unwrap();
        if had_retweets {
            // The synthetic corpus re-tweets across the user range, so 4
            // shards must drop at least one edge.
            assert!(engine.dropped_cross_shard() > 0);
            assert_eq!(engine.ghost_edges(), 0, "drop mode has no ghosts");
        }
    }

    #[test]
    fn ghost_mode_keeps_every_cross_shard_retweet() {
        let c = corpus();
        let engine = EngineBuilder::new()
            .k(3)
            .max_iters(8)
            .ghost_users(true)
            .fit_sharded(&c, 4)
            .expect("valid build");
        stream(&engine, &c);
        assert_eq!(engine.dropped_cross_shard(), 0, "ghost mode drops nothing");
        assert!(
            engine.ghost_edges() > 0,
            "the corpus re-tweets across shards"
        );
        let stats = engine.stats();
        assert_eq!(stats.dropped_cross_shard, 0);
        assert_eq!(stats.ghost_edges, engine.ghost_edges());
        // Ghost rows never leak into ownership: the fleet-wide known-user
        // total (a sum over shards) equals the count of users answering
        // through owner routing — a ghost recorded on a foreign shard
        // would inflate the sum. (A user whose *only* activity is a
        // cross-shard re-tweet is withheld everywhere — the ghost row is
        // prescribed, not owned — so the total is bounded by, and may
        // fall below, an unsharded run's.)
        let query = engine.query();
        let routed = (0..c.num_users())
            .filter(|&u| query.user_timeline(u).is_ok())
            .count();
        assert_eq!(
            query.known_users().unwrap(),
            routed,
            "history only with the owner"
        );
        // Determinism: an identical ghost-mode run is byte-identical.
        let twin = EngineBuilder::new()
            .k(3)
            .max_iters(8)
            .ghost_users(true)
            .fit_sharded(&c, 4)
            .unwrap();
        stream(&twin, &c);
        assert_eq!(
            twin.query().timeline(..).unwrap(),
            engine.query().timeline(..).unwrap()
        );
    }

    #[test]
    fn duplicate_timestamps_rejected_fleet_wide() {
        // A duplicate whose documents route to a *different* shard than
        // the original would pass every per-worker append-only check;
        // the router must reject it synchronously.
        let c = corpus();
        let engine = sharded(&c, 2);
        let map = engine.map();
        let shard_user = |shard: usize| {
            (0..c.num_users())
                .find(|&u| map.shard_of(u) == shard)
                .expect("both shards own users")
        };
        let mut first = EngineSnapshot::new(5);
        first.push_tokens(shard_user(0), vec!["hello".into()]);
        engine.ingest(first).unwrap();
        let mut dup = EngineSnapshot::new(5);
        dup.push_tokens(shard_user(1), vec!["hello".into()]);
        let err = engine.ingest(dup).unwrap_err();
        assert_eq!(err.kind(), tgs_core::TgsErrorKind::InvalidArgument);
        engine.flush().unwrap();
        assert_eq!(engine.steps(), 1, "the duplicate must not commit anywhere");
        // A fresh timestamp still flows normally afterwards.
        let mut next = EngineSnapshot::new(6);
        next.push_tokens(shard_user(1), vec!["hello".into()]);
        engine.ingest(next).unwrap();
        engine.flush().unwrap();
        assert_eq!(engine.steps(), 2);
    }

    #[test]
    fn stats_aggregate_across_workers() {
        let c = corpus();
        let engine = sharded(&c, 2);
        stream(&engine, &c);
        let stats = engine.stats();
        assert_eq!(stats.queued, 0);
        assert!(stats.ingested > 0);
        assert!(stats.last_step_ns > 0);
    }
}

//! Owned snapshot payloads the engine ingests.
//!
//! An [`EngineSnapshot`] is everything one time slice contributes to the
//! stream: documents (raw text or pre-tokenized), their authors (as
//! *global* user ids — they need not be dense), and within-slice re-tweet
//! events. The engine tokenizes, vectorizes and assembles the tripartite
//! matrices internally, so producers never touch `TriInput` or the
//! solver.

use tgs_data::Corpus;

/// One document's content: either raw text (tokenized by the engine with
/// its configured [`tgs_text::TokenizerConfig`]) or pre-tokenized
/// features.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocContent {
    /// Raw tweet text; the engine tokenizes at ingest time.
    Raw(String),
    /// Already-normalized feature tokens.
    Tokens(Vec<String>),
}

/// A document plus its author.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineDoc {
    /// Global id of the authoring user (sparse ids are fine).
    pub user: usize,
    /// The document content.
    pub content: DocContent,
}

impl EngineDoc {
    /// A document from raw text.
    pub fn from_text(user: usize, text: impl Into<String>) -> Self {
        Self {
            user,
            content: DocContent::Raw(text.into()),
        }
    }

    /// A document from pre-tokenized features.
    pub fn from_tokens(user: usize, tokens: Vec<String>) -> Self {
        Self {
            user,
            content: DocContent::Tokens(tokens),
        }
    }
}

/// A re-tweet event within the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineRetweet {
    /// Global id of the re-tweeting user.
    pub user: usize,
    /// Index into [`EngineSnapshot::docs`] of the re-tweeted document.
    pub doc: usize,
}

/// One time slice of the stream, ready for [`ingest`].
///
/// [`ingest`]: crate::SentimentEngine::ingest
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineSnapshot {
    /// The snapshot's timestamp (day index, epoch second — any monotone
    /// key). Queries and the snapshot store are keyed by this value.
    /// Each timestamp may be ingested once: the solver's temporal state
    /// is append-only, so re-ingesting an already-processed timestamp is
    /// rejected (surfaced on the next `flush`) instead of silently
    /// double-weighting that slice in the decayed windows.
    pub timestamp: u64,
    /// The snapshot's documents.
    pub docs: Vec<EngineDoc>,
    /// Re-tweet events among [`EngineSnapshot::docs`].
    pub retweets: Vec<EngineRetweet>,
    /// Ghost seeds (multi-shard ghost-user protocol): `(global user,
    /// carried sentiment factor)` for users of *other* shards who appear
    /// here only through a cross-shard re-tweet edge. Ghost rows
    /// warm-start from (and are regularized toward) the carried factor
    /// and are excluded from this engine's per-user history — the owning
    /// shard records them. Producers ingesting directly into a
    /// [`crate::SentimentEngine`] leave this empty; the
    /// [`crate::ShardedEngine`] router fills it during fan-out.
    pub ghosts: Vec<(usize, Vec<f64>)>,
}

impl EngineSnapshot {
    /// An empty snapshot at `timestamp`.
    pub fn new(timestamp: u64) -> Self {
        Self {
            timestamp,
            ..Default::default()
        }
    }

    /// Appends a raw-text document, returning its index.
    pub fn push_text(&mut self, user: usize, text: impl Into<String>) -> usize {
        self.docs.push(EngineDoc::from_text(user, text));
        self.docs.len() - 1
    }

    /// Appends a pre-tokenized document, returning its index.
    pub fn push_tokens(&mut self, user: usize, tokens: Vec<String>) -> usize {
        self.docs.push(EngineDoc::from_tokens(user, tokens));
        self.docs.len() - 1
    }

    /// Records that `user` re-tweeted document `doc`.
    pub fn push_retweet(&mut self, user: usize, doc: usize) {
        self.retweets.push(EngineRetweet { user, doc });
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the snapshot carries no documents (the engine skips such
    /// snapshots without recording a step).
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Clears the payload and re-stamps the snapshot — buffer reuse for
    /// producers that recycle one snapshot allocation across a stream
    /// (the outer `docs` / `retweets` vectors keep their capacity).
    pub fn reset(&mut self, timestamp: u64) {
        self.timestamp = timestamp;
        self.docs.clear();
        self.retweets.clear();
        self.ghosts.clear();
    }

    /// Appends `other`'s payload onto this snapshot — the coalescing step
    /// behind [`crate::BatchingIngest`]. Documents concatenate; re-tweet
    /// doc indices shift by this snapshot's prior document count so they
    /// keep pointing at their own documents; ghost seeds concatenate.
    /// `self.timestamp` is kept: the batch is stamped by its bucket, not
    /// by the micro-snapshots folded into it. By construction the result
    /// is exactly the snapshot a producer would have built by pushing
    /// both payloads in sequence — which is what makes a batched step
    /// bit-identical to ingesting the pre-concatenated snapshot.
    pub fn merge(&mut self, other: EngineSnapshot) {
        let offset = self.docs.len();
        self.docs.extend(other.docs);
        self.retweets
            .extend(other.retweets.into_iter().map(|r| EngineRetweet {
                user: r.user,
                doc: r.doc + offset,
            }));
        self.ghosts.extend(other.ghosts);
    }

    /// Builds the snapshot for days `lo..hi` of a corpus, timestamped by
    /// `lo`. Tweets arrive pre-tokenized; re-tweets inside the window are
    /// included when their target tweet is too.
    pub fn from_corpus_window(corpus: &Corpus, lo: u32, hi: u32) -> Self {
        let tweet_ids = corpus.tweets_in_days(lo, hi);
        let local: std::collections::HashMap<usize, usize> = tweet_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let docs = tweet_ids
            .iter()
            .map(|&tid| {
                let t = &corpus.tweets[tid];
                EngineDoc::from_tokens(t.author, t.tokens.clone())
            })
            .collect();
        let retweets = corpus
            .retweets
            .iter()
            .filter(|r| (lo..hi).contains(&r.day))
            .filter_map(|r| {
                local
                    .get(&r.tweet)
                    .map(|&doc| EngineRetweet { user: r.user, doc })
            })
            .collect();
        Self {
            timestamp: lo as u64,
            docs,
            retweets,
            ghosts: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgs_data::{generate, GeneratorConfig};

    #[test]
    fn corpus_window_maps_retweets_to_local_docs() {
        let corpus = generate(&GeneratorConfig {
            num_users: 20,
            total_tweets: 120,
            num_days: 6,
            ..Default::default()
        });
        let snap = EngineSnapshot::from_corpus_window(&corpus, 0, 3);
        assert_eq!(snap.timestamp, 0);
        assert!(!snap.is_empty());
        for r in &snap.retweets {
            assert!(r.doc < snap.len(), "retweet must reference a local doc");
        }
    }

    #[test]
    fn builders_accumulate() {
        let mut s = EngineSnapshot::new(7);
        let d0 = s.push_text(3, "yes on 30 #prop30");
        let d1 = s.push_tokens(5, vec!["no".into(), "taxes".into()]);
        s.push_retweet(9, d0);
        assert_eq!((d0, d1), (0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.retweets, vec![EngineRetweet { user: 9, doc: 0 }]);
    }
}

//! Byte-level checkpointing of a whole engine session.
//!
//! The format is a versioned little-endian stream:
//! configuration → vocabulary → lexicon prior → solver temporal state
//! (`Sf` window, per-user history, step counter) → recorded timeline →
//! per-user observations → the bounded `Sf`/`Sp` factor stores. Every
//! read is bounds-checked; structural violations surface as
//! [`TgsError::CorruptCheckpoint`], never a panic.
//!
//! Restoration is exact: matrices round-trip bit-for-bit (f64 ↔ LE bits),
//! so a restored engine produces identical results for identical
//! subsequent snapshots.
//!
//! **Compaction (format v2).** The stores only ever hold what survived
//! their byte budgets, so budget-evicted factor snapshots are never
//! serialized; and the solver's `Sfw` window — whose matrices are
//! byte-identical to the newest retained `Sf`-store entries — is written
//! as *references* into the store section instead of re-serializing the
//! matrices (each entry falls back to inline bytes only when the store
//! already evicted its timestamp). Restoring a compacted checkpoint
//! yields identical query results for every retained timestamp and
//! bit-identical subsequent solves.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tgs_core::{
    decode_matrix, encode_matrix, InitStrategy, OnlineConfig, OnlineSolver, OnlineSolverState,
    SnapshotStore, TgsError,
};
use tgs_linalg::DenseMatrix;
use tgs_text::{TokenizerConfig, Vocabulary, Weighting};

use crate::engine::{EngineShared, EngineState};
use crate::query::TimelineEntry;

/// Magic + format version prefix (v2: window-into-store compaction).
const MAGIC: &[u8; 8] = b"TGSENG\x00\x02";

/// A serialized engine session. Obtain from
/// [`crate::SentimentEngine::checkpoint`]; rebuild with
/// [`crate::SentimentEngine::restore`]. The raw bytes are stable for a
/// given format version and safe to persist to disk or ship between
/// machines of any endianness.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint {
    bytes: Bytes,
}

impl EngineCheckpoint {
    /// Wraps previously serialized checkpoint bytes (e.g. read back from
    /// disk). Validation happens at [`crate::SentimentEngine::restore`].
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self {
            bytes: Bytes::from(data),
        }
    }

    /// The serialized byte stream.
    pub fn as_bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the checkpoint holds no bytes (never produced by
    /// [`crate::SentimentEngine::checkpoint`]).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

// ---------------------------------------------------------------------
// Checked read/write helpers over the vendored `bytes` surface.
// ---------------------------------------------------------------------

fn corrupt(what: &str) -> TgsError {
    TgsError::corrupt(format!("truncated or malformed field: {what}"))
}

pub(crate) fn rd_u64(b: &mut Bytes, what: &str) -> Result<u64, TgsError> {
    if b.remaining() < 8 {
        return Err(corrupt(what));
    }
    Ok(b.get_u64_le())
}

pub(crate) fn rd_usize(b: &mut Bytes, what: &str) -> Result<usize, TgsError> {
    usize::try_from(rd_u64(b, what)?).map_err(|_| corrupt(what))
}

pub(crate) fn rd_f64(b: &mut Bytes, what: &str) -> Result<f64, TgsError> {
    if b.remaining() < 8 {
        return Err(corrupt(what));
    }
    Ok(b.get_f64_le())
}

pub(crate) fn rd_u8(b: &mut Bytes, what: &str) -> Result<u8, TgsError> {
    if b.remaining() < 1 {
        return Err(corrupt(what));
    }
    let mut byte = [0u8; 1];
    b.copy_to_slice(&mut byte);
    Ok(byte[0])
}

pub(crate) fn rd_bool(b: &mut Bytes, what: &str) -> Result<bool, TgsError> {
    match rd_u8(b, what)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(corrupt(what)),
    }
}

/// Guards list headers: each element needs at least `elem_bytes`, so a
/// corrupt count can't trigger a huge allocation.
pub(crate) fn rd_count(b: &mut Bytes, elem_bytes: usize, what: &str) -> Result<usize, TgsError> {
    let count = rd_usize(b, what)?;
    if count.saturating_mul(elem_bytes.max(1)) > b.remaining() {
        return Err(corrupt(what));
    }
    Ok(count)
}

fn wr_str(buf: &mut BytesMut, s: &str) {
    buf.put_u64_le(s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn rd_str(b: &mut Bytes, what: &str) -> Result<String, TgsError> {
    let len = rd_count(b, 1, what)?;
    let mut raw = vec![0u8; len];
    b.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| corrupt(what))
}

fn wr_matrix(buf: &mut BytesMut, m: &DenseMatrix) {
    let encoded = encode_matrix(m);
    buf.put_u64_le(encoded.len() as u64);
    buf.put_slice(encoded.as_slice());
}

fn rd_matrix(b: &mut Bytes, what: &str) -> Result<DenseMatrix, TgsError> {
    let len = rd_count(b, 1, what)?;
    let mut raw = vec![0u8; len];
    b.copy_to_slice(&mut raw);
    decode_matrix(Bytes::from(raw)).ok_or_else(|| corrupt(what))
}

fn init_to_u8(init: InitStrategy) -> u8 {
    match init {
        InitStrategy::Random => 0,
        InitStrategy::LexiconSeeded => 1,
    }
}

fn init_from_u8(v: u8) -> Result<InitStrategy, TgsError> {
    match v {
        0 => Ok(InitStrategy::Random),
        1 => Ok(InitStrategy::LexiconSeeded),
        _ => Err(corrupt("init strategy")),
    }
}

fn weighting_to_u8(w: Weighting) -> u8 {
    match w {
        Weighting::Counts => 0,
        Weighting::Binary => 1,
        Weighting::TfIdf => 2,
    }
}

fn weighting_from_u8(v: u8) -> Result<Weighting, TgsError> {
    match v {
        0 => Ok(Weighting::Counts),
        1 => Ok(Weighting::Binary),
        2 => Ok(Weighting::TfIdf),
        _ => Err(corrupt("weighting")),
    }
}

/// Serializes one timeline entry — the per-snapshot layout shared by the
/// full checkpoint's timeline section and the delta codec's new-entry
/// section (`crate::delta`).
pub(crate) fn wr_timeline_entry(buf: &mut BytesMut, entry: &TimelineEntry) {
    buf.put_u64_le(entry.timestamp);
    buf.put_u64_le(entry.tweets as u64);
    buf.put_u64_le(entry.users as u64);
    buf.put_u64_le(entry.new_users as u64);
    buf.put_u64_le(entry.evolving_users as u64);
    buf.put_u64_le(entry.iterations as u64);
    buf.put_slice(&[entry.converged as u8]);
    buf.put_f64_le(entry.objective);
    for &v in &entry.tweet_counts {
        buf.put_u64_le(v as u64);
    }
    for &v in &entry.user_counts {
        buf.put_u64_le(v as u64);
    }
}

/// Inverse of [`wr_timeline_entry`].
pub(crate) fn rd_timeline_entry(b: &mut Bytes, k: usize) -> Result<TimelineEntry, TgsError> {
    let timestamp = rd_u64(b, "timeline timestamp")?;
    let tweets = rd_usize(b, "timeline tweets")?;
    let users = rd_usize(b, "timeline users")?;
    let new_users = rd_usize(b, "timeline new users")?;
    let evolving_users = rd_usize(b, "timeline evolving users")?;
    let iterations = rd_usize(b, "timeline iterations")?;
    let converged = rd_bool(b, "timeline converged")?;
    let objective = rd_f64(b, "timeline objective")?;
    let mut tweet_counts = Vec::with_capacity(k);
    for _ in 0..k {
        tweet_counts.push(rd_usize(b, "timeline tweet count")?);
    }
    let mut user_counts = Vec::with_capacity(k);
    for _ in 0..k {
        user_counts.push(rd_usize(b, "timeline user count")?);
    }
    Ok(TimelineEntry {
        timestamp,
        tweets,
        users,
        new_users,
        evolving_users,
        iterations,
        converged,
        objective,
        tweet_counts,
        user_counts,
    })
}

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

pub(crate) fn encode(
    shared: &EngineShared,
    solver: &OnlineSolver,
    state: &EngineState,
) -> EngineCheckpoint {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);

    // --- Configuration ---
    let c = &shared.config;
    buf.put_u64_le(c.k as u64);
    buf.put_f64_le(c.alpha);
    buf.put_f64_le(c.beta);
    buf.put_f64_le(c.gamma);
    buf.put_f64_le(c.tau);
    buf.put_u64_le(c.window as u64);
    buf.put_slice(&[c.normalize_window as u8]);
    buf.put_u64_le(c.max_iters as u64);
    buf.put_f64_le(c.tol);
    buf.put_u64_le(c.seed);
    buf.put_slice(&[init_to_u8(c.init), c.track_objective as u8]);
    buf.put_u64_le(shared.queue_depth as u64);
    buf.put_u64_le(shared.tokenizer.min_token_len as u64);
    buf.put_slice(&[
        shared.tokenizer.keep_mentions as u8,
        shared.tokenizer.keep_numbers as u8,
        weighting_to_u8(shared.weighting),
    ]);

    // --- Vocabulary + prior ---
    buf.put_u64_le(shared.vocab.len() as u64);
    for token in shared.vocab.tokens() {
        wr_str(&mut buf, token);
    }
    wr_matrix(&mut buf, &shared.sf0);

    // --- Solver temporal state ---
    let solver_state = solver.export_state();
    buf.put_u64_le(solver_state.steps);
    buf.put_u64_le(solver_state.sf_window.len() as u64);
    for sf in &solver_state.sf_window {
        // Compaction: each window matrix is the Sf(t−i) the solver pushed
        // when it committed snapshot t−i — byte-identical to that
        // timestamp's Sf-store entry unless the budget evicted it. Write
        // a back-reference when the store still holds the bytes; inline
        // them only on eviction.
        let encoded = encode_matrix(sf);
        match state
            .sf_store
            .iter()
            .find(|(_, bytes)| bytes.as_slice() == encoded.as_slice())
        {
            Some((t, _)) => {
                buf.put_slice(&[1u8]);
                buf.put_u64_le(t);
            }
            None => {
                buf.put_slice(&[0u8]);
                buf.put_u64_le(encoded.len() as u64);
                buf.put_slice(encoded.as_slice());
            }
        }
    }
    // History steps are signed (rebalance-migrated rows can predate a
    // young solver's step 0); two's-complement u64 round-trips them
    // exactly, and pre-elastic checkpoints only ever held non-negative
    // values, so old streams decode unchanged.
    buf.put_u64_le(solver_state.history_step as u64);
    buf.put_u64_le(solver_state.history_rows.len() as u64);
    for (user, entries) in &solver_state.history_rows {
        buf.put_u64_le(*user as u64);
        buf.put_u64_le(entries.len() as u64);
        for (step, row) in entries {
            buf.put_u64_le(*step as u64);
            for &v in row {
                buf.put_f64_le(v);
            }
        }
    }

    // --- Timeline ---
    buf.put_u64_le(state.timeline.len() as u64);
    for entry in state.timeline.values() {
        wr_timeline_entry(&mut buf, entry);
    }

    // --- Per-user observations (sorted by user id for determinism) ---
    let mut users: Vec<_> = state.user_track.iter().collect();
    users.sort_unstable_by_key(|(&u, _)| u);
    buf.put_u64_le(users.len() as u64);
    for (&user, track) in users {
        buf.put_u64_le(user as u64);
        buf.put_u64_le(track.len() as u64);
        for (t, dist) in track {
            buf.put_u64_le(*t);
            for &v in dist {
                buf.put_f64_le(v);
            }
        }
    }

    // --- Factor stores ---
    for store in [&state.sf_store, &state.sp_store] {
        buf.put_u64_le(store.budget_bytes() as u64);
        buf.put_u64_le(store.len() as u64);
        for (t, bytes) in store.iter() {
            buf.put_u64_le(t);
            buf.put_u64_le(bytes.len() as u64);
            buf.put_slice(bytes.as_slice());
        }
    }

    EngineCheckpoint {
        bytes: buf.freeze(),
    }
}

// ---------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------

pub(crate) fn decode(
    ckpt: &EngineCheckpoint,
) -> Result<(EngineShared, OnlineSolver, EngineState), TgsError> {
    let mut b = ckpt.bytes.clone();
    if b.remaining() < MAGIC.len() {
        return Err(corrupt("magic header"));
    }
    let mut magic = [0u8; 8];
    b.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TgsError::corrupt(
            "unrecognized magic header (not a tgs-engine checkpoint, or a newer format version)",
        ));
    }

    // --- Configuration ---
    let k = rd_usize(&mut b, "k")?;
    let config = OnlineConfig {
        k,
        alpha: rd_f64(&mut b, "alpha")?,
        beta: rd_f64(&mut b, "beta")?,
        gamma: rd_f64(&mut b, "gamma")?,
        tau: rd_f64(&mut b, "tau")?,
        window: rd_usize(&mut b, "window")?,
        normalize_window: rd_bool(&mut b, "normalize_window")?,
        max_iters: rd_usize(&mut b, "max_iters")?,
        tol: rd_f64(&mut b, "tol")?,
        seed: rd_u64(&mut b, "seed")?,
        init: init_from_u8(rd_u8(&mut b, "init")?)?,
        track_objective: rd_bool(&mut b, "track_objective")?,
    };
    config.try_validate()?;
    let queue_depth = rd_usize(&mut b, "queue_depth")?.max(1);
    let tokenizer = TokenizerConfig {
        min_token_len: rd_usize(&mut b, "min_token_len")?,
        keep_mentions: rd_bool(&mut b, "keep_mentions")?,
        keep_numbers: rd_bool(&mut b, "keep_numbers")?,
    };
    let weighting = weighting_from_u8(rd_u8(&mut b, "weighting")?)?;

    // --- Vocabulary + prior ---
    let vocab_len = rd_count(&mut b, 8, "vocabulary length")?;
    let mut tokens = Vec::with_capacity(vocab_len);
    for _ in 0..vocab_len {
        tokens.push(rd_str(&mut b, "vocabulary token")?);
    }
    let vocab = Vocabulary::from_tokens(tokens);
    if vocab.len() != vocab_len {
        return Err(TgsError::corrupt("duplicate vocabulary tokens"));
    }
    let sf0 = rd_matrix(&mut b, "sf0 prior")?;
    if sf0.shape() != (vocab.len(), k) {
        return Err(TgsError::corrupt(format!(
            "sf0 prior is {}×{}, expected {}×{k}",
            sf0.shape().0,
            sf0.shape().1,
            vocab.len()
        )));
    }

    // --- Solver temporal state ---
    // Window entries may back-reference Sf-store timestamps (compaction),
    // and the stores appear later in the stream — parse now, resolve
    // after the stores are decoded.
    enum WindowEntry {
        Inline(DenseMatrix),
        Ref(u64),
    }
    let steps = rd_u64(&mut b, "solver steps")?;
    let window_len = rd_count(&mut b, 9, "sf window length")?;
    let mut window_entries = Vec::with_capacity(window_len);
    for _ in 0..window_len {
        match rd_u8(&mut b, "sf window entry tag")? {
            0 => window_entries.push(WindowEntry::Inline(rd_matrix(
                &mut b,
                "sf window snapshot",
            )?)),
            1 => window_entries.push(WindowEntry::Ref(rd_u64(&mut b, "sf window reference")?)),
            _ => return Err(corrupt("sf window entry tag")),
        }
    }
    // Signed via two's complement — see the encode side.
    let history_step = rd_u64(&mut b, "history step")? as i64;
    let history_users = rd_count(&mut b, 16, "history user count")?;
    let mut history_rows = Vec::with_capacity(history_users);
    for _ in 0..history_users {
        let user = rd_usize(&mut b, "history user id")?;
        let entry_count = rd_count(&mut b, 8 * (k + 1), "history entry count")?;
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let step = rd_u64(&mut b, "history entry step")? as i64;
            let mut row = Vec::with_capacity(k);
            for _ in 0..k {
                row.push(rd_f64(&mut b, "history entry value")?);
            }
            entries.push((step, row));
        }
        history_rows.push((user, entries));
    }

    // --- Timeline ---
    let timeline_len = rd_count(&mut b, 8 * (7 + 2 * k) + 1, "timeline length")?;
    let mut timeline = std::collections::BTreeMap::new();
    for _ in 0..timeline_len {
        let entry = rd_timeline_entry(&mut b, k)?;
        timeline.insert(entry.timestamp, entry);
    }

    // --- Per-user observations ---
    let track_users = rd_count(&mut b, 16, "user track count")?;
    let mut user_track = std::collections::HashMap::with_capacity(track_users);
    for _ in 0..track_users {
        let user = rd_usize(&mut b, "user track id")?;
        let obs_count = rd_count(&mut b, 8 * (k + 1), "user observation count")?;
        let mut track = Vec::with_capacity(obs_count);
        for _ in 0..obs_count {
            let t = rd_u64(&mut b, "user observation timestamp")?;
            let mut dist = Vec::with_capacity(k);
            for _ in 0..k {
                dist.push(rd_f64(&mut b, "user observation value")?);
            }
            track.push((t, dist));
        }
        user_track.insert(user, track);
    }

    // --- Factor stores ---
    let mut stores = Vec::with_capacity(2);
    for name in ["sf store", "sp store"] {
        let budget = rd_usize(&mut b, name)?;
        let mut store = SnapshotStore::new(budget);
        let entries = rd_count(&mut b, 16, name)?;
        for _ in 0..entries {
            let t = rd_u64(&mut b, name)?;
            let matrix = rd_matrix(&mut b, name)?;
            store.put(t, &matrix);
        }
        stores.push(store);
    }
    let sp_store = stores.pop().expect("two stores decoded");
    let sf_store = stores.pop().expect("two stores decoded");

    if b.remaining() != 0 {
        return Err(TgsError::corrupt(format!(
            "{} trailing bytes after the final field",
            b.remaining()
        )));
    }

    // --- Resolve the (possibly compacted) Sf window against the store ---
    let mut sf_window = Vec::with_capacity(window_entries.len());
    for entry in window_entries {
        let sf = match entry {
            WindowEntry::Inline(sf) => sf,
            WindowEntry::Ref(t) => sf_store.get(t).ok_or_else(|| {
                TgsError::corrupt(format!(
                    "sf window references timestamp {t}, which the sf store does not retain"
                ))
            })?,
        };
        // Semantic check: the window must aggregate against this
        // vocabulary, or the first post-restore ingest would blow up
        // inside the solver instead of failing the restore.
        if sf.shape() != (vocab.len(), k) {
            return Err(TgsError::corrupt(format!(
                "sf window snapshot is {}×{}, expected {}×{k}",
                sf.rows(),
                sf.cols(),
                vocab.len()
            )));
        }
        sf_window.push(sf);
    }
    let solver = OnlineSolver::from_state(
        config.clone(),
        OnlineSolverState {
            steps,
            sf_window,
            history_step,
            history_rows,
        },
    )?;

    let shared = EngineShared {
        vocab,
        sf0,
        config,
        tokenizer,
        weighting,
        queue_depth,
    };
    let state = EngineState {
        timeline,
        user_track,
        sf_store,
        sp_store,
        failures: std::collections::VecDeque::new(),
        tracker: crate::delta::DeltaTracker::default(),
    };
    Ok((shared, solver, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-offset cursor for white-box walks of the serialized layout.
    struct Walk<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Walk<'a> {
        fn skip(&mut self, n: usize) {
            self.pos += n;
        }

        fn u64(&mut self) -> u64 {
            let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
            self.pos += 8;
            v
        }

        fn u8(&mut self) -> u8 {
            let v = self.buf[self.pos];
            self.pos += 1;
            v
        }

        /// Advances past the header up to the first Sf-window entry.
        fn seek_window(&mut self) -> usize {
            self.skip(MAGIC.len());
            self.skip(8); // k
            self.skip(4 * 8); // alpha, beta, gamma, tau
            self.skip(8 + 1 + 8 + 8 + 8 + 2); // window..init+track flags
            self.skip(8 + 8 + 3); // queue_depth, min_token_len, tokenizer+weighting
            let vocab_len = self.u64() as usize;
            for _ in 0..vocab_len {
                let token_len = self.u64() as usize;
                self.skip(token_len);
            }
            let sf0_len = self.u64() as usize;
            self.skip(sf0_len);
            self.skip(8); // solver steps
            self.u64() as usize // window length
        }
    }

    /// Walks a serialized checkpoint up to the Sf-window section and
    /// returns each entry's compaction tag (1 = store reference,
    /// 0 = inline matrix).
    fn window_tags(full: &[u8]) -> Vec<u8> {
        let mut w = Walk { buf: full, pos: 0 };
        let window_len = w.seek_window();
        let mut tags = Vec::with_capacity(window_len);
        for _ in 0..window_len {
            let tag = w.u8();
            tags.push(tag);
            match tag {
                1 => w.skip(8),
                0 => {
                    let len = w.u64() as usize;
                    w.skip(len);
                }
                other => panic!("unknown window tag {other}"),
            }
        }
        tags
    }

    fn streamed_engine(window: usize, store_budget: usize) -> crate::SentimentEngine {
        use crate::{EngineBuilder, EngineSnapshot};
        let corpus = tgs_data::generate(&tgs_data::presets::tiny(29));
        let engine = EngineBuilder::new()
            .k(3)
            .max_iters(4)
            .window(window)
            .store_budget_bytes(store_budget)
            .fit(&corpus)
            .unwrap();
        for (lo, hi) in tgs_data::day_windows(corpus.num_days, 1) {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&corpus, lo, hi))
                .unwrap();
        }
        engine.flush().unwrap();
        engine
    }

    #[test]
    fn window_is_compacted_into_store_references() {
        // Default-sized store: every window matrix is still retained by
        // the Sf store, so the whole window serializes as references.
        let engine = streamed_engine(3, 64 << 20);
        let ckpt = engine.checkpoint().unwrap();
        let tags = window_tags(ckpt.as_bytes());
        assert_eq!(tags.len(), 2, "window = 3 keeps w − 1 = 2 snapshots");
        assert!(
            tags.iter().all(|&t| t == 1),
            "retained window matrices must be references, got {tags:?}"
        );
        // The references resolve on restore, bit-identically.
        let restored = crate::SentimentEngine::restore(&ckpt).unwrap();
        assert_eq!(restored.query().timeline(..), engine.query().timeline(..));
        let ckpt2 = restored.checkpoint().unwrap();
        assert_eq!(ckpt2.as_bytes(), ckpt.as_bytes(), "re-encode is stable");
    }

    #[test]
    fn evicted_window_matrices_fall_back_to_inline() {
        // A starving store budget keeps a single entry, so the older
        // window matrix is gone from the store and must inline.
        let engine = streamed_engine(3, 1);
        let ckpt = engine.checkpoint().unwrap();
        let tags = window_tags(ckpt.as_bytes());
        assert_eq!(tags.len(), 2);
        assert!(tags.contains(&0), "evicted matrix must inline: {tags:?}");
        let restored = crate::SentimentEngine::restore(&ckpt).unwrap();
        assert_eq!(restored.query().timeline(..), engine.query().timeline(..));
    }

    #[test]
    fn dangling_window_reference_is_rejected() {
        let engine = streamed_engine(2, 64 << 20);
        let full = engine.checkpoint().unwrap().as_bytes().to_vec();
        // Locate the single window entry (tag 1 + timestamp) and point it
        // at a timestamp the store never held.
        let tags = window_tags(&full);
        assert_eq!(tags, vec![1]);
        // Re-walk to the tag position; the referenced timestamp follows.
        let mut w = Walk { buf: &full, pos: 0 };
        w.seek_window();
        let tag_offset = w.pos;
        let mut tampered = full;
        tampered[tag_offset + 1..tag_offset + 9].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = match decode(&EngineCheckpoint::from_bytes(tampered)) {
            Err(e) => e,
            Ok(_) => panic!("dangling window reference must fail decode"),
        };
        assert!(matches!(err, TgsError::CorruptCheckpoint { .. }));
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in [
            Vec::new(),
            b"short".to_vec(),
            b"NOTMAGIC________________".to_vec(),
            MAGIC.to_vec(), // header only, truncated body
        ] {
            let ckpt = EngineCheckpoint::from_bytes(bad);
            assert!(decode(&ckpt).is_err());
        }
    }

    #[test]
    fn truncations_of_a_valid_checkpoint_never_panic() {
        use crate::{EngineBuilder, EngineSnapshot};
        let corpus = tgs_data::generate(&tgs_data::presets::tiny(13));
        let engine = EngineBuilder::new().k(3).max_iters(4).fit(&corpus).unwrap();
        engine
            .ingest(EngineSnapshot::from_corpus_window(
                &corpus,
                0,
                corpus.num_days,
            ))
            .unwrap();
        engine.flush().unwrap();
        let full = engine.checkpoint().unwrap().as_bytes().to_vec();
        // Every prefix must either decode (only the full stream does) or
        // fail with a typed error — never panic.
        for cut in (0..full.len()).step_by(97).chain([full.len() - 1]) {
            let ckpt = EngineCheckpoint::from_bytes(full[..cut].to_vec());
            assert!(decode(&ckpt).is_err(), "prefix of {cut} bytes decoded");
        }
        assert!(decode(&EngineCheckpoint::from_bytes(full)).is_ok());
    }
}

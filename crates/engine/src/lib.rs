//! # tgs-engine
//!
//! The streaming session facade over the online tri-clustering solver
//! (Algorithm 2 of Zhu et al., SIGMOD 2014): one stable seam that owns
//! the full dynamic-sentiment lifecycle so callers never hand-wire
//! `TriInput`, `OnlineSolver`, windows and stores themselves.
//!
//! * [`EngineBuilder`] — builder-style configuration with typed
//!   validation (`TgsError::InvalidConfig` instead of panics);
//! * [`SentimentEngine`] — owns a bounded ingest queue and a worker
//!   thread: producers submit owned [`EngineSnapshot`]s and never block
//!   on a solve; the worker tokenizes, vectorizes, assembles the
//!   tripartite matrices, steps the solver and records results;
//! * [`EngineQuery`] — the read side: `user_sentiment(user, at)`,
//!   `timeline(range)`, `cluster_summary(t)`, `top_words(t, k)` over the
//!   recorded history;
//! * [`EngineCheckpoint`] — byte-exact checkpoint/restore of the whole
//!   session, including the solver's temporal state (window matrices are
//!   compacted into references against the factor store);
//! * [`ShardedEngine`] — the multi-shard router: `S` engine workers
//!   behind one ingest/query seam, partitioned by user range, with a
//!   merged [`ShardedQuery`] read side, aggregated [`EngineStats`], and
//!   a validated multi-shard [`ShardedCheckpoint`]. One shard is
//!   bit-identical to a plain [`SentimentEngine`].
//!
//! ```
//! use tgs_data::{day_windows, generate, presets};
//! use tgs_engine::{EngineBuilder, EngineSnapshot};
//!
//! let corpus = generate(&presets::tiny(42));
//! let engine = EngineBuilder::new().k(3).max_iters(10).fit(&corpus).unwrap();
//! for (lo, hi) in day_windows(corpus.num_days, 4) {
//!     engine
//!         .ingest(EngineSnapshot::from_corpus_window(&corpus, lo, hi))
//!         .unwrap();
//! }
//! engine.flush().unwrap();
//! let query = engine.query();
//! let timeline = query.timeline(..);
//! assert!(!timeline.is_empty());
//! assert_eq!(timeline[0].tweet_counts.len(), 3);
//! ```

pub mod batch;
pub mod builder;
pub mod checkpoint;
pub mod delta;
mod engine;
pub mod flaky;
pub mod hist;
pub mod query;
pub mod sharded;
pub mod snapshot;
pub mod transport;

pub use batch::{BatchPolicy, BatchingIngest, IngestSink};
pub use builder::{EngineBuilder, DEFAULT_QUEUE_DEPTH, DEFAULT_STORE_BUDGET_BYTES};
pub use checkpoint::EngineCheckpoint;
pub use delta::{CheckpointDelta, DeltaChain};
pub use engine::{EngineStats, SentimentEngine};
pub use flaky::FlakyShard;
pub use hist::{LatencyHistogram, HIST_BUCKETS};
pub use query::{ClusterSummary, EngineQuery, TimelineEntry, UserSentiment};
pub use sharded::{
    Coverage, FleetTips, Partial, RecoveryCounters, ShardLoad, ShardedCheckpoint, ShardedDelta,
    ShardedEngine, ShardedQuery,
};
pub use snapshot::{DocContent, EngineDoc, EngineRetweet, EngineSnapshot};
pub use transport::{exported_users_len, LocalShard, ShardTransport};

#[cfg(test)]
mod tests {
    use super::*;
    use tgs_core::{TgsError, TgsErrorKind};
    use tgs_data::{day_windows, generate, presets, GeneratorConfig};

    fn corpus() -> tgs_data::Corpus {
        generate(&GeneratorConfig {
            num_users: 20,
            total_tweets: 160,
            num_days: 8,
            ..Default::default()
        })
    }

    fn engine_over(corpus: &tgs_data::Corpus) -> SentimentEngine {
        EngineBuilder::new()
            .k(3)
            .max_iters(8)
            .fit(corpus)
            .expect("valid build")
    }

    #[test]
    fn builder_rejects_bad_config_with_typed_error() {
        let err = EngineBuilder::new()
            .alpha(3.0)
            .fit(&corpus())
            .err()
            .expect("alpha out of domain");
        assert_eq!(err.kind(), TgsErrorKind::InvalidConfig);
        let err = EngineBuilder::new()
            .queue_depth(0)
            .fit(&corpus())
            .err()
            .expect("queue depth zero");
        assert_eq!(err.kind(), TgsErrorKind::InvalidConfig);
    }

    #[test]
    fn ingest_flush_query_roundtrip() {
        let c = corpus();
        let engine = engine_over(&c);
        for (lo, hi) in day_windows(c.num_days, 2) {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
        }
        let steps = engine.flush().unwrap();
        assert!(steps >= 3);
        let query = engine.query();
        let timeline = query.timeline(..);
        assert_eq!(timeline.len() as u64, steps);
        let total: usize = timeline.iter().map(|e| e.tweets).sum();
        assert_eq!(total, c.num_tweets());
        // range query slices the same history
        let first_two = query.timeline(..timeline[2].timestamp);
        assert_eq!(first_two.len(), 2);
        // cluster_summary mirrors the timeline entry
        let summary = query.cluster_summary(timeline[0].timestamp).unwrap();
        assert_eq!(summary.tweet_counts, timeline[0].tweet_counts);
        let shares: f64 = summary.tweet_shares.iter().sum();
        assert!((shares - 1.0).abs() < 1e-9);
        // top_words answers for a recorded snapshot with real tokens
        let words = query.top_words(timeline[0].timestamp, 5).unwrap();
        assert_eq!(words.len(), 3);
        assert!(words.iter().all(|cluster| !cluster.is_empty()));
        // user queries answer for an author of the first snapshot
        let user = c.tweets[0].author;
        let s = query
            .user_sentiment(user, timeline.last().unwrap().timestamp)
            .unwrap();
        assert_eq!(s.distribution.len(), 3);
        assert!((s.distribution.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s.label() < 3);
    }

    #[test]
    fn unknown_queries_fail_typed() {
        let c = corpus();
        let engine = engine_over(&c);
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, 0, c.num_days))
            .unwrap();
        engine.flush().unwrap();
        let query = engine.query();
        assert_eq!(
            query.user_sentiment(999_999, 10).unwrap_err().kind(),
            TgsErrorKind::UnknownUser
        );
        assert_eq!(
            query.cluster_summary(777).unwrap_err().kind(),
            TgsErrorKind::SnapshotUnavailable
        );
        assert_eq!(
            query.top_words(777, 3).unwrap_err().kind(),
            TgsErrorKind::SnapshotUnavailable
        );
    }

    #[test]
    fn bad_retweet_reference_surfaces_on_flush() {
        let c = corpus();
        let engine = engine_over(&c);
        let mut snap = EngineSnapshot::new(0);
        snap.push_tokens(1, vec!["hello".into()]);
        snap.push_retweet(2, 5); // no such document
        engine.ingest(snap).unwrap();
        let err = engine.flush().unwrap_err();
        assert_eq!(err.kind(), TgsErrorKind::InvalidArgument);
        // the engine stays usable afterwards
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, 0, c.num_days))
            .unwrap();
        assert_eq!(engine.flush().unwrap(), 1);
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)]
    fn inverted_or_empty_timeline_ranges_return_empty() {
        let c = corpus();
        let engine = engine_over(&c);
        for (lo, hi) in day_windows(c.num_days, 2) {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
        }
        engine.flush().unwrap();
        let query = engine.query();
        assert!(!query.timeline(..).is_empty());
        // No panic, just empty results (BTreeMap::range would panic).
        assert!(query.timeline(5..3).is_empty());
        assert!(query.timeline(7..=2).is_empty());
        assert!(query.timeline(3..3).is_empty());
        assert!(query
            .timeline((
                std::ops::Bound::Excluded(u64::MAX),
                std::ops::Bound::Unbounded
            ))
            .is_empty());
    }

    #[test]
    fn duplicate_timestamps_are_rejected_not_double_counted() {
        let c = corpus();
        let engine = engine_over(&c);
        let snap = EngineSnapshot::from_corpus_window(&c, 0, c.num_days);
        engine.ingest(snap.clone()).unwrap();
        engine.flush().unwrap();
        engine.ingest(snap).unwrap();
        let err = engine.flush().unwrap_err();
        assert_eq!(err.kind(), TgsErrorKind::InvalidArgument);
        // The solver stepped exactly once; the stream stays clean.
        assert_eq!(engine.steps(), 1);
        assert_eq!(engine.query().timeline(..).len(), 1);
    }

    #[test]
    fn empty_snapshots_are_skipped() {
        let c = corpus();
        let engine = engine_over(&c);
        engine.ingest(EngineSnapshot::new(3)).unwrap();
        assert_eq!(engine.flush().unwrap(), 0);
        assert!(engine.query().timeline(..).is_empty());
    }

    #[test]
    fn raw_text_documents_are_tokenized_by_the_engine() {
        let c = generate(&presets::tiny(11));
        let engine = engine_over(&c);
        // Build a snapshot from raw strings using real corpus tokens so
        // some survive the frozen vocabulary.
        let mut snap = EngineSnapshot::new(0);
        for t in c.tweets.iter().take(30) {
            snap.push_text(t.author, t.tokens.join(" "));
        }
        engine.ingest(snap).unwrap();
        assert_eq!(engine.flush().unwrap(), 1);
        let entry = engine.query().latest().unwrap();
        assert_eq!(entry.tweets, 30);
    }

    #[test]
    fn checkpoint_restore_preserves_history_and_determinism() {
        let c = corpus();
        let windows = day_windows(c.num_days, 2);
        let (head, tail) = windows.split_at(windows.len() / 2);

        let engine = engine_over(&c);
        for &(lo, hi) in head {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
        }
        engine.flush().unwrap();
        let ckpt = engine.checkpoint().unwrap();
        assert!(!ckpt.is_empty());

        let restored = SentimentEngine::restore(&ckpt).unwrap();
        assert_eq!(restored.steps(), engine.steps());
        assert_eq!(
            restored.query().timeline(..),
            engine.query().timeline(..),
            "restored engine must answer historical queries identically"
        );

        for &(lo, hi) in tail {
            let snap = EngineSnapshot::from_corpus_window(&c, lo, hi);
            engine.ingest(snap.clone()).unwrap();
            restored.ingest(snap).unwrap();
        }
        engine.flush().unwrap();
        restored.flush().unwrap();
        let a = engine.query().timeline(..);
        let b = restored.query().timeline(..);
        assert_eq!(a, b, "post-restore results must be bit-identical");
    }

    #[test]
    fn stats_track_ingest_and_backpressure() {
        let c = corpus();
        let engine = EngineBuilder::new()
            .k(3)
            .max_iters(8)
            .queue_depth(1)
            .fit(&c)
            .expect("valid build");
        assert_eq!(
            engine.stats(),
            EngineStats {
                simd: tgs_linalg::simd_tier_name(),
                threads: tgs_linalg::pool_threads() as u64,
                pinned: tgs_linalg::pinning_enabled(),
                ..EngineStats::default()
            }
        );
        // Fill the bounded queue through the non-blocking path; with a
        // queue depth of 1 and multi-millisecond solves per snapshot,
        // capacity drops must appear long before the stream runs out.
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for t in 0..10_000u64 {
            let mut snap = EngineSnapshot::from_corpus_window(&c, 0, c.num_days);
            snap.timestamp = t;
            if engine.try_ingest(snap).unwrap() {
                accepted += 1;
            } else {
                dropped += 1;
                if dropped >= 3 {
                    break;
                }
            }
        }
        engine.flush().unwrap();
        let stats = engine.stats();
        assert!(dropped >= 1, "queue_depth = 1 must shed load");
        assert_eq!(stats.dropped_capacity, dropped);
        assert_eq!(stats.ingested, accepted);
        assert_eq!(stats.queued, 0, "flush drains the queue");
        assert!(stats.last_step_ns > 0);
        // The histogram saw every committed step and every shed.
        assert_eq!(stats.step_hist.count(), accepted);
        assert_eq!(stats.step_hist.shed(), dropped);
        assert!(stats.step_hist.p50() > 0);
        assert!(stats.step_hist.p999() >= stats.step_hist.p50());
        assert_eq!(engine.query().timeline(..).len() as u64, accepted);
        assert_eq!(
            stats.simd,
            tgs_linalg::simd_tier_name(),
            "stats must record the active SIMD tier"
        );
        // Aggregation: counters and histogram buckets sum, latency takes
        // the max, the SIMD tier carries through.
        let mut other_hist = LatencyHistogram::new();
        other_hist.record(1 << 20);
        other_hist.add_shed(3);
        let merged = stats.merge(&EngineStats {
            queued: 1,
            ingested: 2,
            dropped_capacity: 3,
            last_step_ns: u64::MAX,
            step_hist: other_hist,
            ghost_edges: 4,
            dropped_cross_shard: 5,
            shard_unavailable: 6,
            simd: "",
            threads: 0,
            pinned: false,
            respawns: 7,
            replayed_docs: 8,
            degraded_queries: 9,
        });
        assert_eq!(merged.queued, 1);
        assert_eq!(merged.ingested, stats.ingested + 2);
        assert_eq!(merged.dropped_capacity, stats.dropped_capacity + 3);
        assert_eq!(merged.last_step_ns, u64::MAX);
        assert_eq!(merged.step_hist.count(), stats.step_hist.count() + 1);
        assert_eq!(merged.step_hist.shed(), stats.step_hist.shed() + 3);
        assert_eq!(merged.ghost_edges, 4);
        assert_eq!(merged.dropped_cross_shard, 5);
        assert_eq!(merged.shard_unavailable, 6);
        assert_eq!(merged.respawns, 7, "recovery counters sum");
        assert_eq!(merged.replayed_docs, 8);
        assert_eq!(merged.degraded_queries, 9);
        assert_eq!(merged.simd, stats.simd);
        assert_eq!(merged.threads, stats.threads, "threads carry through");
        assert_eq!(merged.pinned, stats.pinned, "pinned carries through");
    }

    #[test]
    fn try_ingest_reusable_returns_the_snapshot_on_backpressure() {
        let c = corpus();
        let engine = EngineBuilder::new()
            .k(3)
            .max_iters(8)
            .queue_depth(1)
            .fit(&c)
            .expect("valid build");
        // Shed until the non-blocking path rejects, then check the exact
        // payload comes back so producers can recycle it.
        let mut returned = None;
        for t in 0..10_000u64 {
            let mut snap = EngineSnapshot::from_corpus_window(&c, 0, c.num_days);
            snap.timestamp = t;
            let expect = snap.clone();
            if let Some(back) = engine.try_ingest_reusable(snap).unwrap() {
                assert_eq!(back, expect, "rejection hands back the same snapshot");
                returned = Some(back);
                break;
            }
        }
        let back = returned.expect("queue_depth = 1 must reject eventually");
        assert!(engine.stats().step_hist.shed() >= 1);
        engine.flush().unwrap();
        // The returned snapshot is still ingestable (nothing was lost).
        assert!(engine.try_ingest(back).unwrap());
        engine.flush().unwrap();
    }

    #[test]
    fn restore_rejects_corrupt_bytes() {
        let err = SentimentEngine::restore(&EngineCheckpoint::from_bytes(vec![0; 32]))
            .err()
            .expect("corrupt checkpoint must fail");
        assert!(matches!(err, TgsError::CorruptCheckpoint { .. }));
    }
}

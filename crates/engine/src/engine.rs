//! The streaming session facade: ingest worker, state, and lifecycle.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;
use tgs_core::{OnlineConfig, OnlineSolver, SnapshotData, SnapshotStore, TgsError, TriInput};
use tgs_data::{assemble_snapshot_matrices, SnapshotMatrices};
use tgs_linalg::DenseMatrix;
use tgs_text::{tokenize_features, TokenizerConfig, Vocabulary, Weighting};

use crate::checkpoint::{self, EngineCheckpoint};
use crate::query::{EngineQuery, TimelineEntry};
use crate::snapshot::{DocContent, EngineSnapshot};

/// Immutable per-engine configuration: everything the worker needs to
/// turn an [`EngineSnapshot`] into tripartite matrices.
pub(crate) struct EngineShared {
    /// The frozen global vocabulary (fixes the feature axis across time).
    pub vocab: Vocabulary,
    /// The `l × k` lexicon prior, shared by every snapshot.
    pub sf0: DenseMatrix,
    /// The online solver configuration.
    pub config: OnlineConfig,
    /// Tokenizer for [`DocContent::Raw`] documents.
    pub tokenizer: TokenizerConfig,
    /// Term weighting for the snapshot matrices.
    pub weighting: Weighting,
    /// Bound of the ingest queue (snapshots, not bytes).
    pub queue_depth: usize,
}

/// The mutable recorded history behind the query API.
pub(crate) struct EngineState {
    /// Per-snapshot aggregates, keyed by timestamp.
    pub timeline: BTreeMap<u64, TimelineEntry>,
    /// Per-user `(timestamp, distribution)` observations, append order.
    pub user_track: HashMap<usize, Vec<(u64, Vec<f64>)>>,
    /// Per-snapshot `Sf` factors (feature–sentiment), byte-budgeted.
    pub sf_store: SnapshotStore,
    /// Per-snapshot `Sp` factors (tweet–sentiment), byte-budgeted.
    pub sp_store: SnapshotStore,
    /// Ingest failures not yet surfaced through [`SentimentEngine::flush`].
    pub failures: VecDeque<(u64, TgsError)>,
}

impl EngineState {
    pub(crate) fn new(store_budget_bytes: usize) -> Self {
        Self {
            timeline: BTreeMap::new(),
            user_track: HashMap::new(),
            sf_store: SnapshotStore::new(store_budget_bytes),
            sp_store: SnapshotStore::new(store_budget_bytes),
            failures: VecDeque::new(),
        }
    }
}

enum Command {
    Ingest(EngineSnapshot),
    Sync(mpsc::Sender<()>),
}

/// Ingest-path counters, shared between producers, the worker thread and
/// [`SentimentEngine::stats`]. All relaxed atomics — the stats are a
/// monitoring surface, not a synchronization primitive.
#[derive(Debug, Default)]
pub(crate) struct EngineMetrics {
    queued: AtomicU64,
    ingested: AtomicU64,
    dropped_capacity: AtomicU64,
    last_step_ns: AtomicU64,
}

/// A point-in-time snapshot of an engine's ingest metrics — the
/// backpressure surface printed by `tgs stream --stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Snapshots accepted into the queue but not yet processed.
    pub queued: u64,
    /// Snapshots fully processed (committed or skipped-as-empty).
    pub ingested: u64,
    /// Snapshots rejected by [`SentimentEngine::try_ingest`] because the
    /// bounded queue was full.
    pub dropped_capacity: u64,
    /// Wall-clock nanoseconds the worker spent on the most recent
    /// snapshot (tokenize + assemble + solve + commit).
    pub last_step_ns: u64,
}

impl EngineStats {
    /// Element-wise accumulation for multi-shard aggregation: counters
    /// sum; `last_step_ns` takes the maximum (the slowest shard gates a
    /// fan-out step's latency).
    pub fn merge(&self, other: &EngineStats) -> EngineStats {
        EngineStats {
            queued: self.queued + other.queued,
            ingested: self.ingested + other.ingested,
            dropped_capacity: self.dropped_capacity + other.dropped_capacity,
            last_step_ns: self.last_step_ns.max(other.last_step_ns),
        }
    }
}

/// A streaming sentiment session: owns the online solver, an ingest
/// worker thread, and the queryable history.
///
/// Built via [`crate::EngineBuilder`]. Producers hand owned
/// [`EngineSnapshot`]s to [`SentimentEngine::ingest`]; a dedicated worker
/// tokenizes and vectorizes them, steps Algorithm 2, and records results
/// into the timeline, the per-user history and the bounded factor stores.
/// [`SentimentEngine::query`] returns a cloneable read handle; the
/// [`SentimentEngine::checkpoint`] / [`SentimentEngine::restore`] pair
/// round-trips the whole session (solver temporal state included) through
/// bytes, with bit-identical subsequent results.
pub struct SentimentEngine {
    shared: Arc<EngineShared>,
    state: Arc<Mutex<EngineState>>,
    solver: Arc<Mutex<OnlineSolver>>,
    metrics: Arc<EngineMetrics>,
    tx: Option<SyncSender<Command>>,
    worker: Option<JoinHandle<()>>,
}

impl SentimentEngine {
    /// Spawns the ingest worker. `solver` must have been created from
    /// `shared.config` (the builder and the checkpoint decoder both
    /// guarantee this).
    pub(crate) fn start(shared: EngineShared, solver: OnlineSolver, state: EngineState) -> Self {
        let shared = Arc::new(shared);
        let state = Arc::new(Mutex::new(state));
        let solver = Arc::new(Mutex::new(solver));
        let metrics = Arc::new(EngineMetrics::default());
        let (tx, rx) = mpsc::sync_channel(shared.queue_depth);
        let worker = {
            let shared = Arc::clone(&shared);
            let state = Arc::clone(&state);
            let solver = Arc::clone(&solver);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("tgs-engine-worker".into())
                .spawn(move || worker_loop(rx, shared, solver, state, metrics))
                .expect("spawning the engine worker thread")
        };
        Self {
            shared,
            state,
            solver,
            metrics,
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Submits a snapshot for asynchronous processing. Returns as soon as
    /// the snapshot is queued — producers never wait on a solve, only on
    /// queue space once more than `queue_depth` snapshots are pending
    /// (bounded backpressure). Processing failures surface on the next
    /// [`SentimentEngine::flush`].
    pub fn ingest(&self, snapshot: EngineSnapshot) -> Result<(), TgsError> {
        let tx = self.tx.as_ref().ok_or(TgsError::EngineClosed)?;
        // Count before sending: the worker decrements after processing,
        // and a fast worker could otherwise finish (and decrement) before
        // this thread's increment, transiently wrapping the counter.
        self.metrics.queued.fetch_add(1, Ordering::Relaxed);
        tx.send(Command::Ingest(snapshot)).map_err(|_| {
            self.metrics.queued.fetch_sub(1, Ordering::Relaxed);
            TgsError::EngineClosed
        })
    }

    /// Non-blocking variant of [`SentimentEngine::ingest`]: returns
    /// `Ok(false)` — and counts the snapshot in
    /// [`EngineStats::dropped_capacity`] — when the bounded queue is
    /// full, instead of blocking the producer. Load-shedding front ends
    /// use this to keep their latency bounded under backpressure.
    pub fn try_ingest(&self, snapshot: EngineSnapshot) -> Result<bool, TgsError> {
        let tx = self.tx.as_ref().ok_or(TgsError::EngineClosed)?;
        // Same ordering rationale as `ingest`: count first, undo on
        // failure, so the worker's decrement can never observe 0.
        self.metrics.queued.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(Command::Ingest(snapshot)) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(_)) => {
                self.metrics.queued.fetch_sub(1, Ordering::Relaxed);
                self.metrics
                    .dropped_capacity
                    .fetch_add(1, Ordering::Relaxed);
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.queued.fetch_sub(1, Ordering::Relaxed);
                Err(TgsError::EngineClosed)
            }
        }
    }

    /// Current ingest metrics: queue depth, processed count, snapshots
    /// shed at capacity, and the last snapshot's processing time.
    /// Counters restart at zero on [`SentimentEngine::restore`] — they
    /// describe this process's session, not the stream's history.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            queued: self.metrics.queued.load(Ordering::Relaxed),
            ingested: self.metrics.ingested.load(Ordering::Relaxed),
            dropped_capacity: self.metrics.dropped_capacity.load(Ordering::Relaxed),
            last_step_ns: self.metrics.last_step_ns.load(Ordering::Relaxed),
        }
    }

    /// Blocks until every queued snapshot has been processed, then
    /// reports the first pending ingest failure (if any) or the number of
    /// snapshots processed so far.
    pub fn flush(&self) -> Result<u64, TgsError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .as_ref()
            .ok_or(TgsError::EngineClosed)?
            .send(Command::Sync(ack_tx))
            .map_err(|_| TgsError::EngineClosed)?;
        ack_rx.recv().map_err(|_| TgsError::EngineClosed)?;
        if let Some((_, e)) = self.state.lock().failures.pop_front() {
            return Err(e);
        }
        Ok(self.solver.lock().steps())
    }

    /// A cloneable read handle over the recorded history.
    pub fn query(&self) -> EngineQuery {
        EngineQuery {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&self.state),
        }
    }

    /// The engine's solver configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.shared.config
    }

    /// The frozen global vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.shared.vocab
    }

    /// Snapshots processed so far (committed, not queued).
    pub fn steps(&self) -> u64 {
        self.solver.lock().steps()
    }

    /// Drains the queue and serializes the whole session — configuration,
    /// vocabulary, solver temporal state, timeline, per-user history and
    /// the factor stores — into a byte-level checkpoint. Fails if a
    /// queued snapshot failed to process (the session must be clean).
    pub fn checkpoint(&self) -> Result<EngineCheckpoint, TgsError> {
        self.flush()?;
        let solver = self.solver.lock();
        let state = self.state.lock();
        Ok(checkpoint::encode(&self.shared, &solver, &state))
    }

    /// Rebuilds a session from a checkpoint. The restored engine answers
    /// every query the original did and produces bit-identical results
    /// for subsequently ingested snapshots.
    pub fn restore(ckpt: &EngineCheckpoint) -> Result<Self, TgsError> {
        let (shared, solver, state) = checkpoint::decode(ckpt)?;
        Ok(Self::start(shared, solver, state))
    }

    /// Drains the queue and stops the worker. Equivalent to dropping the
    /// engine, but surfaces pending ingest failures instead of discarding
    /// them.
    pub fn shutdown(mut self) -> Result<(), TgsError> {
        let outcome = self.flush();
        self.close();
        outcome.map(|_| ())
    }

    fn close(&mut self) {
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for SentimentEngine {
    fn drop(&mut self) {
        self.close();
    }
}

fn worker_loop(
    rx: Receiver<Command>,
    shared: Arc<EngineShared>,
    solver: Arc<Mutex<OnlineSolver>>,
    state: Arc<Mutex<EngineState>>,
    metrics: Arc<EngineMetrics>,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Ingest(snapshot) => {
                let timestamp = snapshot.timestamp;
                let started = Instant::now();
                match process(&shared, &solver, &state, snapshot) {
                    Ok(()) => {
                        metrics.ingested.fetch_add(1, Ordering::Relaxed);
                        metrics.last_step_ns.store(
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            Ordering::Relaxed,
                        );
                    }
                    Err(e) => state.lock().failures.push_back((timestamp, e)),
                }
                metrics.queued.fetch_sub(1, Ordering::Relaxed);
            }
            Command::Sync(ack) => {
                let _ = ack.send(());
            }
        }
    }
}

/// Turns one owned snapshot into matrices, steps the solver, and commits
/// the results. Runs on the worker thread.
fn process(
    shared: &EngineShared,
    solver: &Mutex<OnlineSolver>,
    state: &Mutex<EngineState>,
    snapshot: EngineSnapshot,
) -> Result<(), TgsError> {
    let EngineSnapshot {
        timestamp,
        docs,
        retweets,
    } = snapshot;
    if docs.is_empty() {
        // Nothing to solve; empty slices do not advance the stream.
        return Ok(());
    }
    // The solver's temporal state (window, per-user history) is
    // append-only: replaying a timestamp would weight that slice twice in
    // the Sfw/Suw aggregates. Reject instead of silently biasing.
    if state.lock().timeline.contains_key(&timestamp) {
        return Err(TgsError::invalid_argument(format!(
            "timestamp {timestamp} already ingested; the stream is append-only"
        )));
    }
    let k = shared.config.k;

    // --- Tokenize (raw text) / adopt (pre-tokenized) ---
    let mut doc_users = Vec::with_capacity(docs.len());
    let mut tokenized: Vec<Vec<String>> = Vec::with_capacity(docs.len());
    for doc in docs {
        doc_users.push(doc.user);
        tokenized.push(match doc.content {
            DocContent::Raw(text) => tokenize_features(&text, &shared.tokenizer),
            DocContent::Tokens(tokens) => tokens,
        });
    }
    let n = tokenized.len();
    for r in &retweets {
        if r.doc >= n {
            return Err(TgsError::invalid_argument(format!(
                "retweet references document {} but the snapshot has {n}",
                r.doc
            )));
        }
    }

    // --- Local user index (global ids may be sparse) ---
    let mut user_ids: Vec<usize> = doc_users
        .iter()
        .copied()
        .chain(retweets.iter().map(|r| r.user))
        .collect();
    user_ids.sort_unstable();
    user_ids.dedup();
    let local: HashMap<usize, usize> = user_ids.iter().enumerate().map(|(i, &u)| (u, i)).collect();
    let m = user_ids.len();

    // --- Vectorize + assemble through the shared snapshot pipeline ---
    let encoded: Vec<Vec<usize>> = tokenized
        .iter()
        .map(|d| shared.vocab.encode(d.iter().map(String::as_str)))
        .collect();
    let doc_user_local: Vec<usize> = doc_users.iter().map(|u| local[u]).collect();
    let retweet_pairs: Vec<(usize, usize)> =
        retweets.iter().map(|r| (local[&r.user], r.doc)).collect();
    let SnapshotMatrices { xp, xu, xr, graph } = assemble_snapshot_matrices(
        &shared.vocab,
        &encoded,
        &doc_user_local,
        m,
        &retweet_pairs,
        shared.weighting,
    );

    // --- Solve ---
    let input = TriInput {
        xp: &xp,
        xu: &xu,
        xr: &xr,
        graph: &graph,
        sf0: &shared.sf0,
    };
    let step = solver.lock().try_step(&SnapshotData {
        input,
        user_ids: &user_ids,
    })?;

    // --- Commit ---
    let mut tweet_counts = vec![0usize; k];
    for &label in &step.tweet_labels() {
        tweet_counts[label] += 1;
    }
    let mut user_counts = vec![0usize; k];
    for &label in &step.user_labels() {
        user_counts[label] += 1;
    }
    let mut su_dist = step.factors.su.clone();
    su_dist.normalize_rows_l1();
    let entry = TimelineEntry {
        timestamp,
        tweets: n,
        users: m,
        new_users: step.partition.new_rows.len(),
        evolving_users: step.partition.evolving_rows.len(),
        iterations: step.iterations,
        converged: step.converged,
        objective: step.objective,
        tweet_counts,
        user_counts,
    };
    let mut st = state.lock();
    st.timeline.insert(timestamp, entry);
    for (row, &user) in user_ids.iter().enumerate() {
        // Timestamps are unique (checked above), so plain appends; the
        // queries sort / max-filter, so out-of-order ingest is fine.
        st.user_track
            .entry(user)
            .or_default()
            .push((timestamp, su_dist.row(row).to_vec()));
    }
    st.sf_store.put(timestamp, &step.factors.sf);
    st.sp_store.put(timestamp, &step.factors.sp);
    Ok(())
}

//! The streaming session facade: ingest worker, state, and lifecycle.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;
use tgs_core::{OnlineConfig, OnlineSolver, SnapshotData, SnapshotStore, TgsError, TriInput};
use tgs_data::{assemble_snapshot_matrices, SnapshotMatrices};
use tgs_linalg::DenseMatrix;
use tgs_text::{tokenize_features_into, TokenizerConfig, Vocabulary, Weighting};

use crate::batch::{BatchPolicy, BatchingIngest};
use crate::checkpoint::{self, EngineCheckpoint};
use crate::hist::{LatencyHistogram, HIST_BUCKETS};
use crate::query::{EngineQuery, TimelineEntry};
use crate::snapshot::{DocContent, EngineSnapshot};

/// Immutable per-engine configuration: everything the worker needs to
/// turn an [`EngineSnapshot`] into tripartite matrices.
pub(crate) struct EngineShared {
    /// The frozen global vocabulary (fixes the feature axis across time).
    pub vocab: Vocabulary,
    /// The `l × k` lexicon prior, shared by every snapshot.
    pub sf0: DenseMatrix,
    /// The online solver configuration.
    pub config: OnlineConfig,
    /// Tokenizer for [`DocContent::Raw`] documents.
    pub tokenizer: TokenizerConfig,
    /// Term weighting for the snapshot matrices.
    pub weighting: Weighting,
    /// Bound of the ingest queue (snapshots, not bytes).
    pub queue_depth: usize,
}

/// The mutable recorded history behind the query API.
pub(crate) struct EngineState {
    /// Per-snapshot aggregates, keyed by timestamp.
    pub timeline: BTreeMap<u64, TimelineEntry>,
    /// Per-user `(timestamp, distribution)` observations, append order.
    pub user_track: HashMap<usize, Vec<(u64, Vec<f64>)>>,
    /// Per-snapshot `Sf` factors (feature–sentiment), byte-budgeted.
    pub sf_store: SnapshotStore,
    /// Per-snapshot `Sp` factors (tweet–sentiment), byte-budgeted.
    pub sp_store: SnapshotStore,
    /// Ingest failures not yet surfaced through [`SentimentEngine::flush`].
    pub failures: VecDeque<(u64, TgsError)>,
    /// Dirty-state log behind delta checkpoints (see [`crate::delta`]).
    /// Not checkpointed: marks are engine-local, like the metrics.
    pub tracker: crate::delta::DeltaTracker,
}

impl EngineState {
    pub(crate) fn new(store_budget_bytes: usize) -> Self {
        Self {
            timeline: BTreeMap::new(),
            user_track: HashMap::new(),
            sf_store: SnapshotStore::new(store_budget_bytes),
            sp_store: SnapshotStore::new(store_budget_bytes),
            failures: VecDeque::new(),
            tracker: crate::delta::DeltaTracker::default(),
        }
    }
}

enum Command {
    Ingest(EngineSnapshot),
    Sync(mpsc::Sender<()>),
    /// Asks the worker thread to pin itself to the `set_index`-th of
    /// `n_sets` disjoint core groups (best effort, `TGS_PIN`-gated) —
    /// affinity must be set from the thread itself, so the router sends
    /// it through the queue instead of reaching into the thread.
    Pin {
        set_index: usize,
        n_sets: usize,
    },
}

/// Ingest-path counters, shared between producers, the worker thread and
/// [`SentimentEngine::stats`]. All relaxed atomics — the stats are a
/// monitoring surface, not a synchronization primitive.
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    queued: AtomicU64,
    ingested: AtomicU64,
    dropped_capacity: AtomicU64,
    last_step_ns: AtomicU64,
    /// Per-bucket step-latency counts (log-linear ns; see
    /// [`LatencyHistogram`]).
    step_buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for EngineMetrics {
    // Manual because `[AtomicU64; HIST_BUCKETS]` has no `Default` (the
    // standard library stops deriving array impls at length 32).
    fn default() -> Self {
        Self {
            queued: AtomicU64::new(0),
            ingested: AtomicU64::new(0),
            dropped_capacity: AtomicU64::new(0),
            last_step_ns: AtomicU64::new(0),
            step_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl EngineMetrics {
    /// Worker-side: records one completed step's wall-clock nanoseconds
    /// into both the gauge and the histogram.
    fn record_step(&self, ns: u64) {
        self.last_step_ns.store(ns, Ordering::Relaxed);
        self.step_buckets[LatencyHistogram::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the step-latency histogram; sheds mirror
    /// `dropped_capacity` (every full-queue rejection is a shed).
    fn step_hist(&self) -> LatencyHistogram {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(self.step_buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        LatencyHistogram::from_parts(&buckets, self.dropped_capacity.load(Ordering::Relaxed))
    }
}

/// A point-in-time snapshot of an engine's ingest metrics — the
/// backpressure surface printed by `tgs stream --stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Snapshots accepted into the queue but not yet processed.
    pub queued: u64,
    /// Snapshots fully processed (committed or skipped-as-empty).
    pub ingested: u64,
    /// Snapshots rejected by [`SentimentEngine::try_ingest`] because the
    /// bounded queue was full.
    pub dropped_capacity: u64,
    /// Wall-clock nanoseconds the worker spent on the most recent
    /// snapshot (tokenize + assemble + solve + commit).
    pub last_step_ns: u64,
    /// Log2-bucket histogram of every step's wall-clock nanoseconds
    /// (p50/p99/p999 accessors), plus a `shed` count of snapshots that
    /// never reached the solver. On a single engine the sheds mirror
    /// `dropped_capacity`; on the multi-shard router they additionally
    /// include batches shed before splitting.
    pub step_hist: LatencyHistogram,
    /// Cross-shard re-tweet edges *kept* as ghost rows (multi-shard
    /// router, ghost mode). Always 0 on a single engine.
    pub ghost_edges: u64,
    /// Cross-shard re-tweet edges dropped at ingest (multi-shard router,
    /// legacy drop mode — with ghost mode on, this stays 0 by
    /// construction). Always 0 on a single engine.
    pub dropped_cross_shard: u64,
    /// Shard calls the multi-shard router observed failing with a
    /// network error (cumulative; see [`tgs_core::TgsErrorKind::Net`]).
    /// Always 0 on a single engine or an all-local fleet.
    pub shard_unavailable: u64,
    /// The SIMD tier the solver kernels execute under in this process
    /// (`tgs_linalg::simd_tier_name()`: detected ISA clamped by the
    /// `TGS_SIMD` override) — recorded so bench runs and bug reports
    /// state which code path produced their numbers.
    pub simd: &'static str,
    /// The worker-pool thread budget the solver kernels run under
    /// (`tgs_linalg::pool_threads()`: `TGS_THREADS` / detected cores,
    /// clamped) — process-wide, recorded for the same reason as `simd`.
    pub threads: u64,
    /// Whether core pinning is requested (`TGS_PIN`): pool workers take
    /// a core each and fleet shard workers request disjoint core sets.
    /// Best-effort — on non-Linux platforms the request is a no-op.
    pub pinned: bool,
    /// Shard slots the supervisor rebuilt from their last good
    /// checkpoint section after a failure (cumulative). Always 0 on a
    /// single engine or an unsupervised fleet.
    pub respawns: u64,
    /// Documents re-ingested from replay journals while rebuilding
    /// failed shards (cumulative). Always 0 without a supervisor.
    pub replayed_docs: u64,
    /// Fan-out queries answered with partial coverage because at least
    /// one shard was unavailable (cumulative). Always 0 on a single
    /// engine.
    pub degraded_queries: u64,
}

impl EngineStats {
    /// Element-wise accumulation for multi-shard aggregation: counters
    /// and histogram buckets sum; `last_step_ns` takes the maximum (the
    /// slowest shard gates a fan-out step's latency); `simd`, `threads`
    /// and `pinned` are process-wide and carried through.
    pub fn merge(&self, other: &EngineStats) -> EngineStats {
        EngineStats {
            queued: self.queued + other.queued,
            ingested: self.ingested + other.ingested,
            dropped_capacity: self.dropped_capacity + other.dropped_capacity,
            last_step_ns: self.last_step_ns.max(other.last_step_ns),
            step_hist: self.step_hist.merge(&other.step_hist),
            ghost_edges: self.ghost_edges + other.ghost_edges,
            dropped_cross_shard: self.dropped_cross_shard + other.dropped_cross_shard,
            shard_unavailable: self.shard_unavailable + other.shard_unavailable,
            simd: if self.simd.is_empty() {
                other.simd
            } else {
                self.simd
            },
            threads: self.threads.max(other.threads),
            pinned: self.pinned || other.pinned,
            respawns: self.respawns + other.respawns,
            replayed_docs: self.replayed_docs + other.replayed_docs,
            degraded_queries: self.degraded_queries + other.degraded_queries,
        }
    }
}

/// A streaming sentiment session: owns the online solver, an ingest
/// worker thread, and the queryable history.
///
/// Built via [`crate::EngineBuilder`]. Producers hand owned
/// [`EngineSnapshot`]s to [`SentimentEngine::ingest`]; a dedicated worker
/// tokenizes and vectorizes them, steps Algorithm 2, and records results
/// into the timeline, the per-user history and the bounded factor stores.
/// [`SentimentEngine::query`] returns a cloneable read handle; the
/// [`SentimentEngine::checkpoint`] / [`SentimentEngine::restore`] pair
/// round-trips the whole session (solver temporal state included) through
/// bytes, with bit-identical subsequent results.
pub struct SentimentEngine {
    shared: Arc<EngineShared>,
    state: Arc<Mutex<EngineState>>,
    solver: Arc<Mutex<OnlineSolver>>,
    metrics: Arc<EngineMetrics>,
    /// Process-local micro-batching knobs (see [`BatchPolicy`]): set by
    /// the builder, read by [`SentimentEngine::batching`]. Deliberately
    /// not checkpointed — a tuning knob of this process, like the SIMD
    /// tier, not part of the stream's history.
    batch_policy: BatchPolicy,
    tx: Option<SyncSender<Command>>,
    worker: Option<JoinHandle<()>>,
}

impl SentimentEngine {
    /// Spawns the ingest worker. `solver` must have been created from
    /// `shared.config` (the builder and the checkpoint decoder both
    /// guarantee this).
    pub(crate) fn start(shared: EngineShared, solver: OnlineSolver, state: EngineState) -> Self {
        let shared = Arc::new(shared);
        let state = Arc::new(Mutex::new(state));
        let solver = Arc::new(Mutex::new(solver));
        let metrics = Arc::new(EngineMetrics::default());
        let (tx, rx) = mpsc::sync_channel(shared.queue_depth);
        let worker = {
            let shared = Arc::clone(&shared);
            let state = Arc::clone(&state);
            let solver = Arc::clone(&solver);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("tgs-engine-worker".into())
                .spawn(move || worker_loop(rx, shared, solver, state, metrics))
                .expect("spawning the engine worker thread")
        };
        Self {
            shared,
            state,
            solver,
            metrics,
            batch_policy: BatchPolicy::default(),
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Installs the micro-batching policy (builder-time only; validated
    /// by the builder).
    pub(crate) fn set_batch_policy(&mut self, policy: BatchPolicy) {
        self.batch_policy = policy;
    }

    /// The micro-batching policy [`SentimentEngine::batching`] applies.
    pub fn batch_policy(&self) -> BatchPolicy {
        self.batch_policy
    }

    /// A micro-batching front end over this engine using the builder's
    /// [`BatchPolicy`]: coalesces same-bucket snapshots so each solver
    /// step amortizes one tokenize pass, one matrix assembly and one
    /// workspace bind. See [`BatchingIngest`].
    pub fn batching(&self) -> BatchingIngest<&SentimentEngine> {
        BatchingIngest::with_policy_unchecked(self, self.batch_policy)
    }

    /// Submits a snapshot for asynchronous processing. Returns as soon as
    /// the snapshot is queued — producers never wait on a solve, only on
    /// queue space once more than `queue_depth` snapshots are pending
    /// (bounded backpressure). Processing failures surface on the next
    /// [`SentimentEngine::flush`].
    pub fn ingest(&self, snapshot: EngineSnapshot) -> Result<(), TgsError> {
        let tx = self.tx.as_ref().ok_or(TgsError::EngineClosed)?;
        // Count before sending: the worker decrements after processing,
        // and a fast worker could otherwise finish (and decrement) before
        // this thread's increment, transiently wrapping the counter.
        self.metrics.queued.fetch_add(1, Ordering::Relaxed);
        tx.send(Command::Ingest(snapshot)).map_err(|_| {
            self.metrics.queued.fetch_sub(1, Ordering::Relaxed);
            TgsError::EngineClosed
        })
    }

    /// Non-blocking variant of [`SentimentEngine::ingest`]: returns
    /// `Ok(false)` — and counts the snapshot in
    /// [`EngineStats::dropped_capacity`] — when the bounded queue is
    /// full, instead of blocking the producer. Load-shedding front ends
    /// use this to keep their latency bounded under backpressure.
    pub fn try_ingest(&self, snapshot: EngineSnapshot) -> Result<bool, TgsError> {
        Ok(self.try_ingest_reusable(snapshot)?.is_none())
    }

    /// Like [`SentimentEngine::try_ingest`], but a full-queue rejection
    /// hands the snapshot back (`Ok(Some(snapshot))`) instead of dropping
    /// it, so a shedding producer can retry or recycle its buffers — the
    /// rejection path neither allocates nor frees. Sheds count in
    /// [`EngineStats::dropped_capacity`] and the histogram's shed bucket.
    pub fn try_ingest_reusable(
        &self,
        snapshot: EngineSnapshot,
    ) -> Result<Option<EngineSnapshot>, TgsError> {
        let tx = self.tx.as_ref().ok_or(TgsError::EngineClosed)?;
        // Same ordering rationale as `ingest`: count first, undo on
        // failure, so the worker's decrement can never observe 0.
        self.metrics.queued.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(Command::Ingest(snapshot)) {
            Ok(()) => Ok(None),
            Err(TrySendError::Full(Command::Ingest(snapshot))) => {
                self.metrics.queued.fetch_sub(1, Ordering::Relaxed);
                self.metrics
                    .dropped_capacity
                    .fetch_add(1, Ordering::Relaxed);
                Ok(Some(snapshot))
            }
            Err(TrySendError::Full(_)) => unreachable!("we sent Command::Ingest"),
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.queued.fetch_sub(1, Ordering::Relaxed);
                Err(TgsError::EngineClosed)
            }
        }
    }

    /// Whether the bounded ingest queue currently has room — the
    /// capacity probe the multi-shard router uses to shed a whole batch
    /// before splitting it (no partial commits). Advisory under
    /// concurrent producers: another thread can take the slot between
    /// the probe and the send.
    pub fn has_capacity(&self) -> bool {
        self.metrics.queued.load(Ordering::Relaxed) < self.shared.queue_depth as u64
    }

    /// Current ingest metrics: queue depth, processed count, snapshots
    /// shed at capacity, and the last snapshot's processing time.
    /// Counters restart at zero on [`SentimentEngine::restore`] — they
    /// describe this process's session, not the stream's history.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            queued: self.metrics.queued.load(Ordering::Relaxed),
            ingested: self.metrics.ingested.load(Ordering::Relaxed),
            dropped_capacity: self.metrics.dropped_capacity.load(Ordering::Relaxed),
            last_step_ns: self.metrics.last_step_ns.load(Ordering::Relaxed),
            step_hist: self.metrics.step_hist(),
            ghost_edges: 0,
            dropped_cross_shard: 0,
            shard_unavailable: 0,
            simd: tgs_linalg::simd_tier_name(),
            threads: tgs_linalg::pool_threads() as u64,
            pinned: tgs_linalg::pinning_enabled(),
            respawns: 0,
            replayed_docs: 0,
            degraded_queries: 0,
        }
    }

    /// Asks this engine's worker thread to pin itself to the
    /// `set_index`-th of `n_sets` disjoint core groups (best effort,
    /// gated on `TGS_PIN`; see
    /// [`tgs_linalg::pin_current_to_core_set`]). Fire-and-forget: the
    /// request rides the command queue and a closed engine ignores it.
    /// Public for fleet transports (shard servers pin within their own
    /// host's core budget); direct users rarely need it.
    pub fn request_core_set(&self, set_index: usize, n_sets: usize) {
        if let Some(tx) = self.tx.as_ref() {
            let _ = tx.try_send(Command::Pin { set_index, n_sets });
        }
    }

    /// Blocks until every queued snapshot has been processed, then
    /// reports the first pending ingest failure (if any) or the number of
    /// snapshots processed so far.
    pub fn flush(&self) -> Result<u64, TgsError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .as_ref()
            .ok_or(TgsError::EngineClosed)?
            .send(Command::Sync(ack_tx))
            .map_err(|_| TgsError::EngineClosed)?;
        ack_rx.recv().map_err(|_| TgsError::EngineClosed)?;
        if let Some((_, e)) = self.state.lock().failures.pop_front() {
            return Err(e);
        }
        Ok(self.solver.lock().steps())
    }

    /// A cloneable read handle over the recorded history.
    pub fn query(&self) -> EngineQuery {
        EngineQuery {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&self.state),
        }
    }

    /// The engine's solver configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.shared.config
    }

    /// The frozen global vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.shared.vocab
    }

    /// Snapshots processed so far (committed, not queued).
    pub fn steps(&self) -> u64 {
        self.solver.lock().steps()
    }

    /// Drains the queue and serializes the whole session — configuration,
    /// vocabulary, solver temporal state, timeline, per-user history and
    /// the factor stores — into a byte-level checkpoint. Fails if a
    /// queued snapshot failed to process (the session must be clean).
    pub fn checkpoint(&self) -> Result<EngineCheckpoint, TgsError> {
        self.flush()?;
        let solver = self.solver.lock();
        let state = self.state.lock();
        Ok(checkpoint::encode(&self.shared, &solver, &state))
    }

    /// Rebuilds a session from a checkpoint. The restored engine answers
    /// every query the original did and produces bit-identical results
    /// for subsequently ingested snapshots.
    pub fn restore(ckpt: &EngineCheckpoint) -> Result<Self, TgsError> {
        let (shared, solver, state) = checkpoint::decode(ckpt)?;
        Ok(Self::start(shared, solver, state))
    }

    /// Like [`SentimentEngine::checkpoint`], but also registers the
    /// result as a *base* for delta checkpointing and returns its mark
    /// id: subsequent [`SentimentEngine::delta_since`] calls against the
    /// id (or any delta's `new_id` derived from it) encode only what
    /// changed. Mark ids are engine-local and not persisted — a restored
    /// engine starts fresh.
    pub fn checkpoint_base(&self) -> Result<(u64, EngineCheckpoint), TgsError> {
        self.flush()?;
        let solver = self.solver.lock();
        let mut state = self.state.lock();
        let ckpt = checkpoint::encode(&self.shared, &solver, &state);
        let id = crate::delta::register_base(&mut state);
        Ok((id, ckpt))
    }

    /// Drains the queue and encodes everything that changed since the
    /// mark `base_id` as a [`crate::CheckpointDelta`], registering the
    /// tip as a new mark (so chains extend delta-by-delta). `Ok(None)`
    /// means the mark cannot serve a delta — unknown, aged out, or
    /// invalidated by a structural rewrite (user migration / absorb) —
    /// and the caller should take a fresh
    /// [`SentimentEngine::checkpoint_base`] instead.
    pub fn delta_since(&self, base_id: u64) -> Result<Option<crate::CheckpointDelta>, TgsError> {
        self.flush()?;
        let solver = self.solver.lock();
        let mut state = self.state.lock();
        crate::delta::encode_delta(&self.shared, &solver, &mut state, base_id)
    }

    /// Folds a delta into its base checkpoint, producing the full
    /// checkpoint of the delta's tip — byte-identical to what the source
    /// engine's [`SentimentEngine::checkpoint`] returned there. Pure:
    /// needs no running engine.
    pub fn apply_delta(
        base: &EngineCheckpoint,
        delta: &crate::CheckpointDelta,
    ) -> Result<EngineCheckpoint, TgsError> {
        crate::delta::apply_delta(base, delta)
    }

    /// Drains the queue and stops the worker. Equivalent to dropping the
    /// engine, but surfaces pending ingest failures instead of discarding
    /// them.
    pub fn shutdown(mut self) -> Result<(), TgsError> {
        let outcome = self.flush();
        self.close();
        outcome.map(|_| ())
    }

    fn close(&mut self) {
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Per-user `(timestamp, distribution)` observation lists keyed by
/// global user id — the queryable half of a migrated user range.
pub(crate) type UserTrackRows = Vec<(usize, Vec<(u64, Vec<f64>)>)>;

/// One worker's per-user state for a contiguous user-id range, removed
/// from its source for a live rebalance: the queryable observation
/// history plus the solver's temporal rows (age-relative, so they
/// re-anchor exactly on a destination with a different step counter).
pub(crate) struct UserRangeState {
    /// Per-user observations, sorted by id.
    track: UserTrackRows,
    /// The solver's migrated per-user temporal state.
    solver: tgs_core::MigratedUsers,
}

/// Live-rebalance surface, driven by the multi-shard router with every
/// affected worker quiesced (flushed) first.
impl SentimentEngine {
    /// Starts a fresh worker sharing this one's frozen configuration
    /// (vocabulary, prior, solver config, pipeline, budgets) with a cold
    /// solver and empty history — the spawn path of a shard split.
    /// Public for fleet transports; meaningless outside a rebalance.
    pub fn spawn_sibling(&self) -> Result<SentimentEngine, TgsError> {
        let shared = EngineShared {
            vocab: self.shared.vocab.clone(),
            sf0: self.shared.sf0.clone(),
            config: self.shared.config.clone(),
            tokenizer: self.shared.tokenizer.clone(),
            weighting: self.shared.weighting,
            queue_depth: self.shared.queue_depth,
        };
        let solver = OnlineSolver::try_new(shared.config.clone())?;
        let state = EngineState::new(self.state.lock().sf_store.budget_bytes());
        Ok(SentimentEngine::start(shared, solver, state))
    }

    /// The solver's current decayed sentiment estimate for a user — the
    /// factor broadcast into ghost rows on other shards. Callers flush
    /// first so the estimate reflects every committed snapshot.
    pub fn user_factor(&self, user: usize) -> Option<Vec<f64>> {
        self.solver.lock().sentiment_of(user)
    }

    /// Removes and returns all per-user state for ids in `lo..hi`.
    /// The caller must have flushed this worker (quiesce) first.
    pub(crate) fn export_user_range(&self, lo: usize, hi: usize) -> UserRangeState {
        let mut st = self.state.lock();
        let mut moving: Vec<usize> = st
            .user_track
            .keys()
            .copied()
            .filter(|&u| u >= lo && u < hi)
            .collect();
        moving.sort_unstable();
        let track = moving
            .into_iter()
            .map(|u| {
                let rows = st.user_track.remove(&u).expect("key just listed");
                (u, rows)
            })
            .collect();
        // A migration rewrites state outside the append-only stream:
        // existing delta marks can no longer describe it.
        st.tracker.bump_epoch();
        let solver = self.solver.lock().export_users(lo, hi);
        UserRangeState { track, solver }
    }

    /// The per-user migration state for ids in `lo..hi`, serialized
    /// through the migration byte codec (see `crate::transport`) — the
    /// form a remote transport ships across the wire. Removes the users
    /// from this worker; the caller must have flushed it first.
    pub fn export_users_bytes(&self, lo: usize, hi: usize) -> Vec<u8> {
        let state = self.export_user_range(lo, hi);
        crate::transport::encode_user_range(&state.track, &state.solver.rows)
    }

    /// The inverse of [`SentimentEngine::export_users_bytes`]: adopts
    /// per-user migration state from the byte codec. On rejection the
    /// payload is untouched (it is only read), so the caller re-imports
    /// the same bytes to the source worker to roll the migration back.
    pub fn import_users_bytes(&self, bytes: &[u8]) -> Result<(), TgsError> {
        let (track, rows) = crate::transport::decode_user_range(bytes)?;
        self.import_user_range(UserRangeState {
            track,
            solver: tgs_core::MigratedUsers { rows },
        })
        .map_err(|(e, _)| e)
    }

    /// Imports per-user state exported from another worker. Rejects
    /// users this worker already tracks (shards are user-disjoint; a
    /// collision means two workers both claim ownership) before touching
    /// any state.
    /// A rejection returns the state untouched, so a failed migration
    /// can restore it to its source worker instead of losing it.
    #[allow(clippy::result_large_err)]
    pub(crate) fn import_user_range(
        &self,
        users: UserRangeState,
    ) -> Result<(), (TgsError, UserRangeState)> {
        let mut st = self.state.lock();
        let collision = users
            .track
            .iter()
            .find(|(user, _)| st.user_track.contains_key(user))
            .map(|(user, _)| *user);
        if let Some(user) = collision {
            return Err((
                TgsError::invalid_argument(format!(
                    "user {user} already tracked here; refusing to merge two \
                     shards' ownership of one user"
                )),
                users,
            ));
        }
        // Same two-owners collision *within* the payload: the contract
        // is strictly-ascending user ids, and a duplicate would silently
        // overwrite on insert.
        let duplicate = users
            .track
            .windows(2)
            .find(|w| w[0].0 >= w[1].0)
            .map(|w| w[1].0);
        if let Some(user) = duplicate {
            return Err((
                TgsError::invalid_argument(format!(
                    "migrated users are not strictly ascending at user {user}"
                )),
                users,
            ));
        }
        let UserRangeState { track, solver } = users;
        if let Err((e, solver)) = self.solver.lock().import_users(solver) {
            return Err((e, UserRangeState { track, solver }));
        }
        for (user, rows) in track {
            st.user_track.insert(user, rows);
        }
        // Same structural-rewrite rule as the export side.
        st.tracker.bump_epoch();
        Ok(())
    }

    /// Folds another (flushed) worker's entire recorded state into this
    /// one — the absorb path of a shard merge. Per-user state moves
    /// wholesale; timeline entries at shared timestamps merge exactly as
    /// the query fan-in would have merged them; `Sf` factors at shared
    /// timestamps merge through the solvers' tweet-count-weighted policy
    /// (`Sp` factors are per-tweet and shard-shaped, so the absorber's
    /// are kept on collision). The other worker's own `Sf` window and
    /// step counter are discarded — the absorber's temporal frame wins.
    /// Public for fleet transports; meaningless outside a shard merge.
    pub fn absorb(&self, other: &SentimentEngine) -> Result<(), TgsError> {
        let moved = other.export_user_range(0, usize::MAX);
        if let Err((e, moved_back)) = self.import_user_range(moved) {
            // Hand the state back to its source (it just exported these
            // users, so re-import cannot collide) and surface the error.
            other.import_user_range(moved_back).map_err(|(e2, _)| e2)?;
            return Err(e);
        }
        let mut ost = other.state.lock();
        let mut st = self.state.lock();
        // Weights for the factor merges: each side's tweet count per
        // timestamp, captured before the timelines fold.
        let my_tweets: std::collections::HashMap<u64, usize> =
            st.timeline.iter().map(|(&t, e)| (t, e.tweets)).collect();
        let other_tweets: std::collections::HashMap<u64, usize> =
            ost.timeline.iter().map(|(&t, e)| (t, e.tweets)).collect();
        for (t, entry) in std::mem::take(&mut ost.timeline) {
            match st.timeline.entry(t) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(entry);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().merge_from(&entry);
                }
            }
        }
        let other_sf_ts: Vec<u64> = ost.sf_store.iter().map(|(t, _)| t).collect();
        for t in other_sf_ts {
            let theirs = ost.sf_store.get(t).expect("timestamp just listed");
            let merged = match st.sf_store.get(t) {
                Some(mine) => {
                    let w_mine = my_tweets.get(&t).copied().unwrap_or(0) as f64;
                    let w_theirs = other_tweets.get(&t).copied().unwrap_or(0) as f64;
                    tgs_core::sharded::merge_sf(&[(w_mine, &mine), (w_theirs, &theirs)])
                        .expect("two parts always merge")
                }
                None => theirs,
            };
            st.sf_store.put(t, &merged);
        }
        let other_sp_ts: Vec<u64> = ost.sp_store.iter().map(|(t, _)| t).collect();
        for t in other_sp_ts {
            if st.sp_store.get(t).is_none() {
                let theirs = ost.sp_store.get(t).expect("timestamp just listed");
                st.sp_store.put(t, &theirs);
            }
        }
        Ok(())
    }
}

impl Drop for SentimentEngine {
    fn drop(&mut self) {
        self.close();
    }
}

/// Reusable per-worker ingest buffers, hoisted across snapshots so the
/// steady-state tokenize/encode path does not allocate a fresh scratch
/// `Vec` per document (the per-document token and id buffers are
/// recycled; only growth beyond previous high-water marks allocates).
#[derive(Default)]
struct IngestScratch {
    /// One document's feature strings (cleared per document).
    tokens: Vec<String>,
    /// Encoded feature ids per document (outer and inner reused).
    encoded: Vec<Vec<usize>>,
    /// Author global id per document.
    doc_users: Vec<usize>,
    /// Sorted, deduplicated global user ids of the snapshot.
    user_ids: Vec<usize>,
    /// Local (dense) author index per document.
    doc_user_local: Vec<usize>,
    /// `(local user, doc)` re-tweet pairs.
    retweet_pairs: Vec<(usize, usize)>,
}

fn worker_loop(
    rx: Receiver<Command>,
    shared: Arc<EngineShared>,
    solver: Arc<Mutex<OnlineSolver>>,
    state: Arc<Mutex<EngineState>>,
    metrics: Arc<EngineMetrics>,
) {
    let mut scratch = IngestScratch::default();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Ingest(snapshot) => {
                let timestamp = snapshot.timestamp;
                let started = Instant::now();
                match process(&shared, &solver, &state, snapshot, &mut scratch) {
                    Ok(()) => {
                        metrics.ingested.fetch_add(1, Ordering::Relaxed);
                        metrics.record_step(
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                    Err(e) => state.lock().failures.push_back((timestamp, e)),
                }
                metrics.queued.fetch_sub(1, Ordering::Relaxed);
            }
            Command::Sync(ack) => {
                let _ = ack.send(());
            }
            Command::Pin { set_index, n_sets } => {
                let _ = tgs_linalg::pin_current_to_core_set(set_index, n_sets);
            }
        }
    }
}

/// Turns one owned snapshot into matrices, steps the solver, and commits
/// the results. Runs on the worker thread.
fn process(
    shared: &EngineShared,
    solver: &Mutex<OnlineSolver>,
    state: &Mutex<EngineState>,
    snapshot: EngineSnapshot,
    scratch: &mut IngestScratch,
) -> Result<(), TgsError> {
    let EngineSnapshot {
        timestamp,
        docs,
        retweets,
        ghosts,
    } = snapshot;
    if docs.is_empty() {
        // Nothing to solve; empty slices do not advance the stream.
        return Ok(());
    }
    // The solver's temporal state (window, per-user history) is
    // append-only: replaying a timestamp would weight that slice twice in
    // the Sfw/Suw aggregates. Reject instead of silently biasing.
    if state.lock().timeline.contains_key(&timestamp) {
        return Err(TgsError::invalid_argument(format!(
            "timestamp {timestamp} already ingested; the stream is append-only"
        )));
    }
    let k = shared.config.k;

    // --- Tokenize + encode in one pass, through the reused scratch ---
    // Raw documents tokenize into one recycled token buffer and encode
    // straight into the per-document id buffers; the intermediate
    // `Vec<Vec<String>>` the seed path materialized is gone entirely.
    let n = docs.len();
    // Grow-only: buffers beyond `n` are kept (high-water reuse), the
    // assembly below reads exactly `..n`.
    if scratch.encoded.len() < n {
        scratch.encoded.resize_with(n, Vec::new);
    }
    scratch.doc_users.clear();
    for (doc, ids) in docs.into_iter().zip(scratch.encoded.iter_mut()) {
        scratch.doc_users.push(doc.user);
        match doc.content {
            DocContent::Raw(text) => {
                tokenize_features_into(&text, &shared.tokenizer, &mut scratch.tokens);
                shared
                    .vocab
                    .encode_into(scratch.tokens.iter().map(String::as_str), ids);
            }
            DocContent::Tokens(tokens) => {
                shared
                    .vocab
                    .encode_into(tokens.iter().map(String::as_str), ids);
            }
        }
    }
    for r in &retweets {
        if r.doc >= n {
            return Err(TgsError::invalid_argument(format!(
                "retweet references document {} but the snapshot has {n}",
                r.doc
            )));
        }
    }

    // --- Local user index (global ids may be sparse) ---
    scratch.user_ids.clear();
    scratch.user_ids.extend(
        scratch
            .doc_users
            .iter()
            .copied()
            .chain(retweets.iter().map(|r| r.user)),
    );
    scratch.user_ids.sort_unstable();
    scratch.user_ids.dedup();
    let user_ids = &scratch.user_ids;
    let local: HashMap<usize, usize> = user_ids.iter().enumerate().map(|(i, &u)| (u, i)).collect();
    let m = user_ids.len();

    // --- Vectorize + assemble through the shared snapshot pipeline ---
    scratch.doc_user_local.clear();
    scratch
        .doc_user_local
        .extend(scratch.doc_users.iter().map(|u| local[u]));
    scratch.retweet_pairs.clear();
    scratch
        .retweet_pairs
        .extend(retweets.iter().map(|r| (local[&r.user], r.doc)));
    let SnapshotMatrices { xp, xu, xr, graph } = assemble_snapshot_matrices(
        &shared.vocab,
        &scratch.encoded[..n],
        &scratch.doc_user_local,
        m,
        &scratch.retweet_pairs,
        shared.weighting,
    );

    // --- Solve ---
    let input = TriInput {
        xp: &xp,
        xu: &xu,
        xr: &xr,
        graph: &graph,
        sf0: &shared.sf0,
    };
    let step = solver
        .lock()
        .try_step_with_ghosts(&SnapshotData { input, user_ids }, &ghosts)?;

    // --- Commit ---
    // Ghost rows belong to another shard: they are excluded from this
    // engine's user aggregates and per-user history (the owning shard
    // commits them), exactly as the solver excluded them from its own.
    let ghost_rows = &step.partition.ghost_rows;
    let mut tweet_counts = vec![0usize; k];
    for &label in &step.tweet_labels() {
        tweet_counts[label] += 1;
    }
    let mut user_counts = vec![0usize; k];
    for (row, &label) in step.user_labels().iter().enumerate() {
        if ghost_rows.binary_search(&row).is_err() {
            user_counts[label] += 1;
        }
    }
    let mut su_dist = step.factors.su.clone();
    su_dist.normalize_rows_l1();
    let entry = TimelineEntry {
        timestamp,
        tweets: n,
        users: m - ghost_rows.len(),
        new_users: step.partition.new_rows.len(),
        evolving_users: step.partition.evolving_rows.len(),
        iterations: step.iterations,
        converged: step.converged,
        objective: step.objective,
        tweet_counts,
        user_counts,
    };
    let mut st = state.lock();
    st.timeline.insert(timestamp, entry);
    let mut touched = Vec::with_capacity(user_ids.len() - ghost_rows.len());
    for (row, &user) in user_ids.iter().enumerate() {
        if ghost_rows.binary_search(&row).is_ok() {
            continue;
        }
        // Timestamps are unique (checked above), so plain appends; the
        // queries sort / max-filter, so out-of-order ingest is fine.
        st.user_track
            .entry(user)
            .or_default()
            .push((timestamp, su_dist.row(row).to_vec()));
        touched.push(user);
    }
    st.sf_store.put(timestamp, &step.factors.sf);
    st.sp_store.put(timestamp, &step.factors.sp);
    st.tracker.record_commit(timestamp, touched);
    Ok(())
}

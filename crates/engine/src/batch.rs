//! Micro-batched ingest: coalesce many small snapshots into one step.
//!
//! The paper's online algorithm assumes one snapshot per time step, but a
//! firehose front end produces a stream of tiny payloads — and every tiny
//! snapshot pays a full tokenize pass, matrix assembly, workspace bind
//! and solver step. [`BatchingIngest`] sits in front of an engine and
//! folds same-bucket snapshots into one pending [`EngineSnapshot`]
//! (documents concatenate, re-tweet indices shift — see
//! [`EngineSnapshot::merge`]), so each solver step amortizes those fixed
//! costs over the whole batch. Because the pending batch *is* the
//! pre-concatenated snapshot, a batched step is bit-identical to
//! ingesting that snapshot directly — no approximation is introduced,
//! only the time-bucket granularity changes.
//!
//! Flushes happen when the stream moves to a new bucket, when the batch
//! reaches [`BatchPolicy::max_docs`], when it has been pending longer
//! than [`BatchPolicy::max_delay`] (checked on every submit and on
//! [`BatchingIngest::tick`] — there is no timer thread), or explicitly.

use std::time::{Duration, Instant};

use tgs_core::TgsError;

use crate::engine::SentimentEngine;
use crate::sharded::ShardedEngine;
use crate::snapshot::EngineSnapshot;

/// When a pending batch is handed to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Timestamps are floored to multiples of this width; snapshots in
    /// the same bucket coalesce into one step stamped by the bucket
    /// floor. Width 1 (the default) coalesces only snapshots that share
    /// a timestamp exactly.
    pub bucket_width: u64,
    /// Flush as soon as the pending batch holds at least this many
    /// documents — bounds per-step latency and memory under bursts.
    pub max_docs: usize,
    /// Flush a batch that has been pending at least this long, checked
    /// on the next [`BatchingIngest::submit`] or
    /// [`BatchingIngest::tick`] — bounds staleness on a quiet stream.
    pub max_delay: Option<Duration>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            bucket_width: 1,
            max_docs: 1024,
            max_delay: None,
        }
    }
}

impl BatchPolicy {
    /// The default policy: coalesce exact-timestamp duplicates only.
    pub fn same_timestamp() -> Self {
        Self::default()
    }

    /// Rejects degenerate knobs (zero bucket width, zero-size batches,
    /// zero deadline) with a message naming the offender.
    pub fn validate(&self) -> Result<(), TgsError> {
        if self.bucket_width == 0 {
            return Err(TgsError::invalid_argument(
                "batch bucket_width must be >= 1 (timestamps are floored to bucket multiples)",
            ));
        }
        if self.max_docs == 0 {
            return Err(TgsError::invalid_argument(
                "batch max_docs must be >= 1 (a zero-document flush threshold never admits work)",
            ));
        }
        if self.max_delay.is_some_and(|d| d.is_zero()) {
            return Err(TgsError::invalid_argument(
                "batch max_delay must be > 0 (use None to disable the deadline)",
            ));
        }
        Ok(())
    }

    /// The bucket floor `timestamp` belongs to.
    pub fn bucket_of(&self, timestamp: u64) -> u64 {
        timestamp - timestamp % self.bucket_width
    }
}

/// Where a coalesced batch goes. Implemented by [`SentimentEngine`]
/// (single worker) and [`ShardedEngine`] (the batch routes per-shard, so
/// the whole fleet amortizes binds), plus references to either — the
/// seam that lets flush-policy tests capture batches without an engine.
pub trait IngestSink {
    /// Non-blocking submit of one assembled batch. `Ok(None)` means
    /// accepted; `Ok(Some(batch))` hands the batch back on a full queue
    /// (shed) so the caller keeps ownership of the data.
    fn try_submit(&self, batch: EngineSnapshot) -> Result<Option<EngineSnapshot>, TgsError>;
}

impl IngestSink for SentimentEngine {
    fn try_submit(&self, batch: EngineSnapshot) -> Result<Option<EngineSnapshot>, TgsError> {
        self.try_ingest_reusable(batch)
    }
}

impl IngestSink for ShardedEngine {
    fn try_submit(&self, batch: EngineSnapshot) -> Result<Option<EngineSnapshot>, TgsError> {
        self.try_ingest(batch)
    }
}

impl<T: IngestSink + ?Sized> IngestSink for &T {
    fn try_submit(&self, batch: EngineSnapshot) -> Result<Option<EngineSnapshot>, TgsError> {
        (**self).try_submit(batch)
    }
}

/// The pending batch: the coalesced snapshot plus when it opened.
struct Pending {
    batch: EngineSnapshot,
    opened: Instant,
    snapshots: u64,
}

/// A micro-batching front end over an [`IngestSink`].
///
/// Single-producer by design (`submit` takes `&mut self`): one batcher
/// per producer thread, each feeding the shared engine. Callers must
/// [`BatchingIngest::flush`] before flushing/checkpointing the engine —
/// the batcher holds data the engine has not seen, and there is no timer
/// thread to push it (deadlines fire on the next `submit`/`tick`).
pub struct BatchingIngest<S: IngestSink> {
    sink: S,
    policy: BatchPolicy,
    pending: Option<Pending>,
    batches_flushed: u64,
    snapshots_coalesced: u64,
    docs_flushed: u64,
    batches_shed: u64,
}

impl<S: IngestSink> BatchingIngest<S> {
    /// A batcher over `sink` with a validated `policy`.
    pub fn new(sink: S, policy: BatchPolicy) -> Result<Self, TgsError> {
        policy.validate()?;
        Ok(Self::with_policy_unchecked(sink, policy))
    }

    /// Internal constructor for policies already validated (the engine
    /// builders validate at fit time).
    pub(crate) fn with_policy_unchecked(sink: S, policy: BatchPolicy) -> Self {
        Self {
            sink,
            policy,
            pending: None,
            batches_flushed: 0,
            snapshots_coalesced: 0,
            docs_flushed: 0,
            batches_shed: 0,
        }
    }

    /// Folds one micro-snapshot into the pending batch, flushing first
    /// when the snapshot opens a new bucket and afterwards when the
    /// size or deadline policy trips. `Ok(None)` means everything is
    /// either pending or accepted by the sink; `Ok(Some(batch))` returns
    /// a batch the sink shed (full queue) — the caller decides whether
    /// to retry it or drop it.
    ///
    /// Empty snapshots are ignored (the engine skips them without
    /// advancing the stream). Snapshots carrying ghost seeds are
    /// rejected: ghosts are router-injected during fan-out, after
    /// batching, and folding producer-supplied seeds across buckets
    /// would change their meaning.
    pub fn submit(&mut self, snapshot: EngineSnapshot) -> Result<Option<EngineSnapshot>, TgsError> {
        if snapshot.is_empty() {
            return Ok(None);
        }
        if !snapshot.ghosts.is_empty() {
            return Err(TgsError::invalid_argument(
                "batched snapshots must not carry ghost seeds; the shard router injects \
                 ghosts after batching",
            ));
        }
        let bucket = self.policy.bucket_of(snapshot.timestamp);
        let mut shed = None;
        if self
            .pending
            .as_ref()
            .is_some_and(|p| p.batch.timestamp != bucket)
        {
            shed = self.flush()?;
        }
        match self.pending.as_mut() {
            Some(p) => {
                p.batch.merge(snapshot);
                p.snapshots += 1;
            }
            None => {
                let mut batch = snapshot;
                batch.timestamp = bucket;
                self.pending = Some(Pending {
                    batch,
                    opened: Instant::now(),
                    snapshots: 1,
                });
            }
        }
        if shed.is_some() {
            // The bucket-change flush shed its batch. The one return
            // slot is taken: running the size/deadline valve now could
            // shed the *new* batch too and silently overwrite this one.
            // Leave the new bucket pending — the valve re-fires on the
            // next submit/tick/flush, and no document is ever dropped.
            return Ok(shed);
        }
        let full = self
            .pending
            .as_ref()
            .is_some_and(|p| p.batch.len() >= self.policy.max_docs);
        if full || self.deadline_expired() {
            shed = self.flush()?;
        }
        Ok(shed)
    }

    /// Flushes the pending batch if its deadline has expired — the hook
    /// for producers that poll between bursts. `Ok(None)` when nothing
    /// was due or the sink accepted; `Ok(Some(batch))` on a shed.
    pub fn tick(&mut self) -> Result<Option<EngineSnapshot>, TgsError> {
        if self.deadline_expired() {
            self.flush()
        } else {
            Ok(None)
        }
    }

    /// Hands the pending batch to the sink regardless of policy.
    /// `Ok(None)` when nothing was pending or the sink accepted;
    /// `Ok(Some(batch))` returns a shed batch to the caller.
    pub fn flush(&mut self) -> Result<Option<EngineSnapshot>, TgsError> {
        let Some(p) = self.pending.take() else {
            return Ok(None);
        };
        let (docs, snapshots) = (p.batch.len() as u64, p.snapshots);
        match self.sink.try_submit(p.batch)? {
            None => {
                self.batches_flushed += 1;
                self.snapshots_coalesced += snapshots;
                self.docs_flushed += docs;
                Ok(None)
            }
            Some(batch) => {
                self.batches_shed += 1;
                Ok(Some(batch))
            }
        }
    }

    fn deadline_expired(&self) -> bool {
        match (self.policy.max_delay, self.pending.as_ref()) {
            (Some(d), Some(p)) => p.opened.elapsed() >= d,
            _ => false,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Documents currently pending (not yet handed to the sink).
    pub fn pending_docs(&self) -> usize {
        self.pending.as_ref().map_or(0, |p| p.batch.len())
    }

    /// The pending batch's bucket timestamp, if one is open.
    pub fn pending_timestamp(&self) -> Option<u64> {
        self.pending.as_ref().map(|p| p.batch.timestamp)
    }

    /// Batches the sink accepted.
    pub fn batches_flushed(&self) -> u64 {
        self.batches_flushed
    }

    /// Micro-snapshots folded into accepted batches.
    pub fn snapshots_coalesced(&self) -> u64 {
        self.snapshots_coalesced
    }

    /// Documents delivered through accepted batches.
    pub fn docs_flushed(&self) -> u64 {
        self.docs_flushed
    }

    /// Batches the sink shed (returned to the caller).
    pub fn batches_shed(&self) -> u64 {
        self.batches_shed
    }

    /// Consumes the batcher, returning the sink and any pending batch
    /// (which the sink has not seen).
    pub fn into_parts(self) -> (S, Option<EngineSnapshot>) {
        (self.sink, self.pending.map(|p| p.batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A sink that records every batch and sheds on demand.
    #[derive(Default)]
    struct Capture {
        batches: RefCell<Vec<EngineSnapshot>>,
        shed_next: RefCell<bool>,
    }

    impl IngestSink for Capture {
        fn try_submit(&self, batch: EngineSnapshot) -> Result<Option<EngineSnapshot>, TgsError> {
            if std::mem::take(&mut *self.shed_next.borrow_mut()) {
                return Ok(Some(batch));
            }
            self.batches.borrow_mut().push(batch);
            Ok(None)
        }
    }

    fn snap(ts: u64, users: &[usize]) -> EngineSnapshot {
        let mut s = EngineSnapshot::new(ts);
        for &u in users {
            s.push_tokens(u, vec!["w".into()]);
        }
        s
    }

    #[test]
    fn policy_rejects_degenerate_knobs() {
        assert!(BatchPolicy::default().validate().is_ok());
        let bad = BatchPolicy {
            bucket_width: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = BatchPolicy {
            max_docs: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = BatchPolicy {
            max_delay: Some(Duration::ZERO),
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn bucket_change_flushes_the_previous_batch() {
        let sink = Capture::default();
        let policy = BatchPolicy {
            bucket_width: 4,
            ..Default::default()
        };
        let mut b = BatchingIngest::new(&sink, policy).unwrap();
        b.submit(snap(0, &[1])).unwrap();
        b.submit(snap(3, &[2])).unwrap(); // same bucket [0, 4)
        assert_eq!(b.pending_docs(), 2);
        assert_eq!(b.pending_timestamp(), Some(0));
        b.submit(snap(4, &[3])).unwrap(); // new bucket -> previous flushes
        let got = sink.batches.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].timestamp, 0);
        assert_eq!(got[0].len(), 2);
        drop(got);
        assert_eq!(b.pending_timestamp(), Some(4));
        b.flush().unwrap();
        assert_eq!(b.batches_flushed(), 2);
        assert_eq!(b.snapshots_coalesced(), 3);
        assert_eq!(b.docs_flushed(), 3);
    }

    #[test]
    fn size_threshold_flushes_immediately() {
        let sink = Capture::default();
        let policy = BatchPolicy {
            max_docs: 3,
            ..Default::default()
        };
        let mut b = BatchingIngest::new(&sink, policy).unwrap();
        b.submit(snap(5, &[1, 2])).unwrap();
        assert_eq!(sink.batches.borrow().len(), 0);
        b.submit(snap(5, &[3])).unwrap(); // reaches max_docs
        assert_eq!(sink.batches.borrow().len(), 1);
        assert_eq!(sink.batches.borrow()[0].len(), 3);
        assert_eq!(b.pending_docs(), 0);
    }

    #[test]
    fn deadline_flushes_on_tick() {
        let sink = Capture::default();
        let policy = BatchPolicy {
            max_delay: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let mut b = BatchingIngest::new(&sink, policy).unwrap();
        b.submit(snap(9, &[1])).unwrap();
        assert_eq!(sink.batches.borrow().len(), 0);
        std::thread::sleep(Duration::from_millis(5));
        b.tick().unwrap();
        assert_eq!(sink.batches.borrow().len(), 1);
        assert_eq!(b.pending_docs(), 0);
        // An empty batcher ticks without flushing anything.
        b.tick().unwrap();
        assert_eq!(sink.batches.borrow().len(), 1);
    }

    #[test]
    fn shed_batches_come_back_to_the_caller() {
        let sink = Capture::default();
        let mut b = BatchingIngest::new(&sink, BatchPolicy::default()).unwrap();
        b.submit(snap(1, &[1, 2])).unwrap();
        *sink.shed_next.borrow_mut() = true;
        let shed = b.flush().unwrap().expect("sink shed the batch");
        assert_eq!(shed.len(), 2);
        assert_eq!(b.batches_shed(), 1);
        assert_eq!(b.batches_flushed(), 0);
        // The caller can hand it straight back in.
        assert!(b.sink.try_submit(shed).unwrap().is_none());
        assert_eq!(sink.batches.borrow().len(), 1);
    }

    #[test]
    fn retweet_indices_shift_across_merges() {
        let sink = Capture::default();
        let mut b = BatchingIngest::new(&sink, BatchPolicy::default()).unwrap();
        let mut first = snap(2, &[1, 2]);
        first.push_retweet(7, 1);
        let mut second = snap(2, &[3]);
        second.push_retweet(8, 0);
        b.submit(first).unwrap();
        b.submit(second).unwrap();
        b.flush().unwrap();
        let got = sink.batches.borrow();
        assert_eq!(got[0].retweets.len(), 2);
        assert_eq!(got[0].retweets[0].doc, 1);
        assert_eq!(got[0].retweets[1].doc, 2, "index shifted by prior docs");
    }

    #[test]
    fn ghost_seeds_and_empties_are_policed() {
        let sink = Capture::default();
        let mut b = BatchingIngest::new(&sink, BatchPolicy::default()).unwrap();
        assert!(b.submit(EngineSnapshot::new(3)).unwrap().is_none());
        assert_eq!(b.pending_docs(), 0, "empty snapshots are ignored");
        let mut ghosted = snap(3, &[1]);
        ghosted.ghosts.push((9, vec![0.5, 0.5]));
        assert!(b.submit(ghosted).is_err());
    }
}

//! An in-process fault seam for the [`ShardTransport`] surface.
//!
//! [`FlakyShard`] decorates any transport with a switchable outage:
//! while [`FlakyShard::set_down`] holds it down, every call answers a
//! typed [`TgsError::Net`] — exactly what a dead TCP peer surfaces —
//! without sockets, servers, or timing. Degraded-query and supervision
//! tests flip the switch mid-scenario to prove the router's partial
//! fan-out and recovery paths against a deterministic failure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tgs_core::TgsError;
use tgs_linalg::DenseMatrix;

use crate::engine::EngineStats;
use crate::query::{ClusterSummary, TimelineEntry, UserSentiment};
use crate::snapshot::EngineSnapshot;
use crate::transport::ShardTransport;

/// A [`ShardTransport`] decorator that can simulate a dead peer on
/// demand (see the module docs).
pub struct FlakyShard {
    inner: Arc<dyn ShardTransport>,
    down: AtomicBool,
    /// Calls rejected while down — lets tests assert the outage was
    /// actually exercised.
    rejected: AtomicU64,
}

impl FlakyShard {
    /// Wraps `inner`, initially healthy.
    pub fn new(inner: Arc<dyn ShardTransport>) -> Arc<Self> {
        Arc::new(Self {
            inner,
            down: AtomicBool::new(false),
            rejected: AtomicU64::new(0),
        })
    }

    /// Switches the simulated outage on or off.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Relaxed);
    }

    /// Whether the shard is currently simulating an outage.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }

    /// Calls rejected while down so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// `Ok(())` when healthy; the typed outage error when down.
    fn check(&self) -> Result<(), TgsError> {
        if self.down.load(Ordering::Relaxed) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            Err(TgsError::net(self.peer(), "simulated outage (FlakyShard)"))
        } else {
            Ok(())
        }
    }
}

impl ShardTransport for FlakyShard {
    fn ingest(&self, generation: u64, snapshot: EngineSnapshot) -> Result<(), TgsError> {
        self.check()?;
        self.inner.ingest(generation, snapshot)
    }

    fn timeline(&self, generation: u64, lo: u64, hi: u64) -> Result<Vec<TimelineEntry>, TgsError> {
        self.check()?;
        self.inner.timeline(generation, lo, hi)
    }

    fn latest_timestamp(&self, generation: u64) -> Result<Option<u64>, TgsError> {
        self.check()?;
        self.inner.latest_timestamp(generation)
    }

    fn user_sentiment(
        &self,
        generation: u64,
        user: usize,
        at: u64,
    ) -> Result<UserSentiment, TgsError> {
        self.check()?;
        self.inner.user_sentiment(generation, user, at)
    }

    fn user_timeline(
        &self,
        generation: u64,
        user: usize,
    ) -> Result<Vec<(u64, Vec<f64>)>, TgsError> {
        self.check()?;
        self.inner.user_timeline(generation, user)
    }

    fn known_users(&self, generation: u64) -> Result<usize, TgsError> {
        self.check()?;
        self.inner.known_users(generation)
    }

    fn cluster_summary(&self, generation: u64, t: u64) -> Result<ClusterSummary, TgsError> {
        self.check()?;
        self.inner.cluster_summary(generation, t)
    }

    fn sf_at(&self, generation: u64, t: u64) -> Result<DenseMatrix, TgsError> {
        self.check()?;
        self.inner.sf_at(generation, t)
    }

    fn flush(&self) -> Result<u64, TgsError> {
        self.check()?;
        self.inner.flush()
    }

    fn stats(&self) -> Result<EngineStats, TgsError> {
        self.check()?;
        self.inner.stats()
    }

    fn queue_has_room(&self) -> Result<bool, TgsError> {
        self.check()?;
        self.inner.queue_has_room()
    }

    fn timestamps(&self) -> Result<Vec<u64>, TgsError> {
        self.check()?;
        self.inner.timestamps()
    }

    fn k(&self) -> Result<usize, TgsError> {
        self.check()?;
        self.inner.k()
    }

    fn vocab_tokens(&self) -> Result<Vec<String>, TgsError> {
        self.check()?;
        self.inner.vocab_tokens()
    }

    fn user_factor(&self, user: usize) -> Result<Option<Vec<f64>>, TgsError> {
        self.check()?;
        self.inner.user_factor(user)
    }

    fn checkpoint_section(&self) -> Result<Vec<u8>, TgsError> {
        self.check()?;
        self.inner.checkpoint_section()
    }

    fn checkpoint_base(&self) -> Result<(u64, Vec<u8>), TgsError> {
        self.check()?;
        self.inner.checkpoint_base()
    }

    fn delta_since(&self, base_id: u64) -> Result<Option<Vec<u8>>, TgsError> {
        self.check()?;
        self.inner.delta_since(base_id)
    }

    fn export_users(&self, lo: usize, hi: usize) -> Result<Vec<u8>, TgsError> {
        self.check()?;
        self.inner.export_users(lo, hi)
    }

    fn import_users(&self, users: &[u8]) -> Result<(), TgsError> {
        self.check()?;
        self.inner.import_users(users)
    }

    fn spawn_sibling(&self) -> Result<Arc<dyn ShardTransport>, TgsError> {
        self.check()?;
        // The sibling is a fresh worker: it gets its own (healthy)
        // switch rather than inheriting this one's outage state.
        Ok(FlakyShard::new(self.inner.spawn_sibling()?) as Arc<dyn ShardTransport>)
    }

    fn absorb_section(&self, section: &[u8]) -> Result<(), TgsError> {
        self.check()?;
        self.inner.absorb_section(section)
    }

    fn set_generation(&self, generation: u64) -> Result<(), TgsError> {
        self.check()?;
        self.inner.set_generation(generation)
    }

    fn request_core_set(&self, set_index: usize, n_sets: usize) {
        self.inner.request_core_set(set_index, n_sets);
    }

    fn shutdown(&self) -> Result<(), TgsError> {
        // Teardown proceeds even mid-outage: a real dead peer's slot is
        // released server-side when it restarts, and tests must be able
        // to drop a fleet without first healing every shard.
        self.inner.shutdown()
    }

    fn peer(&self) -> String {
        format!("flaky:{}", self.inner.peer())
    }
}

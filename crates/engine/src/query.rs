//! The read side: a cheap, cloneable handle over the engine's recorded
//! history.
//!
//! An [`EngineQuery`] can be cloned and moved to other threads; it shares
//! the engine's state behind a mutex, so queries observe every snapshot
//! the worker has committed (call [`flush`] first for read-your-writes
//! over snapshots still in the ingest queue).
//!
//! [`flush`]: crate::SentimentEngine::flush

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

use parking_lot::Mutex;
use tgs_core::TgsError;

use crate::engine::{EngineShared, EngineState};

/// Aggregate results of one processed snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// The snapshot's timestamp.
    pub timestamp: u64,
    /// Documents in the snapshot.
    pub tweets: usize,
    /// Distinct users in the snapshot.
    pub users: usize,
    /// Users never seen before (within the window).
    pub new_users: usize,
    /// Users with in-window history.
    pub evolving_users: usize,
    /// Solver iterations spent on the snapshot.
    pub iterations: usize,
    /// Whether the solver met its tolerance.
    pub converged: bool,
    /// Final objective value (Eq. 19).
    pub objective: f64,
    /// Tweets assigned to each sentiment cluster.
    pub tweet_counts: Vec<usize>,
    /// Users assigned to each sentiment cluster.
    pub user_counts: Vec<usize>,
}

impl TimelineEntry {
    /// Folds another shard's entry for the *same timestamp* into this
    /// one: aggregates sum, `iterations` is the slowest shard's,
    /// `converged` requires every shard to have converged. Shared by the
    /// multi-shard query fan-in and the shard-merge absorb path, so the
    /// two can never disagree.
    pub(crate) fn merge_from(&mut self, other: &TimelineEntry) {
        self.tweets += other.tweets;
        self.users += other.users;
        self.new_users += other.new_users;
        self.evolving_users += other.evolving_users;
        // The slowest shard gates the step; convergence means *every*
        // shard converged; objectives are additive across disjoint
        // shards.
        self.iterations = self.iterations.max(other.iterations);
        self.converged &= other.converged;
        self.objective += other.objective;
        for (x, y) in self.tweet_counts.iter_mut().zip(&other.tweet_counts) {
            *x += y;
        }
        for (x, y) in self.user_counts.iter_mut().zip(&other.user_counts) {
            *x += y;
        }
    }

    /// Per-cluster tweet share in `[0, 1]` (all zeros for an empty
    /// snapshot).
    pub fn tweet_shares(&self) -> Vec<f64> {
        let total = self.tweet_counts.iter().sum::<usize>().max(1) as f64;
        self.tweet_counts
            .iter()
            .map(|&c| c as f64 / total)
            .collect()
    }
}

/// A user's recorded sentiment at (or before) a queried time.
#[derive(Debug, Clone, PartialEq)]
pub struct UserSentiment {
    /// The queried global user id.
    pub user: usize,
    /// Timestamp of the observation actually answering the query (the
    /// newest one at or before `at`).
    pub timestamp: u64,
    /// L1-normalized class distribution (the `Su` row, "likelihood of the
    /// user's sentiment in class j", §2).
    pub distribution: Vec<f64>,
}

impl UserSentiment {
    /// Hard label: argmax of the distribution.
    pub fn label(&self) -> usize {
        self.distribution
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Per-cluster composition of one snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// The snapshot's timestamp.
    pub timestamp: u64,
    /// Tweets per cluster.
    pub tweet_counts: Vec<usize>,
    /// Users per cluster.
    pub user_counts: Vec<usize>,
    /// Tweet share per cluster in `[0, 1]`.
    pub tweet_shares: Vec<f64>,
}

/// Read handle over a [`crate::SentimentEngine`]'s history.
#[derive(Clone)]
pub struct EngineQuery {
    pub(crate) shared: Arc<EngineShared>,
    pub(crate) state: Arc<Mutex<EngineState>>,
}

impl EngineQuery {
    /// Number of sentiment clusters.
    pub fn k(&self) -> usize {
        self.shared.config.k
    }

    /// Timeline entries whose timestamp falls in `range`, ascending.
    ///
    /// `query.timeline(..)` returns the full history;
    /// `query.timeline(3..=7)` a closed slice of it. An empty or
    /// inverted range yields an empty vector (never a panic).
    pub fn timeline<R: RangeBounds<u64>>(&self, range: R) -> Vec<TimelineEntry> {
        // Normalize to inclusive bounds up front: `BTreeMap::range`
        // panics on start > end, which user-supplied ranges (e.g. the
        // CLI's `--timeline 5..3`) must not reach.
        let lo = match range.start_bound() {
            Bound::Unbounded => 0,
            Bound::Included(&t) => t,
            Bound::Excluded(&t) => match t.checked_add(1) {
                Some(v) => v,
                None => return Vec::new(),
            },
        };
        let hi = match range.end_bound() {
            Bound::Unbounded => u64::MAX,
            Bound::Included(&t) => t,
            Bound::Excluded(&t) => match t.checked_sub(1) {
                Some(v) => v,
                None => return Vec::new(),
            },
        };
        if lo > hi {
            return Vec::new();
        }
        let state = self.state.lock();
        state
            .timeline
            .range(lo..=hi)
            .map(|(_, e)| e.clone())
            .collect()
    }

    /// The most recent timeline entry, if any snapshot has been
    /// processed.
    pub fn latest(&self) -> Option<TimelineEntry> {
        let state = self.state.lock();
        state.timeline.values().next_back().cloned()
    }

    /// Every committed snapshot timestamp, ascending — the keys of
    /// [`EngineQuery::timeline`] without cloning the entries (the
    /// multi-shard router unions these to count distinct steps).
    pub fn timestamps(&self) -> Vec<u64> {
        let state = self.state.lock();
        state.timeline.keys().copied().collect()
    }

    /// The user's sentiment as of time `at`: the newest recorded
    /// observation with `timestamp <= at`. [`TgsError::UnknownUser`] when
    /// the user has no observation at or before `at`.
    pub fn user_sentiment(&self, user: usize, at: u64) -> Result<UserSentiment, TgsError> {
        let state = self.state.lock();
        let track = state
            .user_track
            .get(&user)
            .ok_or(TgsError::UnknownUser { user })?;
        track
            .iter()
            .filter(|(t, _)| *t <= at)
            .max_by_key(|(t, _)| *t)
            .map(|(t, dist)| UserSentiment {
                user,
                timestamp: *t,
                distribution: dist.clone(),
            })
            .ok_or(TgsError::UnknownUser { user })
    }

    /// Every recorded `(timestamp, distribution)` observation for the
    /// user, ascending by timestamp.
    pub fn user_timeline(&self, user: usize) -> Result<Vec<(u64, Vec<f64>)>, TgsError> {
        let state = self.state.lock();
        let track = state
            .user_track
            .get(&user)
            .ok_or(TgsError::UnknownUser { user })?;
        let mut out = track.clone();
        out.sort_by_key(|(t, _)| *t);
        Ok(out)
    }

    /// Number of users with any recorded history.
    pub fn known_users(&self) -> usize {
        self.state.lock().user_track.len()
    }

    /// Per-cluster composition of the snapshot at exactly timestamp `t`.
    pub fn cluster_summary(&self, t: u64) -> Result<ClusterSummary, TgsError> {
        let state = self.state.lock();
        let entry = state
            .timeline
            .get(&t)
            .ok_or(TgsError::SnapshotUnavailable { timestamp: t })?;
        Ok(ClusterSummary {
            timestamp: t,
            tweet_counts: entry.tweet_counts.clone(),
            user_counts: entry.user_counts.clone(),
            tweet_shares: entry.tweet_shares(),
        })
    }

    /// The recorded word–sentiment factor `Sf` (`l × k`) of the snapshot
    /// at exactly timestamp `t`. Fails with
    /// [`TgsError::SnapshotUnavailable`] when the snapshot was never
    /// ingested or its factors were evicted from the bounded store. The
    /// multi-shard router merges these across shards before ranking.
    pub fn sf_at(&self, t: u64) -> Result<tgs_linalg::DenseMatrix, TgsError> {
        let state = self.state.lock();
        state
            .sf_store
            .get(t)
            .ok_or(TgsError::SnapshotUnavailable { timestamp: t })
    }

    /// The `topk` highest-weight vocabulary features of each cluster's
    /// `Sf` column at timestamp `t` (ties break by feature id for
    /// determinism). Fails with [`TgsError::SnapshotUnavailable`] when the
    /// snapshot was never ingested or its factors were evicted from the
    /// bounded store.
    pub fn top_words(&self, t: u64, topk: usize) -> Result<Vec<Vec<(String, f64)>>, TgsError> {
        let sf = self.sf_at(t)?;
        Ok(rank_top_words(&sf, &self.shared.vocab, topk))
    }
}

/// Ranks each `Sf` column's features: highest weight first, ties broken
/// by feature id for determinism. Shared by the single-engine and
/// multi-shard query paths.
pub(crate) fn rank_top_words(
    sf: &tgs_linalg::DenseMatrix,
    vocab: &tgs_text::Vocabulary,
    topk: usize,
) -> Vec<Vec<(String, f64)>> {
    let k = sf.cols();
    let mut out = Vec::with_capacity(k);
    for j in 0..k {
        let mut scored: Vec<(usize, f64)> = (0..sf.rows()).map(|f| (f, sf.get(f, j))).collect();
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out.push(
            scored
                .into_iter()
                .take(topk)
                .map(|(f, w)| (vocab.token(f).to_string(), w))
                .collect(),
        );
    }
    out
}

//! Builder-style construction and validation of a [`SentimentEngine`].

use tgs_core::{OfflineConfig, OnlineConfig, OnlineSolver, TgsError};
use tgs_data::{Corpus, PartitionMap};
use tgs_linalg::DenseMatrix;
use tgs_text::{PipelineConfig, Vocabulary};

use crate::batch::BatchPolicy;
use crate::engine::{EngineShared, EngineState, SentimentEngine};
use crate::sharded::ShardedEngine;

/// Default bound of the ingest queue (snapshots).
pub const DEFAULT_QUEUE_DEPTH: usize = 8;
/// Default byte budget of each per-snapshot factor store (64 MiB).
pub const DEFAULT_STORE_BUDGET_BYTES: usize = 64 << 20;

/// Builds a [`SentimentEngine`], wrapping [`OnlineConfig`] (and
/// optionally [`OfflineConfig`]) with validation at `fit` time: every
/// parameter is checked against its documented domain and violations are
/// reported as [`TgsError::InvalidConfig`] instead of a panic.
///
/// ```
/// use tgs_engine::EngineBuilder;
/// use tgs_data::{generate, presets};
///
/// let corpus = generate(&presets::tiny(42));
/// let engine = EngineBuilder::new()
///     .k(3)
///     .gamma(0.2)
///     .max_iters(10)
///     .fit(&corpus)
///     .expect("valid configuration");
/// assert_eq!(engine.config().k, 3);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    config: OnlineConfig,
    pipeline: PipelineConfig,
    queue_depth: usize,
    store_budget_bytes: usize,
    ghost_users: bool,
    batch: BatchPolicy,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self {
            config: OnlineConfig::default(),
            pipeline: PipelineConfig::paper_defaults(),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            store_budget_bytes: DEFAULT_STORE_BUDGET_BYTES,
            ghost_users: false,
            batch: BatchPolicy::default(),
        }
    }
}

impl EngineBuilder {
    /// A builder with the paper's online defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the whole online configuration.
    pub fn online(mut self, config: OnlineConfig) -> Self {
        self.config = config;
        self
    }

    /// Seeds the shared solver parameters (`k`, `α`, `β`, iteration cap,
    /// tolerance, seed, init) from an offline configuration, keeping the
    /// online-only temporal knobs (`γ`, `τ`, window) at their current
    /// values.
    pub fn offline_defaults(mut self, offline: &OfflineConfig) -> Self {
        self.config.k = offline.k;
        self.config.alpha = offline.alpha;
        self.config.beta = offline.beta;
        self.config.max_iters = offline.max_iters;
        self.config.tol = offline.tol;
        self.config.seed = offline.seed;
        self.config.init = offline.init;
        self.config.track_objective = offline.track_objective;
        self
    }

    /// Number of sentiment clusters `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Temporal feature-regularization weight `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Graph-regularization weight `β`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.config.beta = beta;
        self
    }

    /// Temporal user-regularization weight `γ`.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.config.gamma = gamma;
        self
    }

    /// Window decay factor `τ`.
    pub fn tau(mut self, tau: f64) -> Self {
        self.config.tau = tau;
        self
    }

    /// Window size `w`.
    pub fn window(mut self, window: usize) -> Self {
        self.config.window = window;
        self
    }

    /// Per-snapshot iteration cap.
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.config.max_iters = max_iters;
        self
    }

    /// Relative objective-change tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.config.tol = tol;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Text pipeline settings (tokenizer, vocabulary, weighting, lexicon
    /// confidence).
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Bound of the ingest queue, in snapshots. Producers block only once
    /// this many snapshots are pending.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Byte budget of each per-snapshot factor store (`Sf` and `Sp`
    /// each); oldest snapshots are evicted beyond it.
    pub fn store_budget_bytes(mut self, bytes: usize) -> Self {
        self.store_budget_bytes = bytes;
        self
    }

    /// Enables the ghost-user protocol on [`EngineBuilder::fit_sharded`]
    /// fleets: cross-shard re-tweet edges are kept on their document's
    /// shard (the remote user materializes as a ghost row carrying their
    /// current sentiment factor) instead of being dropped. Off by
    /// default, matching the original drop-and-count behaviour.
    pub fn ghost_users(mut self, on: bool) -> Self {
        self.ghost_users = on;
        self
    }

    /// Replaces the whole micro-batching policy for the engine's
    /// [`SentimentEngine::batching`] / [`ShardedEngine::batching`] front
    /// end (see [`BatchPolicy`]). Validated at fit time.
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// Batching time-bucket width: snapshot timestamps are floored to
    /// multiples of this value and same-bucket snapshots coalesce into
    /// one solver step. Width 1 (default) coalesces exact-timestamp
    /// duplicates only.
    pub fn batch_bucket_width(mut self, width: u64) -> Self {
        self.batch.bucket_width = width;
        self
    }

    /// Flush-on-size threshold: a pending batch flushes as soon as it
    /// holds this many documents.
    pub fn batch_max_docs(mut self, max_docs: usize) -> Self {
        self.batch.max_docs = max_docs;
        self
    }

    /// Flush-on-deadline: a pending batch flushes once it has been open
    /// this long (checked on the next submit or tick — there is no timer
    /// thread).
    pub fn batch_max_delay(mut self, delay: std::time::Duration) -> Self {
        self.batch.max_delay = Some(delay);
        self
    }

    fn try_validate(&self) -> Result<(), TgsError> {
        self.config.try_validate()?;
        self.batch.validate()?;
        if self.queue_depth == 0 {
            return Err(TgsError::InvalidConfig {
                field: "queue_depth",
                message: "queue_depth must be >= 1".into(),
            });
        }
        if self.store_budget_bytes == 0 {
            return Err(TgsError::InvalidConfig {
                field: "store_budget_bytes",
                message: "store_budget_bytes must be positive".into(),
            });
        }
        Ok(())
    }

    /// Fits the global vocabulary and lexicon prior on `corpus`.
    fn fit_globals(&self, corpus: &Corpus) -> Result<(Vocabulary, DenseMatrix), TgsError> {
        let vocab = Vocabulary::build(
            corpus
                .tweets
                .iter()
                .map(|t| t.tokens.iter().map(String::as_str)),
            &self.pipeline.vocab,
        );
        if vocab.is_empty() {
            return Err(TgsError::invalid_argument(
                "corpus yields an empty vocabulary under the configured filters",
            ));
        }
        let sf0 =
            corpus
                .lexicon
                .prior_matrix(&vocab, self.config.k, self.pipeline.lexicon_confidence);
        Ok((vocab, sf0))
    }

    /// Fits the global vocabulary and lexicon prior on `corpus` and
    /// starts the engine. The corpus fixes the feature axis — snapshots
    /// ingested later are encoded against this vocabulary, so factor
    /// matrices align across time.
    pub fn fit(self, corpus: &Corpus) -> Result<SentimentEngine, TgsError> {
        self.try_validate()?;
        let (vocab, sf0) = self.fit_globals(corpus)?;
        self.start(vocab, sf0)
    }

    /// Fits the global vocabulary/prior once and starts a
    /// [`ShardedEngine`]: `shards` identically-configured
    /// [`SentimentEngine`] workers behind a user-range router partitioned
    /// over this corpus's user-id universe. With `shards = 1` the fleet
    /// is a single worker receiving byte-identical snapshots — the
    /// tested identity with [`EngineBuilder::fit`].
    pub fn fit_sharded(self, corpus: &Corpus, shards: usize) -> Result<ShardedEngine, TgsError> {
        if shards == 0 {
            return Err(TgsError::InvalidConfig {
                field: "shards",
                message: "need at least one shard".into(),
            });
        }
        self.try_validate()?;
        let ghost_users = self.ghost_users;
        let (vocab, sf0) = self.fit_globals(corpus)?;
        let batch = self.batch;
        let workers = (0..shards)
            .map(|_| self.clone().start(vocab.clone(), sf0.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let mut fleet = ShardedEngine::start(
            PartitionMap::even(corpus.num_users(), shards),
            workers,
            ghost_users,
        );
        fleet.set_batch_policy(batch);
        Ok(fleet)
    }

    /// Starts the engine from an already-fitted vocabulary and `l × k`
    /// lexicon prior (e.g. shipped with a deployed model).
    pub fn with_vocabulary(
        self,
        vocab: Vocabulary,
        sf0: DenseMatrix,
    ) -> Result<SentimentEngine, TgsError> {
        self.try_validate()?;
        self.start(vocab, sf0)
    }

    fn start(self, vocab: Vocabulary, sf0: DenseMatrix) -> Result<SentimentEngine, TgsError> {
        let expected = (vocab.len(), self.config.k);
        if sf0.shape() != expected {
            return Err(TgsError::PriorShapeMismatch {
                expected,
                got: sf0.shape(),
            });
        }
        let solver = OnlineSolver::try_new(self.config.clone())?;
        let shared = EngineShared {
            vocab,
            sf0,
            config: self.config,
            tokenizer: self.pipeline.tokenizer,
            weighting: self.pipeline.weighting,
            queue_depth: self.queue_depth,
        };
        let state = EngineState::new(self.store_budget_bytes);
        let mut engine = SentimentEngine::start(shared, solver, state);
        engine.set_batch_policy(self.batch);
        Ok(engine)
    }
}

//! Fixed-bucket log2 latency histogram — the step-latency surface behind
//! [`crate::EngineStats`].
//!
//! A histogram because a single `last_step_ns` gauge cannot answer the
//! question a soak run asks ("what did the *slow* steps look like?"), and
//! log2 buckets because they cover nanoseconds-to-minutes in a fixed,
//! mergeable 40-slot array: shard aggregation is an element-wise sum, and
//! quantiles are a cumulative walk with at most 2× relative error —
//! plenty for p50/p99/p999 monitoring.

/// Number of power-of-two buckets. Bucket `i` counts samples whose
/// nanosecond value `v` satisfies `2^i <= v < 2^(i+1)` (bucket 0 also
/// takes `v = 0`), so the last bucket's ceiling is `2^40 - 1` ns ≈ 18
/// minutes — anything slower clamps into it.
pub const HIST_BUCKETS: usize = 40;

/// A point-in-time latency histogram plus a `shed` counter for work that
/// never reached the solver (snapshots rejected by a full queue — they
/// have no latency to record, but a load test must still see them).
///
/// `[u64; 40]` has no `Default` impl (the standard library only provides
/// one up to length 32), hence the manual implementations below —
/// `EngineStats` keeps its plain `Default` derive through them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    shed: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            shed: 0,
        }
    }

    /// Rebuilds a histogram from raw parts (the wire codec's decode
    /// path). `buckets` shorter than [`HIST_BUCKETS`] zero-fill the tail;
    /// longer inputs clamp their excess into the last bucket so counts
    /// are never silently lost across a bucket-width revision.
    pub fn from_parts(buckets: &[u64], shed: u64) -> Self {
        let mut h = Self::new();
        for (i, &b) in buckets.iter().enumerate() {
            h.buckets[i.min(HIST_BUCKETS - 1)] += b;
        }
        h.shed = shed;
        h
    }

    /// The bucket index a nanosecond sample lands in.
    pub fn bucket_index(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// The inclusive upper bound (in nanoseconds) of bucket `i` — what
    /// the quantile accessors report.
    pub fn bucket_ceiling(i: usize) -> u64 {
        (1u64 << (i.min(HIST_BUCKETS - 1) + 1)) - 1
    }

    /// Records one step-latency sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
    }

    /// Records `n` snapshots shed before reaching the solver.
    pub fn add_shed(&mut self, n: u64) {
        self.shed += n;
    }

    /// The raw per-bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Total recorded samples (sheds excluded — they never ran).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Snapshots shed before reaching the solver (full-queue rejections).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The latency (bucket ceiling, ns) below which a fraction `q` of
    /// samples fall. Returns 0 on an empty histogram; `q` outside
    /// `[0, 1]` clamps.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Self::bucket_ceiling(i);
            }
        }
        Self::bucket_ceiling(HIST_BUCKETS - 1)
    }

    /// Like [`LatencyHistogram::quantile`], but distinguishes "no
    /// samples yet" (`None`) from a genuine sub-2ns quantile — printers
    /// should show "n/a" rather than a fabricated 0ns latency.
    pub fn quantile_opt(&self, q: f64) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.quantile(q))
        }
    }

    /// Median step latency (ns, bucket ceiling).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile step latency (ns, bucket ceiling).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile step latency (ns, bucket ceiling).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Element-wise accumulation: buckets and sheds sum — the multi-shard
    /// merge (a fleet histogram is exactly the union of its shards'
    /// samples).
    pub fn merge(&self, other: &LatencyHistogram) -> LatencyHistogram {
        let mut out = *self;
        for (b, o) in out.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        out.shed += other.shed;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_with_zero_clamped() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(1 << 39), HIST_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let mut h = LatencyHistogram::new();
        for _ in 0..98 {
            h.record(1_000); // bucket 9, ceiling 1023
        }
        h.record(1 << 20); // bucket 20
        h.record(1 << 30); // bucket 30
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), LatencyHistogram::bucket_ceiling(9));
        assert_eq!(h.p99(), LatencyHistogram::bucket_ceiling(20));
        assert_eq!(h.p999(), LatencyHistogram::bucket_ceiling(30));
        assert_eq!(h.quantile(1.0), LatencyHistogram::bucket_ceiling(30));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.shed(), 0);
        // The optional accessor makes "no samples" explicit instead of
        // conflating it with a measured 0ns quantile.
        assert_eq!(h.quantile_opt(0.5), None);
        assert_eq!(h.quantile_opt(0.999), None);
        let mut one = LatencyHistogram::new();
        one.record(1_000);
        assert_eq!(
            one.quantile_opt(0.5),
            Some(LatencyHistogram::bucket_ceiling(9))
        );
    }

    #[test]
    fn merge_sums_buckets_and_sheds() {
        let mut a = LatencyHistogram::new();
        a.record(10);
        a.add_shed(2);
        let mut b = LatencyHistogram::new();
        b.record(10);
        b.record(1 << 25);
        b.add_shed(1);
        let m = a.merge(&b);
        assert_eq!(m.count(), 3);
        assert_eq!(m.shed(), 3);
        assert_eq!(m.buckets()[LatencyHistogram::bucket_index(10)], 2);
    }

    #[test]
    fn from_parts_clamps_and_zero_fills() {
        let short = LatencyHistogram::from_parts(&[1, 2], 7);
        assert_eq!(short.buckets()[0], 1);
        assert_eq!(short.buckets()[1], 2);
        assert_eq!(short.count(), 3);
        assert_eq!(short.shed(), 7);
        let long = LatencyHistogram::from_parts(&vec![1; HIST_BUCKETS + 3], 0);
        assert_eq!(long.count(), (HIST_BUCKETS + 3) as u64);
        assert_eq!(long.buckets()[HIST_BUCKETS - 1], 4);
    }
}

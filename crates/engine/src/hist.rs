//! Fixed-bucket log-linear latency histogram — the step-latency surface
//! behind [`crate::EngineStats`].
//!
//! A histogram because a single `last_step_ns` gauge cannot answer the
//! question a soak run asks ("what did the *slow* steps look like?").
//! Log-linear (HdrHistogram-style) rather than plain log2 buckets: each
//! power-of-two octave is split into `SUB_COUNT` equal sub-buckets, so
//! the quantile walk's relative error drops from 2× to 1/8 = 12.5%.
//! Plain log2 buckets saturated in practice — every soak configuration
//! reported the identical p50/p99 ceilings because whole milliseconds
//! of spread landed in one bucket. The array stays fixed-size and
//! mergeable: shard aggregation is still an element-wise sum.

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` linear
/// slices.
const SUB_BITS: u32 = 3;

/// Sub-buckets per octave (8): the quantile ceiling is at most 12.5%
/// above the true sample value.
const SUB_COUNT: usize = 1 << SUB_BITS;

/// Octaves covered above the linear range, matching the old log2
/// layout's span: the top bucket's ceiling stays `2^40 - 1` ns ≈ 18
/// minutes, anything slower clamps into it.
const OCTAVES: usize = 40 - SUB_BITS as usize;

/// Total bucket count: values below `2^SUB_BITS` get one exact (width-1)
/// bucket each, then `OCTAVES` octaves × `SUB_COUNT` sub-buckets.
pub const HIST_BUCKETS: usize = SUB_COUNT + OCTAVES * SUB_COUNT;

/// A point-in-time latency histogram plus a `shed` counter for work that
/// never reached the solver (snapshots rejected by a full queue — they
/// have no latency to record, but a load test must still see them).
///
/// `[u64; HIST_BUCKETS]` has no `Default` impl (the standard library
/// only provides one up to length 32), hence the manual implementations
/// below — `EngineStats` keeps its plain `Default` derive through them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    shed: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            shed: 0,
        }
    }

    /// Rebuilds a histogram from raw parts (the wire codec's decode
    /// path). `buckets` shorter than [`HIST_BUCKETS`] zero-fill the tail;
    /// longer inputs clamp their excess into the last bucket so counts
    /// are never silently lost across a bucket-width revision.
    pub fn from_parts(buckets: &[u64], shed: u64) -> Self {
        let mut h = Self::new();
        for (i, &b) in buckets.iter().enumerate() {
            h.buckets[i.min(HIST_BUCKETS - 1)] += b;
        }
        h.shed = shed;
        h
    }

    /// The bucket index a nanosecond sample lands in: exact below
    /// `SUB_COUNT`, then octave `o = floor(log2 ns)` sliced into
    /// `SUB_COUNT` equal sub-buckets by the bits just under the
    /// leading one.
    pub fn bucket_index(ns: u64) -> usize {
        if ns < SUB_COUNT as u64 {
            return ns as usize;
        }
        let o = 63 - ns.leading_zeros() as usize;
        let g = o - SUB_BITS as usize;
        if g >= OCTAVES {
            return HIST_BUCKETS - 1;
        }
        let sub = (ns >> g) as usize - SUB_COUNT;
        SUB_COUNT + g * SUB_COUNT + sub
    }

    /// The inclusive upper bound (in nanoseconds) of bucket `i` — what
    /// the quantile accessors report.
    pub fn bucket_ceiling(i: usize) -> u64 {
        let i = i.min(HIST_BUCKETS - 1);
        if i < SUB_COUNT {
            return i as u64;
        }
        let g = (i - SUB_COUNT) / SUB_COUNT;
        let sub = (i - SUB_COUNT) % SUB_COUNT;
        (((SUB_COUNT + sub + 1) as u64) << g) - 1
    }

    /// Records one step-latency sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
    }

    /// Records `n` snapshots shed before reaching the solver.
    pub fn add_shed(&mut self, n: u64) {
        self.shed += n;
    }

    /// The raw per-bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Total recorded samples (sheds excluded — they never ran).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Snapshots shed before reaching the solver (full-queue rejections).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The latency (bucket ceiling, ns) below which a fraction `q` of
    /// samples fall. Returns 0 on an empty histogram; `q` outside
    /// `[0, 1]` clamps.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Self::bucket_ceiling(i);
            }
        }
        Self::bucket_ceiling(HIST_BUCKETS - 1)
    }

    /// Like [`LatencyHistogram::quantile`], but distinguishes "no
    /// samples yet" (`None`) from a genuine sub-2ns quantile — printers
    /// should show "n/a" rather than a fabricated 0ns latency.
    pub fn quantile_opt(&self, q: f64) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.quantile(q))
        }
    }

    /// Median step latency (ns, bucket ceiling).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile step latency (ns, bucket ceiling).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile step latency (ns, bucket ceiling).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Element-wise accumulation: buckets and sheds sum — the multi-shard
    /// merge (a fleet histogram is exactly the union of its shards'
    /// samples).
    pub fn merge(&self, other: &LatencyHistogram) -> LatencyHistogram {
        let mut out = *self;
        for (b, o) in out.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        out.shed += other.shed;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_below_the_linear_cutoff() {
        for ns in 0..SUB_COUNT as u64 {
            assert_eq!(LatencyHistogram::bucket_index(ns), ns as usize);
            assert_eq!(LatencyHistogram::bucket_ceiling(ns as usize), ns);
        }
        // First log-linear bucket: exactly [8, 8].
        assert_eq!(LatencyHistogram::bucket_index(8), SUB_COUNT);
        assert_eq!(LatencyHistogram::bucket_ceiling(SUB_COUNT), 8);
        // Top of the covered range and beyond clamp into the last bucket.
        assert_eq!(
            LatencyHistogram::bucket_index((1 << 40) - 1),
            HIST_BUCKETS - 1
        );
        assert_eq!(LatencyHistogram::bucket_index(1 << 40), HIST_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(
            LatencyHistogram::bucket_ceiling(HIST_BUCKETS - 1),
            (1 << 40) - 1
        );
    }

    #[test]
    fn sub_buckets_bound_the_ceiling_error_to_an_eighth() {
        // The saturation the log2 layout had: milliseconds of spread in
        // one bucket. Log-linear keeps every reported ceiling within
        // 12.5% of the true sample.
        for &ns in &[
            9u64,
            100,
            1_000,
            65_000,
            1_000_000,
            2_100_000,
            3_900_000,
            8_300_000,
            123_456_789,
        ] {
            let ceiling = LatencyHistogram::bucket_ceiling(LatencyHistogram::bucket_index(ns));
            assert!(ceiling >= ns, "ceiling {ceiling} below sample {ns}");
            assert!(
                (ceiling as f64) < ns as f64 * (1.0 + 1.0 / SUB_COUNT as f64),
                "ceiling {ceiling} more than 12.5% above sample {ns}"
            );
        }
        // Same octave, different sub-buckets: 2.1ms and 3.9ms no longer
        // report the identical quantile ceiling.
        let a = LatencyHistogram::bucket_index(2_100_000);
        let b = LatencyHistogram::bucket_index(3_900_000);
        assert_ne!(a, b);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let ceil = |ns| LatencyHistogram::bucket_ceiling(LatencyHistogram::bucket_index(ns));
        let mut h = LatencyHistogram::new();
        for _ in 0..98 {
            h.record(1_000); // ceiling 1023
        }
        h.record(1 << 20);
        h.record(1 << 30);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), ceil(1_000));
        assert_eq!(h.p50(), 1023);
        assert_eq!(h.p99(), ceil(1 << 20));
        assert_eq!(h.p999(), ceil(1 << 30));
        assert_eq!(h.quantile(1.0), ceil(1 << 30));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.shed(), 0);
        // The optional accessor makes "no samples" explicit instead of
        // conflating it with a measured 0ns quantile.
        assert_eq!(h.quantile_opt(0.5), None);
        assert_eq!(h.quantile_opt(0.999), None);
        let mut one = LatencyHistogram::new();
        one.record(1_000);
        assert_eq!(one.quantile_opt(0.5), Some(1023));
    }

    #[test]
    fn merge_sums_buckets_and_sheds() {
        let mut a = LatencyHistogram::new();
        a.record(10);
        a.add_shed(2);
        let mut b = LatencyHistogram::new();
        b.record(10);
        b.record(1 << 25);
        b.add_shed(1);
        let m = a.merge(&b);
        assert_eq!(m.count(), 3);
        assert_eq!(m.shed(), 3);
        assert_eq!(m.buckets()[LatencyHistogram::bucket_index(10)], 2);
    }

    #[test]
    fn from_parts_clamps_and_zero_fills() {
        let short = LatencyHistogram::from_parts(&[1, 2], 7);
        assert_eq!(short.buckets()[0], 1);
        assert_eq!(short.buckets()[1], 2);
        assert_eq!(short.count(), 3);
        assert_eq!(short.shed(), 7);
        let long = LatencyHistogram::from_parts(&vec![1; HIST_BUCKETS + 3], 0);
        assert_eq!(long.count(), (HIST_BUCKETS + 3) as u64);
        assert_eq!(long.buckets()[HIST_BUCKETS - 1], 4);
    }
}

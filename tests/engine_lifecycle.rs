//! Engine lifecycle integration test: ingest N synthetic daily
//! snapshots, query the timeline, checkpoint, restore into a fresh
//! engine, and assert identical subsequent results — determinism across
//! restore, through the full facade (tokenization, vectorization,
//! solver, history, stores).

use tripartite_sentiment::prelude::*;

fn corpus() -> Corpus {
    generate(&GeneratorConfig {
        num_users: 24,
        total_tweets: 220,
        num_days: 10,
        ..Default::default()
    })
}

fn engine_over(corpus: &Corpus) -> SentimentEngine {
    EngineBuilder::new()
        .k(3)
        .max_iters(12)
        .seed(42)
        .fit(corpus)
        .expect("valid configuration")
}

fn ingest(engine: &SentimentEngine, corpus: &Corpus, windows: &[(u32, u32)]) {
    for &(lo, hi) in windows {
        engine
            .ingest(EngineSnapshot::from_corpus_window(corpus, lo, hi))
            .expect("engine accepts snapshots");
    }
    engine.flush().expect("all snapshots process cleanly");
}

#[test]
fn lifecycle_ingest_query_checkpoint_restore_determinism() {
    let c = corpus();
    let windows = day_windows(c.num_days, 1);
    assert!(windows.len() >= 8, "need a real stream to exercise history");
    let (head, tail) = windows.split_at(windows.len() / 2);

    // --- Phase 1: ingest the first half and query the timeline ---
    let engine = engine_over(&c);
    ingest(&engine, &c, head);
    let query = engine.query();
    let timeline = query.timeline(..);
    assert_eq!(timeline.len() as u64, engine.steps());
    assert!(!timeline.is_empty());
    let head_tweets: usize = timeline.iter().map(|e| e.tweets).sum();
    let expected: usize = head
        .iter()
        .map(|&(lo, hi)| c.tweets_in_days(lo, hi).len())
        .sum();
    assert_eq!(
        head_tweets, expected,
        "timeline must account for every tweet"
    );
    for entry in &timeline {
        assert_eq!(entry.tweet_counts.iter().sum::<usize>(), entry.tweets);
        assert_eq!(entry.user_counts.iter().sum::<usize>(), entry.users);
    }

    // --- Phase 2: checkpoint and restore into a fresh engine ---
    let ckpt = engine.checkpoint().expect("clean session checkpoints");
    let restored = SentimentEngine::restore(&ckpt).expect("checkpoint restores");
    assert_eq!(restored.steps(), engine.steps());
    assert_eq!(restored.query().timeline(..), timeline);
    let last_head_t = timeline.last().unwrap().timestamp;
    assert_eq!(
        restored.query().top_words(last_head_t, 6).unwrap(),
        query.top_words(last_head_t, 6).unwrap(),
        "restored factor stores must answer identically"
    );

    // --- Phase 3: feed both engines the same subsequent snapshots ---
    ingest(&engine, &c, tail);
    ingest(&restored, &c, tail);
    let a = engine.query().timeline(..);
    let b = restored.query().timeline(..);
    assert_eq!(
        a, b,
        "post-restore solves must be bit-identical (objective, counts, partitions)"
    );

    // Per-user history agrees user by user, observation by observation.
    let last_t = a.last().unwrap().timestamp;
    for user in 0..c.num_users() {
        let ua = engine.query().user_sentiment(user, last_t);
        let ub = restored.query().user_sentiment(user, last_t);
        match (ua, ub) {
            (Ok(sa), Ok(sb)) => assert_eq!(sa, sb, "user {user} diverged"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("user {user}: one engine knows them, the other not ({a:?} vs {b:?})"),
        }
    }
    assert_eq!(
        engine.query().top_words(last_t, 8).unwrap(),
        restored.query().top_words(last_t, 8).unwrap()
    );

    // --- Phase 4: a second checkpoint cycle keeps the guarantee ---
    let ckpt2 = restored.checkpoint().expect("restored session checkpoints");
    let restored2 = SentimentEngine::restore(&ckpt2).expect("second restore");
    assert_eq!(restored2.query().timeline(..), b);
}

#[test]
fn compacted_checkpoint_preserves_queries_for_retained_timestamps() {
    // Checkpoint compaction: budget-evicted factor snapshots are never
    // serialized (and the Sf window references store entries instead of
    // duplicating them). With a starving store budget the stream evicts
    // its early factors; the restored session must answer *retained*
    // timestamps identically and fail evicted ones identically.
    let c = corpus();
    let engine = EngineBuilder::new()
        .k(3)
        .max_iters(12)
        .seed(42)
        .store_budget_bytes(24_000) // a few l × k matrices at tiny-corpus vocab size
        .fit(&c)
        .expect("valid configuration");
    ingest(&engine, &c, &day_windows(c.num_days, 1));
    let query = engine.query();
    let timeline = query.timeline(..);
    let (mut evicted, mut retained) = (Vec::new(), Vec::new());
    for entry in &timeline {
        match query.top_words(entry.timestamp, 3) {
            Ok(_) => retained.push(entry.timestamp),
            Err(TgsError::SnapshotUnavailable { .. }) => evicted.push(entry.timestamp),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        !evicted.is_empty() && !retained.is_empty(),
        "budget must split the stream into evicted + retained \
         ({evicted:?} / {retained:?})"
    );

    let ckpt = engine.checkpoint().expect("compacted checkpoint");
    let restored = SentimentEngine::restore(&ckpt).expect("restores");
    let rq = restored.query();
    // The aggregate history survives in full…
    assert_eq!(rq.timeline(..), timeline);
    // …retained timestamps answer identically…
    for &t in &retained {
        assert_eq!(
            rq.top_words(t, 5).unwrap(),
            query.top_words(t, 5).unwrap(),
            "retained t = {t}"
        );
    }
    // …and evicted ones fail identically (they were never serialized).
    for &t in &evicted {
        assert!(matches!(
            rq.top_words(t, 5),
            Err(TgsError::SnapshotUnavailable { .. })
        ));
    }
    // Subsequent solves stay bit-identical despite the compaction.
    let mut snap = EngineSnapshot::from_corpus_window(&c, 0, c.num_days);
    snap.timestamp = 1000;
    engine.ingest(snap.clone()).unwrap();
    restored.ingest(snap).unwrap();
    engine.flush().unwrap();
    restored.flush().unwrap();
    assert_eq!(restored.query().timeline(..), engine.query().timeline(..));
}

#[test]
fn checkpoint_bytes_roundtrip_through_storage() {
    // Simulate persistence: serialize to raw bytes (as `tgs stream
    // --checkpoint` writes to disk) and rebuild from the byte copy.
    let c = corpus();
    let engine = engine_over(&c);
    ingest(&engine, &c, &day_windows(c.num_days, 2));
    let ckpt = engine.checkpoint().unwrap();
    let stored: Vec<u8> = ckpt.as_bytes().to_vec();
    let reloaded = SentimentEngine::restore(&EngineCheckpoint::from_bytes(stored)).unwrap();
    assert_eq!(reloaded.query().timeline(..), engine.query().timeline(..));
    assert_eq!(reloaded.config().k, 3);
    assert_eq!(reloaded.vocabulary().len(), engine.vocabulary().len());
}

//! Integration: baselines and the core solver on the same corpus — the
//! qualitative ordering the paper's Tables 4–5 rely on.

use tripartite_sentiment::prelude::*;

fn pipe() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 2;
    cfg
}

fn polar_eval(pred: &[usize], truth: &[usize]) -> f64 {
    let polar: Vec<usize> = (0..truth.len())
        .filter(|&i| truth[i] != Sentiment::Neutral.index())
        .collect();
    let p: Vec<usize> = polar.iter().map(|&i| pred[i]).collect();
    let t: Vec<usize> = polar.iter().map(|&i| truth[i]).collect();
    clustering_accuracy(&p, &t)
}

#[test]
fn supervised_beats_majority_and_tri_beats_chance() {
    let corpus = generate(&presets::prop30_small(41));
    let inst = build_offline(&corpus, 3, &pipe());
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };

    let nb = NaiveBayes::train(&inst.encoded, &inst.tweet_labels, inst.vocab.len(), 3, 1.0);
    let nb_acc = polar_eval(&nb.predict_all(&inst.encoded), &inst.tweet_truth);

    let svm = LinearSvm::train(&inst.xp, &inst.tweet_labels, 3, &SvmConfig::default());
    let svm_acc = polar_eval(&svm.predict_all(&inst.xp), &inst.tweet_truth);

    let majority = {
        let pred = vec![0usize; inst.tweet_truth.len()];
        polar_eval(&pred, &inst.tweet_truth)
    };

    let tri = solve_offline(&input, &OfflineConfig::default());
    let tri_acc = polar_eval(&tri.tweet_labels(), &inst.tweet_truth);

    assert!(
        nb_acc > majority + 0.05,
        "NB {nb_acc} vs majority {majority}"
    );
    assert!(
        svm_acc > majority + 0.05,
        "SVM {svm_acc} vs majority {majority}"
    );
    assert!(
        tri_acc > majority + 0.03,
        "tri {tri_acc} vs majority {majority}"
    );
    // Supervised with full labels should not lose to unsupervised.
    assert!(nb_acc + 0.02 > tri_acc, "NB {nb_acc} vs tri {tri_acc}");
}

#[test]
fn tri_clustering_beats_text_only_essa_on_average() {
    // The tri-clustering framework uses users + the social graph on top
    // of ESSA's text + lexicon. Averaged over seeds it should win.
    let mut tri_total = 0.0;
    let mut essa_total = 0.0;
    for seed in [1u64, 2, 3] {
        let corpus = generate(&presets::prop30_small(seed));
        let inst = build_offline(&corpus, 3, &pipe());
        let input = TriInput {
            xp: &inst.xp,
            xu: &inst.xu,
            xr: &inst.xr,
            graph: &inst.graph,
            sf0: &inst.sf0,
        };
        let tri = solve_offline(&input, &OfflineConfig::default());
        tri_total += polar_eval(&tri.tweet_labels(), &inst.tweet_truth);
        let essa = solve_essa(
            &inst.xp,
            &inst.sf0,
            None,
            &EssaConfig {
                k: 3,
                ..Default::default()
            },
        );
        essa_total += polar_eval(&essa.tweet_labels(), &inst.tweet_truth);
    }
    assert!(
        tri_total > essa_total - 0.03,
        "tri {tri_total:.3} should be at least competitive with ESSA {essa_total:.3} (sum over 3 seeds)"
    );
}

#[test]
fn label_propagation_improves_with_more_labels() {
    let corpus = generate(&presets::prop30_small(43));
    let inst = build_offline(&corpus, 3, &pipe());
    let graph = tripartite_sentiment::baselines::knn_feature_graph(&inst.xp, 10, 0.05);
    let lp = |fraction: f64| {
        let seeds = subsample_labels(&inst.tweet_labels, fraction);
        let pred = propagate_labels(&graph, &seeds, 3, &LabelPropConfig::default());
        polar_eval(&pred, &inst.tweet_truth)
    };
    let lp5 = lp(0.05);
    let lp40 = lp(0.40);
    assert!(
        lp40 >= lp5 - 0.02,
        "more seeds should not hurt label propagation: 5% = {lp5}, 40% = {lp40}"
    );
}

#[test]
fn userreg_aggregation_is_biased_against_quiet_users() {
    // The paper's motivation: estimating users by aggregating tweets is
    // biased for users with few tweets. Check UserReg's user accuracy on
    // quiet users lags its accuracy on active users.
    let corpus = generate(&presets::prop30_small(47));
    let inst = build_offline(&corpus, 3, &pipe());
    let doc_user: Vec<usize> = corpus.tweets.iter().map(|t| t.author).collect();
    let labels = subsample_labels(&inst.tweet_labels, 0.10);
    let result = userreg(
        &inst.encoded,
        &labels,
        &doc_user,
        inst.vocab.len(),
        &inst.graph,
        &UserRegConfig::default(),
    );
    let mut tweet_counts = vec![0usize; corpus.num_users()];
    for &u in &doc_user {
        tweet_counts[u] += 1;
    }
    let acc_of = |want_active: bool| {
        let idx: Vec<usize> = (0..corpus.num_users())
            .filter(|&u| (tweet_counts[u] >= 5) == want_active)
            .collect();
        if idx.is_empty() {
            return 1.0;
        }
        let p: Vec<usize> = idx.iter().map(|&u| result.user_labels[u]).collect();
        let t: Vec<usize> = idx.iter().map(|&u| inst.user_truth[u]).collect();
        clustering_accuracy(&p, &t)
    };
    let active = acc_of(true);
    let quiet = acc_of(false);
    assert!(
        active >= quiet - 0.05,
        "aggregation should work better for active users: active {active}, quiet {quiet}"
    );
}

#[test]
fn bacg_uses_graph_structure() {
    let corpus = generate(&presets::prop30_small(53));
    let inst = build_offline(&corpus, 3, &pipe());
    let result = solve_bacg(
        &inst.xu,
        &inst.graph,
        &BacgConfig {
            k: 3,
            ..Default::default()
        },
    );
    let acc = clustering_accuracy(&result.user_labels(), &inst.user_truth);
    assert!(acc > 0.5, "BACG user accuracy {acc}");
}

//! Integration: the full offline pipeline across all crates —
//! generator → text/graph substrates → core solver → eval.

use tripartite_sentiment::prelude::*;

fn pipe() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 2;
    cfg
}

fn polar_subset(truth: &[usize]) -> Vec<usize> {
    (0..truth.len())
        .filter(|&i| truth[i] != Sentiment::Neutral.index())
        .collect()
}

#[test]
fn full_offline_pipeline_recovers_sentiment() {
    let corpus = generate(&presets::prop30_small(11));
    let inst = build_offline(&corpus, 3, &pipe());
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let result = solve_offline(&input, &OfflineConfig::default());
    assert!(
        result.factors.all_nonnegative(),
        "factors must stay non-negative"
    );

    let polar = polar_subset(&inst.tweet_truth);
    let pred: Vec<usize> = polar.iter().map(|&i| result.tweet_labels()[i]).collect();
    let truth: Vec<usize> = polar.iter().map(|&i| inst.tweet_truth[i]).collect();
    let t_acc = clustering_accuracy(&pred, &truth);
    assert!(t_acc > 0.75, "polar tweet accuracy {t_acc}");

    let u_acc = clustering_accuracy(&result.user_labels(), &inst.user_truth);
    assert!(u_acc > 0.6, "user accuracy {u_acc}");
}

#[test]
fn offline_objective_monotone_on_real_pipeline() {
    let corpus = generate(&presets::tiny(3));
    let inst = build_offline(&corpus, 3, &pipe());
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let cfg = OfflineConfig {
        max_iters: 50,
        tol: 0.0,
        track_objective: true,
        ..Default::default()
    };
    let result = solve_offline(&input, &cfg);
    assert_eq!(
        result.history.len(),
        51,
        "initial value + one per iteration"
    );
    // The updates are proven non-increasing for the *Lagrangian* (raw
    // objective + orthogonality pressure); the raw Eq. 1 value may rise
    // transiently while components trade off (the paper's Fig. 8 makes
    // the same observation). Allow ≤1% transients, require a clear
    // overall decrease.
    for (i, w) in result.history.windows(2).enumerate() {
        assert!(
            w[1].total() <= w[0].total() * 1.01,
            "iteration {i}: objective jumped {} -> {}",
            w[0].total(),
            w[1].total()
        );
    }
    let first = result.history.first().unwrap().total();
    let last = result.history.last().unwrap().total();
    assert!(
        last < first * 0.9,
        "objective should clearly decrease: {first} -> {last}"
    );
}

#[test]
fn regularizers_change_the_solution() {
    let corpus = generate(&presets::tiny(5));
    let inst = build_offline(&corpus, 3, &pipe());
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let base = solve_offline(
        &input,
        &OfflineConfig {
            alpha: 0.0,
            beta: 0.0,
            max_iters: 40,
            ..Default::default()
        },
    );
    let reg = solve_offline(
        &input,
        &OfflineConfig {
            alpha: 0.5,
            beta: 0.9,
            max_iters: 40,
            ..Default::default()
        },
    );
    assert!(
        base.factors.su.max_abs_diff(&reg.factors.su) > 1e-6,
        "alpha/beta must influence the factors"
    );
}

#[test]
fn k2_and_k3_both_supported() {
    let corpus = generate(&presets::tiny(8));
    for k in [2usize, 3] {
        let inst = build_offline(&corpus, k, &pipe());
        let input = TriInput {
            xp: &inst.xp,
            xu: &inst.xu,
            xr: &inst.xr,
            graph: &inst.graph,
            sf0: &inst.sf0,
        };
        let cfg = OfflineConfig {
            k,
            max_iters: 20,
            ..Default::default()
        };
        let result = solve_offline(&input, &cfg);
        assert!(result.tweet_labels().iter().all(|&l| l < k));
        assert!(result.user_labels().iter().all(|&l| l < k));
    }
}

#[test]
fn graph_regularizer_smooths_connected_users() {
    // With a strong beta, re-tweet partners should agree more often than
    // under beta = 0.
    let corpus = generate(&presets::prop30_small(13));
    let inst = build_offline(&corpus, 3, &pipe());
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let agreement = |labels: &[usize]| {
        let mut same = 0usize;
        let mut total = 0usize;
        for u in 0..inst.graph.num_nodes() {
            for (v, _) in inst.graph.neighbors(u) {
                total += 1;
                if labels[u] == labels[v] {
                    same += 1;
                }
            }
        }
        same as f64 / total.max(1) as f64
    };
    let no_graph = solve_offline(
        &input,
        &OfflineConfig {
            beta: 0.0,
            max_iters: 60,
            ..Default::default()
        },
    );
    let with_graph = solve_offline(
        &input,
        &OfflineConfig {
            beta: 1.0,
            max_iters: 60,
            ..Default::default()
        },
    );
    let a0 = agreement(&no_graph.user_labels());
    let a1 = agreement(&with_graph.user_labels());
    assert!(
        a1 >= a0 - 0.02,
        "graph regularization should not reduce neighbor agreement: {a0} -> {a1}"
    );
}

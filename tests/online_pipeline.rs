//! Integration: the online pipeline — streaming snapshots, user
//! bookkeeping, temporal regularization.

use tripartite_sentiment::prelude::*;

fn pipe() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 2;
    cfg
}

#[test]
fn streaming_covers_all_tweets_and_tracks_users() {
    let corpus = generate(&presets::tiny(21));
    let builder = SnapshotBuilder::new(&corpus, 3, &pipe());
    let mut solver = OnlineSolver::new(OnlineConfig {
        max_iters: 30,
        ..Default::default()
    });
    let mut covered = 0usize;
    let mut seen_users = std::collections::HashSet::new();
    for (lo, hi) in day_windows(corpus.num_days, 3) {
        let snap = builder.snapshot(&corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        let input = TriInput {
            xp: &snap.xp,
            xu: &snap.xu,
            xr: &snap.xr,
            graph: &snap.graph,
            sf0: builder.sf0(),
        };
        let result = solver.step(&SnapshotData {
            input,
            user_ids: &snap.user_ids,
        });
        covered += snap.tweet_ids.len();
        // partition must tile the snapshot's users
        assert_eq!(
            result.partition.new_rows.len() + result.partition.evolving_rows.len(),
            snap.user_ids.len()
        );
        for &u in &snap.user_ids {
            // every user previously seen must be classified evolving
            let row = snap.user_ids.iter().position(|&x| x == u).unwrap();
            if seen_users.contains(&u) {
                assert!(
                    result.partition.evolving_rows.contains(&row),
                    "user {u} seen before must be evolving"
                );
            }
            seen_users.insert(u);
        }
    }
    assert_eq!(covered, corpus.num_tweets());
    assert!(solver.steps() >= 3);
}

#[test]
fn online_accuracy_reasonable_on_stream() {
    let corpus = generate(&presets::prop30_small(31));
    let builder = SnapshotBuilder::new(&corpus, 3, &pipe());
    let mut solver = OnlineSolver::new(OnlineConfig::default());
    let mut weighted = 0.0;
    let mut total = 0usize;
    for (lo, hi) in day_windows(corpus.num_days, 2) {
        let snap = builder.snapshot(&corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        let input = TriInput {
            xp: &snap.xp,
            xu: &snap.xu,
            xr: &snap.xr,
            graph: &snap.graph,
            sf0: builder.sf0(),
        };
        let result = solver.step(&SnapshotData {
            input,
            user_ids: &snap.user_ids,
        });
        let acc = clustering_accuracy(&result.tweet_labels(), &snap.tweet_truth);
        weighted += acc * snap.tweet_ids.len() as f64;
        total += snap.tweet_ids.len();
    }
    let avg = weighted / total as f64;
    // evaluated on ALL tweets including the hard neutral class (chance on
    // this 3-class mix is ~0.45)
    assert!(avg > 0.58, "stream-average tweet accuracy {avg}");
}

#[test]
fn disappeared_users_keep_estimates_with_wider_window() {
    let corpus = generate(&presets::tiny(17));
    let builder = SnapshotBuilder::new(&corpus, 3, &pipe());
    let mut solver = OnlineSolver::new(OnlineConfig {
        window: 4,
        max_iters: 20,
        ..Default::default()
    });
    let mut all_seen = std::collections::HashSet::new();
    for (lo, hi) in day_windows(corpus.num_days, 3) {
        let snap = builder.snapshot(&corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        let input = TriInput {
            xp: &snap.xp,
            xu: &snap.xu,
            xr: &snap.xr,
            graph: &snap.graph,
            sf0: builder.sf0(),
        };
        solver.step(&SnapshotData {
            input,
            user_ids: &snap.user_ids,
        });
        all_seen.extend(snap.user_ids.iter().copied());
    }
    // Every user ever seen still has a sentiment estimate (carried
    // forward through absence).
    for &u in &all_seen {
        let est = solver.sentiment_of(u);
        assert!(est.is_some(), "user {u} lost their estimate");
        assert_eq!(est.unwrap().len(), 3);
    }
}

#[test]
fn online_objective_monotone_within_steps() {
    let corpus = generate(&presets::tiny(29));
    let builder = SnapshotBuilder::new(&corpus, 3, &pipe());
    let mut solver = OnlineSolver::new(OnlineConfig {
        track_objective: true,
        max_iters: 30,
        ..Default::default()
    });
    for (lo, hi) in day_windows(corpus.num_days, 4) {
        let snap = builder.snapshot(&corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        let input = TriInput {
            xp: &snap.xp,
            xu: &snap.xu,
            xr: &snap.xr,
            graph: &snap.graph,
            sf0: builder.sf0(),
        };
        let result = solver.step(&SnapshotData {
            input,
            user_ids: &snap.user_ids,
        });
        for (i, w) in result.history.windows(2).enumerate() {
            assert!(
                w[1].total() <= w[0].total() * 1.01,
                "step {} iter {i}: objective jumped {} -> {}",
                solver.steps(),
                w[0].total(),
                w[1].total()
            );
        }
        if result.history.len() > 2 {
            let first = result.history.first().unwrap().total();
            let last = result.history.last().unwrap().total();
            assert!(
                last <= first * 1.001,
                "per-step objective should not grow: {first} -> {last}"
            );
        }
    }
}

//! Bit-identity of the micro-batching front end: a snapshot stream
//! pushed through [`BatchingIngest`] must leave the engine in *exactly*
//! the state produced by ingesting the pre-coalesced snapshots directly
//! — same timeline entries, same checkpoint bytes — at one shard and at
//! four. The batcher buys its one-tokenize/one-assembly/one-step saving
//! purely by concatenation, so anything beyond bit-identity is a bug.

use proptest::prelude::*;
use tripartite_sentiment::prelude::*;

fn engine_over(corpus: &Corpus, shards: usize, policy: BatchPolicy) -> ShardedEngine {
    EngineBuilder::new()
        .k(3)
        .max_iters(10)
        .seed(42)
        .queue_depth(512)
        .batch_policy(policy)
        .fit_sharded(corpus, shards)
        .expect("valid configuration")
}

/// The reference semantics: same-bucket snapshots concatenated in
/// arrival order and stamped with the bucket floor, one ingest each.
fn coalesce(snaps: &[EngineSnapshot], width: u64) -> Vec<EngineSnapshot> {
    let mut out: Vec<EngineSnapshot> = Vec::new();
    for snap in snaps {
        let bucket = snap.timestamp - snap.timestamp % width;
        match out.last_mut() {
            Some(last) if last.timestamp == bucket => last.merge(snap.clone()),
            _ => {
                let mut opened = snap.clone();
                opened.timestamp = bucket;
                out.push(opened);
            }
        }
    }
    out
}

fn firehose(seed: u64, corpus: &Corpus, steps: usize, ts_stride: u64) -> Vec<EngineSnapshot> {
    let vocab = Vocabulary::build(
        corpus
            .tweets
            .iter()
            .map(|t| t.tokens.iter().map(String::as_str)),
        &PipelineConfig::paper_defaults().vocab,
    );
    let mut gen = LoadGen::new(
        LoadConfig {
            seed,
            users: corpus.num_users(),
            docs_per_step: 5,
            words_per_doc: 6,
            ts_stride,
            ..LoadConfig::default()
        },
        vocab.tokens().to_vec(),
    )
    .unwrap();
    (0..steps).map(|_| gen.next_snapshot()).collect()
}

fn assert_batched_is_identity(seed: u64, width: u64, steps: usize, ts_stride: u64, shards: usize) {
    let corpus = generate(&presets::tiny(seed));
    let snaps = firehose(seed, &corpus, steps, ts_stride);
    let policy = BatchPolicy {
        bucket_width: width,
        max_docs: 1 << 20,
        max_delay: None,
    };

    let batched = engine_over(&corpus, shards, policy);
    {
        let mut batcher = batched.batching();
        for snap in &snaps {
            let shed = batcher.submit(snap.clone()).unwrap();
            assert!(shed.is_none(), "queue_depth 512 must never shed here");
        }
        assert!(batcher.flush().unwrap().is_none());
        assert_eq!(batcher.snapshots_coalesced() as usize, snaps.len());
    }
    batched.flush().unwrap();

    let reference = engine_over(&corpus, shards, BatchPolicy::default());
    for snap in coalesce(&snaps, width) {
        reference.ingest(snap).unwrap();
    }
    reference.flush().unwrap();

    assert_eq!(
        batched.query().timeline(..).unwrap(),
        reference.query().timeline(..).unwrap(),
        "timeline diverged (shards {shards}, width {width})"
    );
    assert_eq!(
        batched.checkpoint().unwrap().as_bytes(),
        reference.checkpoint().unwrap().as_bytes(),
        "checkpoint bytes diverged (shards {shards}, width {width})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn batched_equals_coalesced_single_shard(
        seed in 1u64..500,
        width in 1u64..6,
        steps in 4usize..12,
        ts_stride in 1u64..3,
    ) {
        assert_batched_is_identity(seed, width, steps, ts_stride, 1);
    }

    #[test]
    fn batched_equals_coalesced_four_shards(
        seed in 1u64..500,
        width in 1u64..6,
        steps in 4usize..12,
        ts_stride in 1u64..3,
    ) {
        assert_batched_is_identity(seed, width, steps, ts_stride, 4);
    }
}

/// Width 1 with a strictly increasing stream batches nothing: every
/// submit flushes the previous snapshot untouched, so the batcher is a
/// pure pass-through (the `tgs stream` default path stays unchanged).
#[test]
fn width_one_is_a_pass_through() {
    let corpus = generate(&presets::tiny(7));
    let snaps = firehose(7, &corpus, 8, 1);
    let engine = engine_over(&corpus, 2, BatchPolicy::default());
    {
        let mut batcher = engine.batching();
        for snap in &snaps {
            batcher.submit(snap.clone()).unwrap();
        }
        batcher.flush().unwrap();
        assert_eq!(batcher.batches_flushed() as usize, snaps.len());
    }
    let steps = engine.flush().unwrap();
    assert_eq!(steps as usize, snaps.len());
}

/// A stream pinned to one timestamp collapses into a single solver
/// step regardless of length — the max-docs valve is the only bound.
#[test]
fn same_timestamp_stream_collapses_to_one_step() {
    let corpus = generate(&presets::tiny(9));
    let mut snaps = firehose(9, &corpus, 10, 1);
    for snap in &mut snaps {
        snap.timestamp = 100;
    }
    let engine = engine_over(&corpus, 2, BatchPolicy::same_timestamp());
    {
        let mut batcher = engine.batching();
        for snap in &snaps {
            batcher.submit(snap.clone()).unwrap();
        }
        batcher.flush().unwrap();
        assert_eq!(batcher.batches_flushed(), 1);
        assert_eq!(batcher.snapshots_coalesced(), 10);
    }
    assert_eq!(engine.flush().unwrap(), 1);
}

//! Property-based integration tests: invariants that must hold for
//! arbitrary generator configurations and solver settings.

use proptest::prelude::*;
use tripartite_sentiment::prelude::*;

fn pipe() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 1;
    cfg
}

/// Strategy: a small random-but-valid generator configuration.
fn generator_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        1u64..1000,
        20usize..60,
        100usize..300,
        5u32..15,
        0.0..0.3f64,
        0.0..0.25f64,
    )
        .prop_map(|(seed, users, tweets, days, noise, flip)| GeneratorConfig {
            seed,
            num_users: users,
            total_tweets: tweets,
            num_days: days,
            tweet_noise: noise,
            flip_fraction: flip,
            ..presets::tiny(seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn corpus_always_well_formed(cfg in generator_config()) {
        let corpus = generate(&cfg);
        prop_assert_eq!(corpus.num_tweets(), cfg.total_tweets);
        prop_assert_eq!(corpus.num_users(), cfg.num_users);
        let mut prev_day = 0;
        for t in &corpus.tweets {
            prop_assert!(t.author < cfg.num_users);
            prop_assert!(t.day < cfg.num_days);
            prop_assert!(t.day >= prev_day, "tweets sorted by day");
            prev_day = t.day;
            prop_assert!(!t.tokens.is_empty());
        }
        for r in &corpus.retweets {
            prop_assert!(r.user < cfg.num_users);
            prop_assert!(r.tweet < cfg.total_tweets);
            prop_assert!(r.user != corpus.tweets[r.tweet].author, "no self-retweets");
        }
    }

    #[test]
    fn matrices_always_consistent(cfg in generator_config()) {
        let corpus = generate(&cfg);
        let inst = build_offline(&corpus, 3, &pipe());
        prop_assert_eq!(inst.xp.rows(), corpus.num_tweets());
        prop_assert_eq!(inst.xu.rows(), corpus.num_users());
        prop_assert_eq!(inst.xr.shape(), (corpus.num_users(), corpus.num_tweets()));
        prop_assert_eq!(inst.xp.cols(), inst.vocab.len());
        prop_assert_eq!(inst.sf0.shape(), (inst.vocab.len(), 3));
        // every Sf0 row is a probability distribution
        for f in 0..inst.vocab.len() {
            let s: f64 = inst.sf0.row(f).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
        // the graph is symmetric with zero diagonal
        prop_assert!(inst.graph.adjacency().is_symmetric(1e-12));
    }

    #[test]
    fn solver_never_breaks_nonnegativity_or_monotonicity(
        cfg in generator_config(),
        alpha in 0.0..1.0f64,
        beta in 0.0..1.0f64,
    ) {
        let corpus = generate(&cfg);
        let inst = build_offline(&corpus, 3, &pipe());
        let input = TriInput {
            xp: &inst.xp,
            xu: &inst.xu,
            xr: &inst.xr,
            graph: &inst.graph,
            sf0: &inst.sf0,
        };
        let solver_cfg = OfflineConfig {
            alpha,
            beta,
            max_iters: 12,
            tol: 0.0,
            track_objective: true,
            ..Default::default()
        };
        let result = solve_offline(&input, &solver_cfg);
        prop_assert!(result.factors.all_nonnegative());
        prop_assert!(result.objective.is_finite());
        // ≤1% transient rises allowed (raw objective vs Lagrangian — see
        // tests/offline_pipeline.rs); overall trend must be down.
        for w in result.history.windows(2) {
            prop_assert!(
                w[1].total() <= w[0].total() * 1.01,
                "objective jumped {} -> {}", w[0].total(), w[1].total()
            );
        }
        let first = result.history.first().unwrap().total();
        let last = result.history.last().unwrap().total();
        prop_assert!(last <= first, "objective should not end above its start");
    }

    #[test]
    fn labels_always_in_range(cfg in generator_config()) {
        let corpus = generate(&cfg);
        let inst = build_offline(&corpus, 3, &pipe());
        let input = TriInput {
            xp: &inst.xp,
            xu: &inst.xu,
            xr: &inst.xr,
            graph: &inst.graph,
            sf0: &inst.sf0,
        };
        let result = solve_offline(
            &input,
            &OfflineConfig { max_iters: 8, ..Default::default() },
        );
        prop_assert!(result.tweet_labels().iter().all(|&l| l < 3));
        prop_assert!(result.user_labels().iter().all(|&l| l < 3));
        prop_assert!(result.factors.feature_labels().iter().all(|&l| l < 3));
    }
}

#[test]
fn snapshot_union_reconstructs_corpus() {
    let corpus = generate(&presets::tiny(61));
    let builder = SnapshotBuilder::new(&corpus, 3, &pipe());
    let mut seen_tweets = std::collections::HashSet::new();
    for (lo, hi) in day_windows(corpus.num_days, 5) {
        let snap = builder.snapshot(&corpus, lo, hi);
        for &t in &snap.tweet_ids {
            assert!(seen_tweets.insert(t), "tweet {t} appeared in two snapshots");
        }
    }
    assert_eq!(
        seen_tweets.len(),
        corpus.num_tweets(),
        "snapshots must partition tweets"
    );
}

//! Degraded-mode query contract: with one dead peer in the fleet, every
//! [`ShardedQuery`] method must either fail with a typed
//! [`TgsError::Net`] (strict methods) or answer with results tagged
//! [`Coverage`] (the `*_partial` methods) — never panic, never hang,
//! never silently pass off a partial answer as a full one. The dead
//! peer is a [`FlakyShard`]-wrapped local worker, so the outage is
//! deterministic and instant to flip.

use std::sync::Arc;

use tripartite_sentiment::engine::{
    EngineCheckpoint, FlakyShard, LocalShard, SentimentEngine, ShardTransport,
};
use tripartite_sentiment::prelude::*;

fn corpus() -> Corpus {
    generate(&presets::tiny(42))
}

/// A 2-shard in-process fleet whose workers sit behind [`FlakyShard`]
/// switches, built from the same deterministic template a TCP deploy
/// ships (checkpoint sections → restore), so its answers match a plain
/// `fit_sharded` fleet exactly.
fn flaky_fleet(c: &Corpus) -> (ShardedEngine, Vec<Arc<FlakyShard>>) {
    let template = EngineBuilder::new()
        .k(3)
        .max_iters(8)
        .fit_sharded(c, 2)
        .expect("fit template");
    let map = template.map();
    let sections = template
        .checkpoint()
        .expect("template checkpoint")
        .sections()
        .expect("sections");
    template.shutdown().expect("template shutdown");
    let flaky: Vec<Arc<FlakyShard>> = sections
        .iter()
        .map(|section| {
            let engine = SentimentEngine::restore(&EngineCheckpoint::from_bytes(section.clone()))
                .expect("restore section");
            FlakyShard::new(Arc::new(LocalShard::new(engine)))
        })
        .collect();
    let transports: Vec<Arc<dyn ShardTransport>> = flaky
        .iter()
        .map(|f| Arc::clone(f) as Arc<dyn ShardTransport>)
        .collect();
    let engine = ShardedEngine::from_transports(map, transports, false).expect("fleet");
    (engine, flaky)
}

/// Streams all but the final window through the fleet and returns the
/// held-out window, so tests can attempt a *fresh* ingest against a
/// degraded fleet (re-ingesting a streamed timestamp would fail the
/// append-only check before ever reaching a shard).
fn stream(engine: &ShardedEngine, c: &Corpus) -> (u32, u32) {
    let windows = day_windows(c.num_days, 2);
    let (&held, rest) = windows.split_last().expect("at least one window");
    for &(lo, hi) in rest {
        engine
            .ingest(EngineSnapshot::from_corpus_window(c, lo, hi))
            .expect("ingest");
    }
    engine.flush().expect("flush");
    held
}

#[test]
fn every_query_method_is_typed_or_tagged_against_a_dead_shard() {
    let c = corpus();
    let (engine, flaky) = flaky_fleet(&c);
    let (held_lo, held_hi) = stream(&engine, &c);
    let query = engine.query();

    // Healthy baseline for the recovery comparison at the end.
    let full_timeline = query.timeline(..).expect("healthy timeline");
    assert!(!full_timeline.is_empty());
    let full_users = query.known_users().expect("healthy known_users");
    let t = full_timeline.last().expect("nonempty").timestamp;
    // A user each from shard 0's range and shard 1's range.
    let (shard1_lo, _) = engine.map().range(1);
    let user0 = 0;
    let user1 = shard1_lo;
    query
        .user_sentiment(user1, t)
        .expect("healthy shard-1 user lookup");

    flaky[1].set_down(true);

    // Strict methods: typed Net errors, never a panic.
    for (what, err) in [
        ("timeline", query.timeline(..).expect_err("timeline")),
        ("latest", query.latest().map(|_| ()).expect_err("latest")),
        (
            "known_users",
            query.known_users().map(|_| ()).expect_err("known_users"),
        ),
        (
            "cluster_summary",
            query.cluster_summary(t).map(|_| ()).expect_err("summary"),
        ),
        (
            "top_words",
            query.top_words(t, 5).map(|_| ()).expect_err("top_words"),
        ),
        (
            "merged_sf",
            query.merged_sf(t).map(|_| ()).expect_err("merged_sf"),
        ),
        (
            "user_sentiment",
            query
                .user_sentiment(user1, t)
                .map(|_| ())
                .expect_err("user_sentiment on the dead shard"),
        ),
        (
            "user_timeline",
            query
                .user_timeline(user1)
                .map(|_| ())
                .expect_err("user_timeline on the dead shard"),
        ),
    ] {
        assert_eq!(
            err.kind(),
            TgsErrorKind::Net,
            "{what} must fail typed: {err}"
        );
    }
    // Routing away from the dead shard still answers.
    query
        .user_sentiment(user0, t)
        .expect("shard 0 keeps serving its users");

    // Partial methods: tagged answers from the surviving shard.
    let tl = query.timeline_partial(..).expect("timeline_partial");
    assert_eq!(
        (tl.coverage.healthy, tl.coverage.total),
        (1, 2),
        "one of two shards answered"
    );
    assert!(!tl.coverage.is_full());
    assert_eq!(
        tl.coverage.stale_since,
        Some(t),
        "staleness bound must be the dead shard's last committed window"
    );
    assert!(!tl.value.is_empty(), "surviving shard's history serves");
    assert!(
        tl.value.len() <= full_timeline.len(),
        "a partial answer never invents entries"
    );

    let latest = query.latest_partial().expect("latest_partial");
    assert_eq!((latest.coverage.healthy, latest.coverage.total), (1, 2));
    assert!(latest.value.is_some(), "surviving shard has history");

    let users = query.known_users_partial().expect("known_users_partial");
    assert_eq!((users.coverage.healthy, users.coverage.total), (1, 2));
    assert!(
        users.value < full_users,
        "partial count must exclude the dead shard's users"
    );

    // The degraded answers are counted, the outage is counted, and the
    // outage was actually exercised through the fault seam.
    let stats = engine.stats();
    assert!(
        stats.degraded_queries >= 3,
        "three partial queries ran degraded, stats say {}",
        stats.degraded_queries
    );
    assert!(stats.shard_unavailable > 0);
    assert!(flaky[1].rejected() > 0);

    // Ingest against a dead fleet: typed error, never a hang. Both
    // shards go down so neither worker can partially commit the window
    // before the outage surfaces (which would skew the healed timeline).
    flaky[0].set_down(true);
    let err = engine
        .ingest(EngineSnapshot::from_corpus_window(&c, held_lo, held_hi))
        .expect_err("ingest needs every shard");
    assert_eq!(err.kind(), TgsErrorKind::Net);
    flaky[0].set_down(false);

    // Heal: full coverage returns, answers match the healthy baseline.
    flaky[1].set_down(false);
    assert_eq!(query.timeline(..).expect("healed timeline"), full_timeline);
    let healed = query.timeline_partial(..).expect("healed partial");
    assert!(healed.coverage.is_full());
    assert_eq!(healed.coverage.stale_since, None);
    assert_eq!(healed.value, full_timeline);
    assert_eq!(query.known_users().expect("healed users"), full_users);

    engine.shutdown().expect("shutdown");
}

#[test]
fn partial_queries_fail_typed_when_no_shard_answers() {
    let c = corpus();
    let (engine, flaky) = flaky_fleet(&c);
    stream(&engine, &c);
    let query = engine.query();
    for f in &flaky {
        f.set_down(true);
    }

    // Zero coverage is an error, not an empty Ok: an empty answer would
    // be indistinguishable from an empty history.
    for (what, err) in [
        (
            "timeline_partial",
            query
                .timeline_partial(..)
                .map(|_| ())
                .expect_err("timeline"),
        ),
        (
            "latest_partial",
            query.latest_partial().map(|_| ()).expect_err("latest"),
        ),
        (
            "known_users_partial",
            query
                .known_users_partial()
                .map(|_| ())
                .expect_err("known_users"),
        ),
    ] {
        assert_eq!(err.kind(), TgsErrorKind::Net, "{what}: {err}");
    }

    for f in &flaky {
        f.set_down(false);
    }
    engine.shutdown().expect("shutdown");
}

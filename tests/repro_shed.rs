use std::cell::RefCell;
use std::time::Duration;

use tripartite_sentiment::core::TgsError;
use tripartite_sentiment::engine::{BatchPolicy, BatchingIngest, EngineSnapshot, IngestSink};

struct SheddingSink {
    shed_all: RefCell<bool>,
    accepted: RefCell<Vec<EngineSnapshot>>,
}

impl IngestSink for SheddingSink {
    fn try_submit(&self, batch: EngineSnapshot) -> Result<Option<EngineSnapshot>, TgsError> {
        if *self.shed_all.borrow() {
            Ok(Some(batch))
        } else {
            self.accepted.borrow_mut().push(batch);
            Ok(None)
        }
    }
}

fn snap(ts: u64, n: usize) -> EngineSnapshot {
    let mut s = EngineSnapshot::new(ts);
    for u in 0..n {
        s.push_tokens(u, vec!["w".into()]);
    }
    s
}

#[test]
fn bucket_change_shed_then_full_flush_conserves_every_document() {
    let sink = SheddingSink {
        shed_all: RefCell::new(true),
        accepted: RefCell::new(Vec::new()),
    };
    let policy = BatchPolicy {
        bucket_width: 1,
        max_docs: 2,
        max_delay: Some(Duration::from_secs(60)),
    };
    let mut b = BatchingIngest::new(&sink, policy).unwrap();
    // Open a pending batch at bucket 0 (1 doc < max_docs: stays pending).
    assert!(b.submit(snap(0, 1)).unwrap().is_none());
    // New bucket + the new snapshot alone reaches max_docs, while the
    // sink sheds everything: the bucket-change flush sheds batch A, then
    // the size-triggered flush sheds batch B, overwriting A.
    let shed = b.submit(snap(1, 2)).unwrap();
    // We got at most one batch back; where did the other go?
    let got_back: usize = shed.map(|s| s.len()).unwrap_or(0);
    let accepted: usize = sink.accepted.borrow().iter().map(|s| s.len()).sum();
    let pending = b.pending_docs();
    assert_eq!(
        got_back + accepted + pending,
        3,
        "a shed batch was silently dropped"
    );
}

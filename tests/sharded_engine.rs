//! Shard-parity integration tests for the [`ShardedEngine`] router.
//!
//! * `shards = 1` is an *identity*: the single worker receives
//!   byte-identical snapshots, so the merged timeline equals the plain
//!   [`SentimentEngine`] timeline exactly and the checkpoint's one shard
//!   section equals the single-engine checkpoint byte for byte.
//! * `shards ∈ {2, 4}` solve each shard independently (coupled only by
//!   the shared lexicon prior anchoring cluster semantics), so merged
//!   timelines agree with the single-shard ones within a documented
//!   tolerance rather than exactly: on the preset `tiny(42)` corpus the
//!   mean per-cluster tweet-share divergence measures ≈ 0.08 (worst
//!   single entry ≈ 0.28); the assertions below allow 0.15 / 0.45.

use tripartite_sentiment::prelude::*;

fn corpus() -> Corpus {
    generate(&presets::tiny(42))
}

fn single_over(c: &Corpus) -> SentimentEngine {
    EngineBuilder::new()
        .k(3)
        .max_iters(12)
        .seed(42)
        .fit(c)
        .expect("valid configuration")
}

fn sharded_over(c: &Corpus, shards: usize) -> ShardedEngine {
    EngineBuilder::new()
        .k(3)
        .max_iters(12)
        .seed(42)
        .fit_sharded(c, shards)
        .expect("valid configuration")
}

fn windows(c: &Corpus) -> Vec<(u32, u32)> {
    day_windows(c.num_days, 1)
}

#[test]
fn single_shard_timeline_and_checkpoint_bytes_match_sentiment_engine() {
    let c = corpus();
    let single = single_over(&c);
    let sharded = sharded_over(&c, 1);
    for (lo, hi) in windows(&c) {
        let snap = EngineSnapshot::from_corpus_window(&c, lo, hi);
        single.ingest(snap.clone()).unwrap();
        sharded.ingest(snap).unwrap();
    }
    single.flush().unwrap();
    sharded.flush().unwrap();

    // Timelines are exactly equal — every field of every entry.
    let a = single.query().timeline(..);
    let b = sharded.query().timeline(..).unwrap();
    assert_eq!(a, b, "shards = 1 must be the identity");
    assert_eq!(sharded.dropped_cross_shard(), 0);

    // Per-user histories answer identically through the router.
    let last = a.last().unwrap().timestamp;
    for user in 0..c.num_users() {
        match (
            single.query().user_sentiment(user, last),
            sharded.query().user_sentiment(user, last),
        ) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "user {user}"),
            (Err(_), Err(_)) => {}
            (x, y) => panic!("user {user}: routing diverged ({x:?} vs {y:?})"),
        }
    }
    assert_eq!(
        single.query().top_words(last, 6).unwrap(),
        sharded.query().top_words(last, 6).unwrap()
    );

    // The multi-shard checkpoint's only section is byte-identical to the
    // plain engine checkpoint.
    let ckpt_single = single.checkpoint().unwrap();
    let ckpt_sharded = sharded.checkpoint().unwrap();
    let sections = ckpt_sharded.sections().unwrap();
    assert_eq!(sections.len(), 1);
    assert_eq!(
        sections[0].as_slice(),
        ckpt_single.as_bytes(),
        "one-shard checkpoint section must equal the single-engine bytes"
    );
}

#[test]
fn multi_shard_timelines_agree_with_single_shard_within_tolerance() {
    let c = corpus();
    let run = |shards: usize| {
        let engine = sharded_over(&c, shards);
        for (lo, hi) in windows(&c) {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .unwrap();
        }
        engine.flush().unwrap();
        engine.query().timeline(..).unwrap()
    };
    let base = run(1);
    for shards in [2usize, 4] {
        let timeline = run(shards);
        assert_eq!(timeline.len(), base.len(), "shards = {shards}");
        let mut total_diff = 0.0f64;
        let mut worst_diff = 0.0f64;
        let mut samples = 0usize;
        for (a, b) in base.iter().zip(&timeline) {
            // Structure is exact: same timestamps, and fan-out loses no
            // tweet (documents always follow their author).
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.tweets, b.tweets, "t = {}", a.timestamp);
            // Only re-tweet-only users whose edge crossed shards may
            // vanish from a snapshot's user set.
            assert!(b.users <= a.users, "t = {}", a.timestamp);
            for (x, y) in a.tweet_shares().iter().zip(b.tweet_shares()) {
                let d = (x - y).abs();
                total_diff += d;
                worst_diff = worst_diff.max(d);
                samples += 1;
            }
        }
        let mean_diff = total_diff / samples as f64;
        assert!(
            mean_diff < 0.15,
            "shards = {shards}: mean share divergence {mean_diff:.4} (documented tolerance 0.15)"
        );
        assert!(
            worst_diff < 0.45,
            "shards = {shards}: worst share divergence {worst_diff:.4} (documented tolerance 0.45)"
        );
    }
}

#[test]
fn multi_shard_checkpoint_restores_and_keeps_solving_deterministically() {
    let c = corpus();
    let all = windows(&c);
    let (head, tail) = all.split_at(all.len() / 2);

    let engine = sharded_over(&c, 4);
    for &(lo, hi) in head {
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .unwrap();
    }
    engine.flush().unwrap();
    let ckpt = engine.checkpoint().unwrap();

    // Round-trip through raw bytes, as `tgs stream --checkpoint` would.
    let restored = ShardedEngine::restore_any(ckpt.as_bytes().to_vec()).unwrap();
    assert_eq!(restored.shards(), 4);
    assert_eq!(
        restored.query().timeline(..).unwrap(),
        engine.query().timeline(..).unwrap()
    );

    for &(lo, hi) in tail {
        let snap = EngineSnapshot::from_corpus_window(&c, lo, hi);
        engine.ingest(snap.clone()).unwrap();
        restored.ingest(snap).unwrap();
    }
    engine.flush().unwrap();
    restored.flush().unwrap();
    let a = engine.query().timeline(..).unwrap();
    let b = restored.query().timeline(..).unwrap();
    assert_eq!(a, b, "post-restore multi-shard solves must be identical");

    // The restored fleet serves the full history API.
    let last = b.last().unwrap().timestamp;
    let summary = restored.query().cluster_summary(last).unwrap();
    assert_eq!(
        summary.tweet_counts.iter().sum::<usize>(),
        b.last().unwrap().tweets
    );
    let words = restored.query().top_words(last, 5).unwrap();
    assert_eq!(words.len(), 3);
    let author = c.tweets[0].author;
    assert!(restored.query().user_sentiment(author, last).is_ok());
}

//! Property tests for delta checkpoints: over generated corpora, a base
//! checkpoint plus the chain of deltas must stay **bit-identical** to a
//! freshly encoded full checkpoint after every streamed window — on a
//! single-engine fleet (`shards = 1`, the plain [`SentimentEngine`]
//! path through [`LocalShard`]) and a 4-shard fleet (multi-section
//! assembly through the router).

use proptest::prelude::*;
use tripartite_sentiment::prelude::*;

fn corpus(seed: u64, users: usize) -> Corpus {
    let mut cfg = presets::tiny(seed);
    cfg.num_users = users;
    generate(&cfg)
}

/// Streams `c` window by window, maintaining base ⊕ deltas beside the
/// live fleet and asserting byte equality with a full checkpoint at
/// every step.
fn assert_chain_matches_full(c: &Corpus, shards: usize, window: u32) {
    let engine = EngineBuilder::new()
        .k(3)
        .max_iters(6)
        .fit_sharded(c, shards)
        .expect("fit");
    let (mut tips, mut current) = engine.checkpoint_base().expect("base");
    assert_eq!(
        current.as_bytes(),
        engine.checkpoint().expect("cold full").as_bytes(),
        "the base itself must equal a full checkpoint"
    );
    for (lo, hi) in day_windows(c.num_days, window) {
        engine
            .ingest(EngineSnapshot::from_corpus_window(c, lo, hi))
            .expect("ingest");
        engine.flush().expect("flush");
        let delta = engine
            .delta_since(&tips)
            .expect("delta encode")
            .expect("fresh tips must be servable");
        current = ShardedEngine::apply_delta(&current, &delta).expect("apply");
        tips = delta.tips().expect("delta tips");
        let full = engine.checkpoint().expect("full");
        assert_eq!(
            current.as_bytes(),
            full.as_bytes(),
            "base+deltas diverged from the full checkpoint ({shards} shard(s), \
             window {window}, after days [{lo}, {hi}))"
        );
        assert!(
            delta.len() <= full.len(),
            "a delta must never cost more than the full checkpoint it replaces"
        );
    }
    engine.shutdown().expect("shutdown");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn delta_chain_is_bit_identical_to_full_checkpoints(
        seed in 1u64..1000,
        users in 10usize..32,
        window in 1u32..4,
    ) {
        let c = corpus(seed, users);
        assert_chain_matches_full(&c, 1, window);
        assert_chain_matches_full(&c, 4, window);
    }
}

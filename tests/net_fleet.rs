//! Loopback fleet tests: real TCP on 127.0.0.1, driven three ways —
//! in-thread [`ShardServer`]s behind [`deploy_fleet`], raw
//! [`TcpShard`] transports built by hand, and actual `tgs shard` /
//! `tgs serve` subprocesses. The invariant under test everywhere:
//! a distributed fleet is **bit-identical** to the in-process
//! [`ShardedEngine`] it was cloned from — same timelines, same top
//! words, same checkpoint bytes — and a dropped peer degrades to typed
//! [`TgsError::Net`] errors, never a panic.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use tripartite_sentiment::data::{RepartitionOp, RepartitionPlan};
use tripartite_sentiment::engine::ShardTransport;
use tripartite_sentiment::net::{deploy_fleet, NetConfig, ShardServer, TcpShard};
use tripartite_sentiment::prelude::*;

fn corpus() -> Corpus {
    generate(&presets::tiny(42))
}

fn fleet(c: &Corpus, shards: usize, ghosts: bool) -> ShardedEngine {
    EngineBuilder::new()
        .k(3)
        .max_iters(8)
        .ghost_users(ghosts)
        .fit_sharded(c, shards)
        .expect("fit")
}

fn windows(c: &Corpus) -> Vec<(u32, u32)> {
    day_windows(c.num_days, 2)
}

fn test_cfg() -> NetConfig {
    NetConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(60),
        reconnect_attempts: 3,
        backoff_base: Duration::from_millis(25),
        retry_deadline: Duration::from_secs(60),
        jitter_seed: 7,
        // Keep loopback parity tests immune to an ambient TGS_FAULTS.
        faults: None,
    }
}

/// Binds an in-thread shard server and serves it until terminated.
fn start_local_server() -> (String, std::thread::JoinHandle<Result<(), TgsError>>) {
    let server = ShardServer::bind("127.0.0.1:0", None).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn terminate(addr: &str) {
    TcpShard::new(addr, 0, test_cfg())
        .terminate()
        .expect("terminate");
}

/// Full query surface comparison: timelines, latest, known users, top
/// words, and per-user lookups must agree exactly.
fn assert_query_parity(remote: &ShardedEngine, local: &ShardedEngine, c: &Corpus) {
    let rq = remote.query();
    let lq = local.query();
    let r_timeline = rq.timeline(..).expect("remote timeline");
    let l_timeline = lq.timeline(..).expect("local timeline");
    assert_eq!(r_timeline, l_timeline, "timelines diverged");
    assert!(!r_timeline.is_empty(), "history must exist");
    assert_eq!(
        rq.latest().expect("remote latest"),
        lq.latest().expect("local latest")
    );
    assert_eq!(
        rq.known_users().expect("remote users"),
        lq.known_users().expect("local users")
    );
    let t = r_timeline.last().expect("nonempty").timestamp;
    assert_eq!(
        rq.top_words(t, 5).expect("remote words"),
        lq.top_words(t, 5).expect("local words"),
        "top words diverged"
    );
    for user in [0, c.num_users() / 2, c.num_users() - 1] {
        assert_eq!(
            rq.user_sentiment(user, t).expect("remote sentiment"),
            lq.user_sentiment(user, t).expect("local sentiment"),
            "user {user} sentiment diverged"
        );
    }
}

#[test]
fn loopback_fleet_is_bit_identical_to_in_process_at_1_2_4_shards() {
    let c = corpus();
    for shards in [1usize, 2, 4] {
        let addrs: Vec<(String, _)> = (0..shards).map(|_| start_local_server()).collect();
        let addr_list: Vec<String> = addrs.iter().map(|(a, _)| a.clone()).collect();

        let remote =
            deploy_fleet(fleet(&c, shards, false), &addr_list, &test_cfg()).expect("deploy");
        let local = fleet(&c, shards, false);
        for &(lo, hi) in &windows(&c) {
            remote
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .expect("remote ingest");
            local
                .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
                .expect("local ingest");
        }
        assert_eq!(
            remote.flush().expect("remote flush"),
            local.flush().expect("local flush")
        );
        assert_query_parity(&remote, &local, &c);
        assert_eq!(
            remote.checkpoint().expect("remote ckpt").as_bytes(),
            local.checkpoint().expect("local ckpt").as_bytes(),
            "{shards}-shard fleet checkpoints must be byte-identical"
        );
        assert_eq!(remote.stats().ingested, local.stats().ingested);

        remote.shutdown().expect("fleet shutdown");
        for (addr, handle) in addrs {
            terminate(&addr);
            handle.join().expect("server thread").expect("server run");
        }
    }
}

#[test]
fn live_rebalance_over_the_wire_keeps_parity_and_round_trips_bytes() {
    let c = corpus();
    let (addr_a, srv_a) = start_local_server();
    let (addr_b, srv_b) = start_local_server();
    let addr_list = vec![addr_a.clone(), addr_b.clone()];

    let remote = deploy_fleet(fleet(&c, 2, true), &addr_list, &test_cfg()).expect("deploy");
    let local = fleet(&c, 2, true);
    let all = windows(&c);
    let (head, tail) = all.split_at(all.len() / 2);
    for &(lo, hi) in head {
        remote
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("remote ingest");
        local
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("local ingest");
    }

    // The same explicit plan on both fleets: split shard 1, then move
    // the first boundary. Over TCP this drives spawn_sibling,
    // export/import and set_generation through the wire protocol.
    let b1 = remote.map().starts()[1];
    let at = b1 + (c.num_users() - b1) / 2;
    let forward = RepartitionPlan {
        ops: vec![
            RepartitionOp::Split { shard: 1, at },
            RepartitionOp::MoveBoundary {
                boundary: 1,
                to: b1 + 2,
            },
        ],
    };
    let r_map = remote.rebalance(&forward).expect("remote rebalance");
    let l_map = local.rebalance(&forward).expect("local rebalance");
    assert_eq!(r_map.starts(), l_map.starts());
    assert_eq!(r_map.generation(), l_map.generation());
    assert_eq!(remote.shards(), 3);

    for &(lo, hi) in tail {
        remote
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("remote ingest");
        local
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("local ingest");
    }
    remote.flush().expect("remote flush");
    local.flush().expect("local flush");
    assert_query_parity(&remote, &local, &c);
    assert_eq!(
        remote.checkpoint().expect("remote ckpt").as_bytes(),
        local.checkpoint().expect("local ckpt").as_bytes(),
        "checkpoints must stay byte-identical across a live TCP rebalance"
    );

    // Split-then-merge round trip over the wire: applying the inverse
    // plan (merge the split back, undo the boundary move) must land on
    // byte-identical checkpoints on both fleets — the absorb path
    // (checkpoint_section + absorb_section over TCP) loses nothing.
    let inverse = RepartitionPlan {
        ops: vec![
            RepartitionOp::MoveBoundary {
                boundary: 1,
                to: b1,
            },
            RepartitionOp::Merge { left: 1 },
        ],
    };
    remote.rebalance(&inverse).expect("remote inverse");
    local.rebalance(&inverse).expect("local inverse");
    assert_eq!(remote.shards(), 2);
    assert_eq!(
        remote.checkpoint().expect("remote ckpt").as_bytes(),
        local.checkpoint().expect("local ckpt").as_bytes(),
        "split-then-merge must round-trip byte-identically over TCP"
    );

    remote.shutdown().expect("fleet shutdown");
    terminate(&addr_a);
    terminate(&addr_b);
    srv_a.join().expect("join a").expect("run a");
    srv_b.join().expect("join b").expect("run b");
}

#[test]
fn handles_created_before_the_server_exists_connect_lazily() {
    // Constructing a TcpShard does no IO, and the bounded backoff gives
    // a late-starting server time to appear.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener); // free the port; nothing listens there now

    let cfg = NetConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(10),
        reconnect_attempts: 6,
        backoff_base: Duration::from_millis(50),
        retry_deadline: Duration::from_secs(30),
        jitter_seed: 7,
        faults: None,
    };
    let shard = TcpShard::new(addr.clone(), 0, cfg);
    let server_addr = addr.clone();
    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let server = ShardServer::bind(&server_addr, None).expect("late bind");
        server.run()
    });
    shard
        .ping()
        .expect("ping should succeed once the server appears");
    shard.terminate().expect("terminate");
    starter.join().expect("join").expect("run");
}

// ---------------------------------------------------------------------
// Subprocess helpers: real `tgs` processes over loopback.
// ---------------------------------------------------------------------

fn tgs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgs"))
}

/// Spawns `tgs shard --listen <addr>` and waits for its "listening on"
/// line, returning the child and the bound address.
fn spawn_shard_process(listen: &str, extra: &[&str]) -> (Child, String) {
    let mut child = tgs()
        .args(["shard", "--listen", listen])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tgs shard");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected shard banner: {line:?}"))
        .to_string();
    (child, addr)
}

fn wait_exit(mut child: Child, what: &str) {
    let status = child.wait().unwrap_or_else(|e| panic!("wait {what}: {e}"));
    assert!(status.success(), "{what} exited with {status}");
}

#[test]
fn tgs_serve_matches_tgs_stream_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("tgs_net_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = |name: &str| dir.join(name).to_string_lossy().into_owned();

    let status = tgs()
        .args(["generate", "--preset", "tiny", "--out", &path("corpus.tsv")])
        .status()
        .expect("generate");
    assert!(status.success());

    let (child_a, addr_a) = spawn_shard_process("127.0.0.1:0", &[]);
    let (child_b, addr_b) = spawn_shard_process("127.0.0.1:0", &[]);

    let serve = tgs()
        .args([
            "serve",
            "--shards",
            &format!("{addr_a},{addr_b}"),
            "--corpus",
            &path("corpus.tsv"),
            "--iters",
            "8",
            "--out",
            &path("serve.tsv"),
            "--checkpoint",
            &path("serve.ckpt"),
            "--terminate",
        ])
        .status()
        .expect("serve");
    assert!(serve.success(), "tgs serve failed");

    let stream = tgs()
        .args([
            "stream",
            "--shards",
            "2",
            "--corpus",
            &path("corpus.tsv"),
            "--iters",
            "8",
            "--out",
            &path("stream.tsv"),
            "--checkpoint",
            &path("stream.ckpt"),
        ])
        .status()
        .expect("stream");
    assert!(stream.success(), "tgs stream failed");

    let read = |name: &str| std::fs::read(dir.join(name)).expect("read output");
    assert_eq!(
        read("serve.tsv"),
        read("stream.tsv"),
        "distributed timeline must match the in-process one byte for byte"
    );
    assert_eq!(
        read("serve.ckpt"),
        read("stream.ckpt"),
        "distributed checkpoint must match the in-process one byte for byte"
    );

    // --terminate must have shut both servers down cleanly.
    wait_exit(child_a, "shard server a");
    wait_exit(child_b, "shard server b");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn router_survives_a_killed_shard_and_recovers_on_reconnect() {
    let c = corpus();
    let (child_a, addr_a) = spawn_shard_process("127.0.0.1:0", &[]);
    let (mut child_b, addr_b) = spawn_shard_process("127.0.0.1:0", &[]);

    // Build the transports by hand (instead of deploy_fleet) so the
    // test keeps TcpShard handles it can disconnect before the kill.
    let template = fleet(&c, 2, false);
    let map = template.map();
    let sections = template
        .checkpoint()
        .expect("ckpt")
        .sections()
        .expect("sections");
    template.shutdown().expect("template shutdown");
    let handles: Vec<Arc<TcpShard>> = [&addr_a, &addr_b]
        .iter()
        .map(|addr| Arc::new(TcpShard::new(addr.as_str(), 0, test_cfg())))
        .collect();
    for (handle, section) in handles.iter().zip(&sections) {
        handle.init(section).expect("init");
    }
    let transports: Vec<Arc<dyn ShardTransport>> = handles
        .iter()
        .map(|h| Arc::clone(h) as Arc<dyn ShardTransport>)
        .collect();
    let remote = ShardedEngine::from_transports(map.clone(), transports, false).expect("fleet");

    for &(lo, hi) in &windows(&c) {
        remote
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("ingest");
    }
    remote.flush().expect("flush");
    let before = remote.query().timeline(..).expect("timeline before");
    // Save shard b's full state so the revived server can be re-seeded
    // exactly as it was at the moment of death.
    let section_b = handles[1].checkpoint_section().expect("section b");

    // Close client-side first: the TIME_WAIT then lands on this end's
    // ephemeral ports, keeping shard b's listen port rebindable.
    handles[1].disconnect();
    child_b.kill().expect("kill shard b");
    child_b.wait().expect("reap shard b");

    // Queries routed to the dead shard surface as typed Net errors (no
    // panic), and the router's merged stats count the outage.
    let (lo_b, _) = map.range(1);
    let err = remote
        .query()
        .user_sentiment(lo_b, before.last().expect("nonempty").timestamp)
        .expect_err("shard b is dead");
    assert_eq!(err.kind(), TgsErrorKind::Net, "got {err}");
    assert!(
        remote.stats().shard_unavailable > 0,
        "merged stats must expose the outage"
    );

    // Revive on the same port. The freshly-freed port can lag a moment;
    // retry the spawn until the banner appears.
    let mut revived = None;
    for _ in 0..40 {
        let mut child = tgs()
            .args(["shard", "--listen", &addr_b])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("respawn shard b");
        let stdout = child.stdout.take().expect("stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("banner");
        if line.trim().strip_prefix("listening on ").is_some() {
            revived = Some(child);
            break;
        }
        let _ = child.wait();
        std::thread::sleep(Duration::from_millis(250));
    }
    let child_b2 = revived.expect("shard b could not rebind its port");
    handles[1].init(&section_b).expect("re-init slot 0");
    handles[1]
        .set_generation(map.generation())
        .expect("re-key generation");

    // The same fleet handle recovers: full history, identical answers.
    let after = remote.query().timeline(..).expect("timeline after");
    assert_eq!(after, before, "history must survive the kill + revive");
    remote
        .query()
        .user_sentiment(lo_b, before.last().expect("nonempty").timestamp)
        .expect("shard b serves again");

    remote.shutdown().expect("fleet shutdown");
    for (child, addr) in [(child_a, &addr_a), (child_b2, &addr_b)] {
        TcpShard::new(addr.as_str(), 0, test_cfg())
            .terminate()
            .expect("terminate");
        wait_exit(child, "shard server");
    }
}

//! Integration: bit-for-bit reproducibility of the whole stack under
//! fixed seeds, and independence from unrelated configuration.

use tripartite_sentiment::prelude::*;

fn pipe() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 2;
    cfg
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let corpus = generate(&presets::tiny(1234));
        let inst = build_offline(&corpus, 3, &pipe());
        let input = TriInput {
            xp: &inst.xp,
            xu: &inst.xu,
            xr: &inst.xr,
            graph: &inst.graph,
            sf0: &inst.sf0,
        };
        let result = solve_offline(&input, &OfflineConfig::default());
        (
            result.objective,
            result.iterations,
            result.tweet_labels(),
            result.user_labels(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "objective must be identical");
    assert_eq!(a.1, b.1, "iteration count must be identical");
    assert_eq!(a.2, b.2, "tweet labels must be identical");
    assert_eq!(a.3, b.3, "user labels must be identical");
}

#[test]
fn corpus_generation_independent_of_call_order() {
    // Generating a second corpus in between must not perturb the first.
    let a = generate(&presets::tiny(77));
    let _noise = generate(&presets::tiny(78));
    let b = generate(&presets::tiny(77));
    assert_eq!(a.num_tweets(), b.num_tweets());
    for (x, y) in a.tweets.iter().zip(b.tweets.iter()) {
        assert_eq!(x.tokens, y.tokens);
        assert_eq!(x.author, y.author);
    }
    assert_eq!(a.retweets, b.retweets);
}

#[test]
fn different_solver_seeds_differ_but_agree_qualitatively() {
    let corpus = generate(&presets::prop30_small(55));
    let inst = build_offline(&corpus, 3, &pipe());
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let a = solve_offline(
        &input,
        &OfflineConfig {
            seed: 1,
            ..Default::default()
        },
    );
    let b = solve_offline(
        &input,
        &OfflineConfig {
            seed: 2,
            ..Default::default()
        },
    );
    // different random inits → different factor values
    assert!(a.factors.sp.max_abs_diff(&b.factors.sp) > 0.0);
    // but both land in the same quality regime
    let acc_a = clustering_accuracy(&a.tweet_labels(), &inst.tweet_truth);
    let acc_b = clustering_accuracy(&b.tweet_labels(), &inst.tweet_truth);
    assert!(
        (acc_a - acc_b).abs() < 0.15,
        "seed sensitivity too high: {acc_a} vs {acc_b}"
    );
}

#[test]
fn online_stream_deterministic() {
    let run = || {
        let corpus = generate(&presets::tiny(91));
        let builder = SnapshotBuilder::new(&corpus, 3, &pipe());
        let mut solver = OnlineSolver::new(OnlineConfig {
            max_iters: 20,
            ..Default::default()
        });
        let mut objectives = Vec::new();
        for (lo, hi) in day_windows(corpus.num_days, 4) {
            let snap = builder.snapshot(&corpus, lo, hi);
            if snap.tweet_ids.is_empty() {
                continue;
            }
            let input = TriInput {
                xp: &snap.xp,
                xu: &snap.xu,
                xr: &snap.xr,
                graph: &snap.graph,
                sf0: builder.sf0(),
            };
            objectives.push(
                solver
                    .step(&SnapshotData {
                        input,
                        user_ids: &snap.user_ids,
                    })
                    .objective,
            );
        }
        objectives
    };
    assert_eq!(run(), run());
}

//! Chaos tests for the supervised fleet: kill and corrupt real shard
//! servers mid-stream and prove the recovery machinery reconverges
//! **bit-identically** with a never-faulted run — same timelines, same
//! checkpoint bytes — while the merged stats count every respawn and
//! replayed document.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use tripartite_sentiment::net::{
    deploy_supervised, FaultPolicy, NetConfig, ShardServer, SupervisorConfig, TcpShard,
};
use tripartite_sentiment::prelude::*;

fn corpus() -> Corpus {
    generate(&presets::tiny(42))
}

fn fleet(c: &Corpus, shards: usize) -> ShardedEngine {
    EngineBuilder::new()
        .k(3)
        .max_iters(8)
        .fit_sharded(c, shards)
        .expect("fit")
}

fn windows(c: &Corpus) -> Vec<(u32, u32)> {
    day_windows(c.num_days, 2)
}

fn test_cfg() -> NetConfig {
    NetConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(60),
        reconnect_attempts: 3,
        backoff_base: Duration::from_millis(25),
        retry_deadline: Duration::from_secs(60),
        jitter_seed: 7,
        // Chaos in these tests is injected explicitly, never ambiently.
        faults: None,
    }
}

/// Supervisor tuning for tests: no mid-stream checkpoint refresh (so
/// the replay journal provably carries the streamed windows) and a
/// snappy recovery loop.
fn sup_cfg() -> SupervisorConfig {
    SupervisorConfig {
        checkpoint_every: 1_000,
        recover_backoff: Duration::from_millis(25),
        jitter_seed: 7,
        ..Default::default()
    }
}

/// Never-faulted in-process reference run: stream everything, return
/// the timeline and the checkpoint bytes.
fn reference_run(c: &Corpus) -> (Vec<TimelineEntry>, Vec<u8>) {
    let local = fleet(c, 2);
    for &(lo, hi) in &windows(c) {
        local
            .ingest(EngineSnapshot::from_corpus_window(c, lo, hi))
            .expect("reference ingest");
    }
    local.flush().expect("reference flush");
    let timeline = local.query().timeline(..).expect("reference timeline");
    let bytes = local
        .checkpoint()
        .expect("reference ckpt")
        .as_bytes()
        .to_vec();
    local.shutdown().expect("reference shutdown");
    (timeline, bytes)
}

// ---------------------------------------------------------------------
// Subprocess helpers (same contract as tests/net_fleet.rs).
// ---------------------------------------------------------------------

fn tgs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgs"))
}

fn spawn_shard_process(listen: &str) -> (Child, String) {
    let mut child = tgs()
        .args(["shard", "--listen", listen])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tgs shard");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected shard banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// Respawns a shard server on the *same* address as a killed one; the
/// freshly-freed port can lag a moment, so retry until the banner
/// appears.
fn respawn_shard_process(addr: &str) -> Child {
    for _ in 0..40 {
        let mut child = tgs()
            .args(["shard", "--listen", addr])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("respawn tgs shard");
        let stdout = child.stdout.take().expect("stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("banner");
        if line.trim().strip_prefix("listening on ").is_some() {
            return child;
        }
        let _ = child.wait();
        std::thread::sleep(Duration::from_millis(250));
    }
    panic!("shard server could not rebind {addr}");
}

fn wait_exit(mut child: Child, what: &str) {
    let status = child.wait().unwrap_or_else(|e| panic!("wait {what}: {e}"));
    assert!(status.success(), "{what} exited with {status}");
}

fn terminate(addr: &str) {
    TcpShard::new(addr, 0, test_cfg())
        .terminate()
        .expect("terminate");
}

/// Kill a shard server mid-stream and respawn it **empty** on the same
/// port: the next ingest routed there hits "no such slot", the
/// supervised transport re-seeds the slot from its baseline, replays
/// the journal, and the stream continues. The recovered fleet must be
/// bit-identical to a run that never faulted.
#[test]
fn supervised_fleet_survives_kill_and_empty_respawn_bit_identically() {
    let c = corpus();
    let (reference_timeline, reference_ckpt) = reference_run(&c);

    let (child_a, addr_a) = spawn_shard_process("127.0.0.1:0");
    let (mut child_b, addr_b) = spawn_shard_process("127.0.0.1:0");
    let (engine, supervisor) = deploy_supervised(
        fleet(&c, 2),
        &[addr_a.clone(), addr_b.clone()],
        &test_cfg(),
        sup_cfg(),
    )
    .expect("deploy supervised");

    let all = windows(&c);
    let (head, tail) = all.split_at(all.len() / 2);
    assert!(!head.is_empty() && !tail.is_empty(), "need a mid-stream");
    for &(lo, hi) in head {
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("head ingest");
        supervisor.tick();
    }

    // Chaos: shard b dies and comes back with amnesia (no slot state).
    child_b.kill().expect("kill shard b");
    child_b.wait().expect("reap shard b");
    let child_b2 = respawn_shard_process(&addr_b);

    // The stream never notices: the first ingest that touches shard b
    // recovers the slot (baseline + journal replay) under the hood.
    for &(lo, hi) in tail {
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("tail ingest rides through the respawn");
        supervisor.tick();
    }
    engine.flush().expect("flush");

    let stats = engine.stats();
    assert!(
        stats.respawns >= 1,
        "a respawn happened: {:?}",
        stats.respawns
    );
    assert!(
        stats.replayed_docs > 0,
        "the journal replayed documents into the fresh slot"
    );

    assert_eq!(
        engine.query().timeline(..).expect("recovered timeline"),
        reference_timeline,
        "recovered fleet's timeline must match the never-faulted run"
    );
    assert_eq!(
        engine.checkpoint().expect("recovered ckpt").as_bytes(),
        &reference_ckpt[..],
        "recovered fleet's checkpoint must be byte-identical to the never-faulted run"
    );

    supervisor.stop();
    engine.shutdown().expect("fleet shutdown");
    for (child, addr) in [(child_a, &addr_a), (child_b2, &addr_b)] {
        terminate(addr);
        wait_exit(child, "shard server");
    }
}

/// Corruption chaos: a seeded [`FaultPolicy`] truncates a quarter of
/// the `INGEST` request frames mid-write. Every truncation surfaces as
/// a typed error on a non-idempotent opcode, drives a slot rebuild, and
/// the fleet still reconverges bit-identically with the clean run.
#[test]
fn supervised_fleet_reconverges_under_seeded_ingest_truncation() {
    let c = corpus();
    let (reference_timeline, reference_ckpt) = reference_run(&c);

    let servers: Vec<(String, _)> = (0..2)
        .map(|_| {
            let server = ShardServer::bind("127.0.0.1:0", None).expect("bind");
            let addr = server.local_addr().expect("addr").to_string();
            (addr, std::thread::spawn(move || server.run()))
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|(a, _)| a.clone()).collect();

    let cfg = NetConfig {
        faults: Some(
            FaultPolicy::parse("seed=11, ingest.truncate=0.25").expect("valid fault spec"),
        ),
        ..test_cfg()
    };
    let (engine, supervisor) =
        deploy_supervised(fleet(&c, 2), &addrs, &cfg, sup_cfg()).expect("deploy supervised");

    for &(lo, hi) in &windows(&c) {
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("ingest rides through injected truncations");
        supervisor.tick();
    }
    engine.flush().expect("flush");

    let stats = engine.stats();
    assert!(
        stats.respawns >= 1,
        "seed 11 at p=0.25 must truncate at least one ingest frame \
         (respawns = {})",
        stats.respawns
    );
    assert!(stats.replayed_docs > 0);

    assert_eq!(
        engine.query().timeline(..).expect("timeline"),
        reference_timeline,
        "corrupted-transport fleet must reconverge with the clean run"
    );
    assert_eq!(
        engine.checkpoint().expect("ckpt").as_bytes(),
        &reference_ckpt[..],
        "checkpoints must stay byte-identical under transport corruption"
    );

    supervisor.stop();
    engine.shutdown().expect("fleet shutdown");
    for (addr, handle) in servers {
        terminate(&addr);
        handle.join().expect("server thread").expect("server run");
    }
}

/// Delta-baseline recovery: with a tight checkpoint cadence the
/// supervisor's mid-stream refreshes ship as `DELTA_SINCE` increments
/// (counted in `delta_refreshes`), each slot's baseline being a base
/// checkpoint plus a locally-compacted delta chain. A kill + empty
/// respawn then re-seeds the slot from the *materialized* base+deltas
/// plus the journal — and the result must still be bit-identical to a
/// never-faulted run.
#[test]
fn faulted_slot_reseeds_from_delta_baseline_bit_identically() {
    let c = corpus();
    let (reference_timeline, reference_ckpt) = reference_run(&c);

    let (child_a, addr_a) = spawn_shard_process("127.0.0.1:0");
    let (mut child_b, addr_b) = spawn_shard_process("127.0.0.1:0");
    let cfg = SupervisorConfig {
        // Refresh every window: the first refresh anchors a base via
        // CHECKPOINT_BASE, every later one ships only delta bytes.
        checkpoint_every: 1,
        ..sup_cfg()
    };
    let (engine, supervisor) = deploy_supervised(
        fleet(&c, 2),
        &[addr_a.clone(), addr_b.clone()],
        &test_cfg(),
        cfg,
    )
    .expect("deploy supervised");

    let all = windows(&c);
    let (head, tail) = all.split_at(all.len() / 2);
    assert!(!head.is_empty() && !tail.is_empty(), "need a mid-stream");
    for &(lo, hi) in head {
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("head ingest");
        supervisor.tick();
    }
    let refreshes_before_fault = supervisor
        .counters()
        .delta_refreshes
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        refreshes_before_fault > 0,
        "a per-window cadence must have shipped at least one delta refresh \
         before the fault (got {refreshes_before_fault})"
    );

    // Chaos: shard b dies and comes back with amnesia; its baseline is
    // now base + deltas, so recovery materializes the chain to re-seed.
    child_b.kill().expect("kill shard b");
    child_b.wait().expect("reap shard b");
    let child_b2 = respawn_shard_process(&addr_b);

    for &(lo, hi) in tail {
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("tail ingest rides through the respawn");
        supervisor.tick();
    }
    engine.flush().expect("flush");

    let stats = engine.stats();
    assert!(stats.respawns >= 1, "a respawn happened");
    let delta_refreshes = supervisor
        .counters()
        .delta_refreshes
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        delta_refreshes > refreshes_before_fault,
        "the surviving and re-anchored slots keep delta-refreshing after \
         the fault ({refreshes_before_fault} -> {delta_refreshes})"
    );

    assert_eq!(
        engine.query().timeline(..).expect("recovered timeline"),
        reference_timeline,
        "delta-baselined recovery must match the never-faulted timeline"
    );
    assert_eq!(
        engine.checkpoint().expect("recovered ckpt").as_bytes(),
        &reference_ckpt[..],
        "delta-baselined recovery must be byte-identical to the never-faulted run"
    );

    supervisor.stop();
    engine.shutdown().expect("fleet shutdown");
    for (child, addr) in [(child_a, &addr_a), (child_b2, &addr_b)] {
        terminate(addr);
        wait_exit(child, "shard server");
    }
}

/// The proactive path: health probes cross the failure threshold while
/// a shard is down, and the supervisor rebuilds the slot itself — no
/// ingest required — as soon as the server returns.
#[test]
fn probe_threshold_triggers_proactive_recovery() {
    let c = corpus();
    let (child_a, addr_a) = spawn_shard_process("127.0.0.1:0");
    let (mut child_b, addr_b) = spawn_shard_process("127.0.0.1:0");
    let (engine, supervisor) = deploy_supervised(
        fleet(&c, 2),
        &[addr_a.clone(), addr_b.clone()],
        &test_cfg(),
        sup_cfg(),
    )
    .expect("deploy supervised");

    for &(lo, hi) in &windows(&c) {
        engine
            .ingest(EngineSnapshot::from_corpus_window(&c, lo, hi))
            .expect("ingest");
        supervisor.tick();
    }
    engine.flush().expect("flush");
    let before = engine.query().timeline(..).expect("timeline before");

    child_b.kill().expect("kill shard b");
    child_b.wait().expect("reap shard b");

    // Respawn concurrently: the threshold-triggered recovery loop keeps
    // retrying (backoff + jitter) until the server is back.
    let addr = addr_b.clone();
    let respawner = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        respawn_shard_process(&addr)
    });

    // fail_threshold consecutive failed probes fire the recovery; the
    // final sweep blocks inside it until the rebuild lands.
    for _ in 0..sup_cfg().fail_threshold {
        supervisor.probe_once();
    }
    let child_b2 = respawner.join().expect("respawner thread");

    let stats = engine.stats();
    assert!(
        stats.respawns >= 1,
        "probe sweep must have respawned the slot"
    );
    assert_eq!(
        engine.query().timeline(..).expect("timeline after"),
        before,
        "proactively recovered fleet serves its full history"
    );

    supervisor.stop();
    engine.shutdown().expect("fleet shutdown");
    for (child, addr) in [(child_a, &addr_a), (child_b2, &addr_b)] {
        terminate(addr);
        wait_exit(child, "shard server");
    }
}

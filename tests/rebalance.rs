//! Live-rebalance integration tests for the elastic [`ShardedEngine`].
//!
//! The central determinism guarantee: migration is *lossless*. Moving a
//! user range between workers carries their full temporal state
//! (solver history rows age-relative, queryable observations verbatim),
//! so a mid-stream rebalance round trip (a plan followed by its
//! inverse, with no ingest in between) leaves the fleet byte-identical
//! to one that never rebalanced — subsequent timelines, user queries
//! and even checkpoint bytes match exactly. A one-way rebalance is
//! equivalent to a static-topology fleet restored from its checkpoint:
//! both continue the stream bit-identically.

use tripartite_sentiment::data::{PartitionMap, RepartitionOp, RepartitionPlan};
use tripartite_sentiment::prelude::*;

fn corpus() -> Corpus {
    generate(&presets::tiny(42))
}

fn fleet(c: &Corpus, shards: usize, ghosts: bool) -> ShardedEngine {
    EngineBuilder::new()
        .k(3)
        .max_iters(10)
        .seed(42)
        .ghost_users(ghosts)
        .fit_sharded(c, shards)
        .expect("valid configuration")
}

fn windows(c: &Corpus) -> Vec<(u32, u32)> {
    day_windows(c.num_days, 1)
}

fn stream(engine: &ShardedEngine, c: &Corpus, wins: &[(u32, u32)]) {
    for &(lo, hi) in wins {
        engine
            .ingest(EngineSnapshot::from_corpus_window(c, lo, hi))
            .unwrap();
    }
    engine.flush().unwrap();
}

/// Per-user `(timestamp, distribution)` observations keyed by user id.
type UserTimelines = Vec<(usize, Vec<(u64, Vec<f64>)>)>;

/// Every user query the fleet can answer, as a comparable value.
fn all_user_state(engine: &ShardedEngine, c: &Corpus) -> UserTimelines {
    let query = engine.query();
    (0..c.num_users())
        .filter_map(|u| query.user_timeline(u).ok().map(|t| (u, t)))
        .collect()
}

#[test]
fn rebalance_round_trip_is_byte_identical_to_never_rebalancing() {
    let c = corpus();
    let wins = windows(&c);
    let (head, tail) = wins.split_at(wins.len() / 2);

    let rebalanced = fleet(&c, 3, false);
    let control = fleet(&c, 3, false);
    stream(&rebalanced, &c, head);
    stream(&control, &c, head);

    // Move a boundary and move it back; split a shard and merge it
    // away again. Each forward delta migrates real users; the inverse
    // must restore every worker exactly.
    let map = rebalanced.map();
    let b1 = map.starts()[1];
    let forward = RepartitionPlan {
        ops: vec![
            RepartitionOp::MoveBoundary {
                boundary: 1,
                to: b1 + 3,
            },
            RepartitionOp::Split {
                shard: 2,
                at: map.starts()[2] + 2,
            },
        ],
    };
    let inverse = RepartitionPlan {
        ops: vec![
            RepartitionOp::Merge { left: 2 },
            RepartitionOp::MoveBoundary {
                boundary: 1,
                to: b1,
            },
        ],
    };
    let widened = rebalanced.rebalance(&forward).unwrap();
    assert_eq!(widened.shards(), 4);
    // Mid-flight sanity: history survived the forward migration.
    assert_eq!(
        all_user_state(&rebalanced, &c),
        all_user_state(&control, &c)
    );
    let restored = rebalanced.rebalance(&inverse).unwrap();
    assert_eq!(restored, control.map(), "round trip restores the map");

    // The remaining stream must solve byte-identically on both fleets.
    stream(&rebalanced, &c, tail);
    stream(&control, &c, tail);
    assert_eq!(
        rebalanced.query().timeline(..).unwrap(),
        control.query().timeline(..).unwrap(),
        "round-tripped fleet must match a never-rebalanced one exactly"
    );
    assert_eq!(
        all_user_state(&rebalanced, &c),
        all_user_state(&control, &c)
    );
    assert_eq!(
        rebalanced.checkpoint().unwrap().as_bytes(),
        control.checkpoint().unwrap().as_bytes(),
        "even the checkpoints are byte-identical"
    );
}

#[test]
fn rebalanced_fleet_equals_its_static_topology_restore() {
    // A one-way mid-stream rebalance, compared against the equivalent
    // *static* topology: a fleet restored from the rebalanced
    // checkpoint (it was born with the new map and never calls
    // rebalance). Both must continue the stream bit-identically.
    let c = corpus();
    let wins = windows(&c);
    let (head, tail) = wins.split_at(wins.len() / 2);

    let live = fleet(&c, 3, false);
    stream(&live, &c, head);
    let plan = RepartitionPlan {
        ops: vec![RepartitionOp::MoveBoundary {
            boundary: 2,
            to: live.map().starts()[2] - 2,
        }],
    };
    let new_map = live.rebalance(&plan).unwrap();
    let ckpt = live.checkpoint().unwrap();
    let static_fleet = ShardedEngine::restore_any(ckpt.as_bytes().to_vec()).unwrap();
    assert_eq!(static_fleet.map(), new_map);

    stream(&live, &c, tail);
    stream(&static_fleet, &c, tail);
    assert_eq!(
        live.query().timeline(..).unwrap(),
        static_fleet.query().timeline(..).unwrap()
    );
    assert_eq!(all_user_state(&live, &c), all_user_state(&static_fleet, &c));
    assert_eq!(
        live.checkpoint().unwrap().as_bytes(),
        static_fleet.checkpoint().unwrap().as_bytes()
    );
}

#[test]
fn rebalance_preserves_history_and_merge_folds_timelines() {
    let c = corpus();
    let wins = windows(&c);
    let (head, tail) = wins.split_at(wins.len() / 2);
    let engine = fleet(&c, 4, false);
    stream(&engine, &c, head);

    let before_timeline = engine.query().timeline(..).unwrap();
    let before_users = all_user_state(&engine, &c);
    let t0 = before_timeline[0].timestamp;
    let words_before = engine.query().top_words(t0, 5).ok();

    // A merge folds two workers; historical *merged* queries must not
    // change — the one caveat is the f64 `objective`, whose summation
    // order shifts when two shards' entries fold before the query-side
    // fan-in (float addition is not associative), so it is compared to
    // within rounding rather than bit-exactly.
    engine
        .rebalance(&RepartitionPlan::single(RepartitionOp::Merge { left: 1 }))
        .unwrap();
    assert_eq!(engine.shards(), 3);
    let after_timeline = engine.query().timeline(..).unwrap();
    assert_eq!(after_timeline.len(), before_timeline.len());
    for (a, b) in after_timeline.iter().zip(&before_timeline) {
        let mut a_exact = a.clone();
        a_exact.objective = b.objective;
        assert_eq!(&a_exact, b, "t = {}", b.timestamp);
        let denom = b.objective.abs().max(1.0);
        assert!(
            (a.objective - b.objective).abs() / denom < 1e-12,
            "objective drifted beyond rounding at t = {}",
            b.timestamp
        );
    }
    assert_eq!(all_user_state(&engine, &c), before_users);
    if let Some(words) = words_before {
        // Two retained Sf factors fold through the solvers' weighted
        // merge; the ranking still answers (weights are the shards'
        // recorded tweet counts, so the fold is deterministic).
        assert_eq!(engine.query().top_words(t0, 5).unwrap().len(), words.len());
    }

    // The stream continues normally on the merged topology, and a
    // duplicate timestamp is still rejected fleet-wide after the swap.
    stream(&engine, &c, tail);
    assert_eq!(engine.steps() as usize, wins.len());
    let dup = EngineSnapshot::from_corpus_window(&c, head[0].0, head[0].1);
    assert!(engine.ingest(dup).is_err());
}

#[test]
fn ghost_mode_with_mid_stream_rebalance_drops_nothing() {
    let c = corpus();
    let wins = windows(&c);
    let (head, tail) = wins.split_at(wins.len() / 2);
    let engine = fleet(&c, 4, true);
    stream(&engine, &c, head);
    let map = engine.map();
    engine
        .rebalance(&RepartitionPlan::single(RepartitionOp::MoveBoundary {
            boundary: 1,
            to: map.starts()[1] + 2,
        }))
        .unwrap();
    stream(&engine, &c, tail);
    assert_eq!(
        engine.dropped_cross_shard(),
        0,
        "ghost mode must never drop a retweet edge, rebalance or not"
    );
    assert!(engine.ghost_edges() > 0);
    // Determinism: a twin performing the identical schedule matches.
    let twin = fleet(&c, 4, true);
    stream(&twin, &c, head);
    twin.rebalance(&RepartitionPlan::single(RepartitionOp::MoveBoundary {
        boundary: 1,
        to: map.starts()[1] + 2,
    }))
    .unwrap();
    stream(&twin, &c, tail);
    assert_eq!(
        twin.query().timeline(..).unwrap(),
        engine.query().timeline(..).unwrap()
    );
    assert_eq!(
        twin.checkpoint().unwrap().as_bytes(),
        engine.checkpoint().unwrap().as_bytes()
    );
}

#[test]
fn v1_sharded_checkpoints_still_restore() {
    // Hand-encode the v1 header (stride partitioner) around sections
    // produced today: exactly what a PR-3 era `tgs stream --shards 2
    // --checkpoint` file looks like.
    let c = corpus();
    let engine = fleet(&c, 2, false);
    stream(&engine, &c, &windows(&c));
    let sections = engine.checkpoint().unwrap().sections().unwrap();

    let partitioner = tripartite_sentiment::data::UserRangePartitioner::new(c.num_users(), 2);
    assert_eq!(
        partitioner.to_map(),
        engine.map(),
        "the fleet still uses the stride layout, so v1 sections line up"
    );
    let mut v1 = Vec::new();
    v1.extend_from_slice(b"TGSSHR\x00\x01");
    v1.extend_from_slice(&2u64.to_le_bytes());
    v1.extend_from_slice(&(partitioner.universe() as u64).to_le_bytes());
    v1.extend_from_slice(&(partitioner.stride() as u64).to_le_bytes());
    v1.extend_from_slice(&partitioner.fingerprint().to_le_bytes());
    for section in &sections {
        v1.extend_from_slice(&(section.len() as u64).to_le_bytes());
        v1.extend_from_slice(section);
    }

    let restored = ShardedEngine::restore_any(v1).unwrap();
    assert_eq!(restored.shards(), 2);
    assert_eq!(restored.map(), engine.map());
    assert!(!restored.ghost_mode(), "v1 fleets always dropped edges");
    assert_eq!(
        restored.query().timeline(..).unwrap(),
        engine.query().timeline(..).unwrap()
    );
    // And the restored (v1-born) fleet is fully elastic: it can
    // rebalance and keep streaming.
    let new_map = restored
        .rebalance(&RepartitionPlan::single(RepartitionOp::MoveBoundary {
            boundary: 1,
            to: restored.map().starts()[1] + 1,
        }))
        .unwrap();
    assert_eq!(new_map.shards(), 2);
}

#[test]
fn auto_rebalance_splits_the_hottest_shard() {
    // A deliberately skewed stream: one author produces almost all
    // documents, so the fleet's skew blows past any sane budget and the
    // auto-trigger must split that author's shard.
    let c = corpus();
    let engine = fleet(&c, 2, false);
    let hot = 0usize; // shard 0's range
    let other = c.num_users() - 1;
    for t in 0..6u64 {
        let mut snap = EngineSnapshot::new(t);
        for _ in 0..9 {
            snap.push_tokens(hot, vec!["hot".into(), "topic".into()]);
            snap.push_tokens(hot + 1, vec!["hot".into(), "takes".into()]);
        }
        snap.push_tokens(other, vec!["quiet".into()]);
        engine.ingest(snap).unwrap();
    }
    engine.flush().unwrap();
    assert!(engine.load_skew() > 1.5);
    let map = engine.maybe_rebalance(1.5).unwrap().expect("skew exceeded");
    assert_eq!(map.shards(), 3, "the hottest shard splits in two");
    // The split lands inside the formerly hottest shard's range.
    assert!(map.starts()[1] > 0 && map.starts()[1] <= c.num_users() / 2);
    // Below the threshold nothing further happens.
    assert!(engine.maybe_rebalance(100.0).unwrap().is_none());
    // And the split fleet still answers history for everyone.
    let query = engine.query();
    assert!(query.user_sentiment(hot, 5).is_ok());
    assert!(query.user_sentiment(other, 5).is_ok());
}

#[test]
fn auto_split_isolates_a_hot_trailing_user() {
    // The load midpoint lands on the *last* in-range user of the hot
    // shard: splitting after them is out of range, so the planner must
    // fall back to splitting before them (isolating the hot user on the
    // right half) instead of silently giving up.
    let c = corpus(); // 30 users → shard 0 owns [0, 15)
    let engine = fleet(&c, 2, false);
    let hot = 14usize;
    for t in 0..3u64 {
        let mut snap = EngineSnapshot::new(t);
        for _ in 0..20 {
            snap.push_tokens(hot, vec!["hot".into(), "user".into()]);
        }
        snap.push_tokens(0, vec!["quiet".into()]);
        snap.push_tokens(20, vec!["quiet".into()]);
        engine.ingest(snap).unwrap();
    }
    engine.flush().unwrap();
    let map = engine.maybe_rebalance(1.5).unwrap().expect("skew exceeded");
    assert_eq!(
        map.starts(),
        &[0, 14, 15],
        "split lands before the hot user"
    );
    assert!(engine.query().user_sentiment(hot, 2).is_ok());
}

#[test]
fn offline_ghost_pipeline_solves_end_to_end() {
    use tripartite_sentiment::core::OfflineConfig;
    use tripartite_sentiment::data::build_offline_sharded_ghost;
    use tripartite_sentiment::try_solve_sharded_problem;

    let c = corpus();
    let mut pipeline = PipelineConfig::paper_defaults();
    pipeline.vocab.min_count = 1;
    let map = PartitionMap::even(c.num_users(), 4);
    let problem = build_offline_sharded_ghost(&c, 3, map, &pipeline);
    assert_eq!(problem.dropped_retweets, 0);
    assert!(
        problem.ghost_edges > 0,
        "the corpus re-tweets across shards"
    );
    assert!(!problem.ghosts.is_empty(), "ghost links connect owners");

    let cfg = OfflineConfig {
        k: 3,
        max_iters: 20,
        tol: 1e-7,
        ..Default::default()
    };
    let a = try_solve_sharded_problem(&problem, &cfg).unwrap();
    let b = try_solve_sharded_problem(&problem, &cfg).unwrap();
    assert!(a.objective.is_finite());
    assert_eq!(a.sf, b.sf, "the ghost-coupled solve is deterministic");
    // Every linked ghost row mirrors its owner after the final
    // broadcast round.
    for link in &problem.ghosts {
        assert_eq!(
            a.shards[link.shard].factors.su.row(link.row),
            a.shards[link.owner_shard].factors.su.row(link.owner_row),
            "ghost ({}, {}) must carry its owner's factor",
            link.shard,
            link.row
        );
    }
}

#[test]
fn router_rejects_producer_filled_ghost_seeds() {
    let c = corpus();
    let engine = fleet(&c, 2, true);
    let mut snap = EngineSnapshot::new(0);
    snap.push_tokens(0, vec!["hello".into()]);
    snap.ghosts.push((5, vec![0.5, 0.3, 0.2]));
    let err = engine.ingest(snap).unwrap_err();
    assert_eq!(err.kind(), TgsErrorKind::InvalidArgument);
    assert_eq!(engine.steps(), 0, "the rejected snapshot must not commit");
}

#[test]
fn inapplicable_plans_are_typed_errors_and_leave_the_fleet_intact() {
    let c = corpus();
    let engine = fleet(&c, 2, false);
    stream(&engine, &c, &windows(&c));
    let before = engine.query().timeline(..).unwrap();
    let bad = RepartitionPlan::single(RepartitionOp::Split {
        shard: 7,
        at: 1_000,
    });
    let err = engine.rebalance(&bad).unwrap_err();
    assert_eq!(err.kind(), TgsErrorKind::InvalidArgument);
    assert_eq!(engine.shards(), 2);
    assert_eq!(engine.query().timeline(..).unwrap(), before);
    // An empty plan is a no-op, not an error.
    let map = engine.rebalance(&RepartitionPlan::default()).unwrap();
    assert_eq!(map, engine.map());
    // PartitionMap::even round-trips through the checkpoint unchanged.
    let ckpt = engine.checkpoint().unwrap();
    let restored = ShardedEngine::restore(&ckpt).unwrap();
    assert_eq!(restored.map(), PartitionMap::even(c.num_users(), 2));
}

#[test]
fn auto_merge_drains_the_coldest_shard_leftward() {
    // Shards 0 and 1 stay busy while shard 2's range goes quiet; the
    // merge policy must fold the cold shard into its left neighbour
    // without losing any of its users' history.
    let c = corpus(); // 30 users → shards own [0,10), [10,20), [20,30)
    let engine = fleet(&c, 3, false);
    // Nothing routed yet: every shard is equally cold, so no merge.
    assert!(engine.maybe_merge(0.5).unwrap().is_none());
    for t in 0..4u64 {
        let mut snap = EngineSnapshot::new(t);
        for _ in 0..6 {
            snap.push_tokens(2, vec!["busy".into(), "topic".into()]);
            snap.push_tokens(12, vec!["busy".into(), "takes".into()]);
        }
        snap.push_tokens(22, vec!["quiet".into()]);
        engine.ingest(snap).unwrap();
    }
    engine.flush().unwrap();
    let before = all_user_state(&engine, &c);
    let map = engine.maybe_merge(0.5).unwrap().expect("shard 2 is cold");
    assert_eq!(map.shards(), 2);
    assert_eq!(
        map.starts(),
        &[0, 10],
        "the cold trailing shard folds into its left neighbour"
    );
    // Migration is lossless: the drained users answer as before.
    assert_eq!(all_user_state(&engine, &c), before);
    // The surviving topology is balanced enough for the same threshold.
    assert!(engine.maybe_merge(0.5).unwrap().is_none());
}

#[test]
fn auto_merge_of_the_leading_shard_folds_rightward() {
    // Shard 0 has no left neighbour, so when it is the cold one the
    // merge runs the other way: shard 1 absorbs it.
    let c = corpus();
    let engine = fleet(&c, 3, false);
    for t in 0..4u64 {
        let mut snap = EngineSnapshot::new(t);
        for _ in 0..6 {
            snap.push_tokens(12, vec!["busy".into(), "topic".into()]);
            snap.push_tokens(22, vec!["busy".into(), "takes".into()]);
        }
        snap.push_tokens(2, vec!["quiet".into()]);
        engine.ingest(snap).unwrap();
    }
    engine.flush().unwrap();
    let map = engine.maybe_merge(0.5).unwrap().expect("shard 0 is cold");
    assert_eq!(
        map.starts(),
        &[0, 20],
        "the leading shard merges into its right neighbour"
    );
    assert!(engine.query().user_sentiment(2, 3).is_ok());
}

#[test]
fn merge_is_a_no_op_without_a_cold_shard() {
    let c = corpus();
    // A single shard has nothing to merge with, whatever the threshold.
    let single = fleet(&c, 1, false);
    stream(&single, &c, &windows(&c)[..2]);
    assert!(single.maybe_merge(0.9).unwrap().is_none());

    // A balanced fleet stays put below the threshold.
    let balanced = fleet(&c, 3, false);
    for t in 0..3u64 {
        let mut snap = EngineSnapshot::new(t);
        for u in [2usize, 12, 22] {
            snap.push_tokens(u, vec!["even".into(), "keel".into()]);
        }
        balanced.ingest(snap).unwrap();
    }
    balanced.flush().unwrap();
    assert!(balanced.maybe_merge(0.5).unwrap().is_none());
    assert_eq!(balanced.shards(), 3);
}

#!/usr/bin/env bash
# Loopback fleet smoke: two real `tgs shard` server processes plus the
# `tgs serve` router on 127.0.0.1 must stream the tiny preset to a
# timeline and checkpoint byte-identical to in-process
# `tgs stream --shards 2`, answer a query roundtrip on the assembled
# checkpoint, and shut down cleanly on --terminate.
#
# Usage: ./scripts/net_smoke.sh   (run from anywhere; builds release tgs)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build release tgs"
cargo build --release --quiet --bin tgs
TGS=target/release/tgs

DIR=$(mktemp -d -t tgs_net_smoke.XXXXXX)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

echo "==> generate tiny corpus"
"$TGS" generate --preset tiny --seed 42 --out "$DIR/corpus.tsv"

echo "==> launch 2 shard servers"
start_shard() { # $1: banner file
    "$TGS" shard --listen 127.0.0.1:0 >"$1" &
    PIDS+=("$!")
    for _ in $(seq 1 100); do
        if grep -q "^listening on " "$1"; then return 0; fi
        sleep 0.05
    done
    echo "shard server never announced its address" >&2
    return 1
}
start_shard "$DIR/a.log"
start_shard "$DIR/b.log"
A=$(sed -n 's/^listening on //p' "$DIR/a.log" | head -1)
B=$(sed -n 's/^listening on //p' "$DIR/b.log" | head -1)
echo "    shards at $A and $B"

echo "==> tgs serve (router over the loopback fleet)"
"$TGS" serve --shards "$A,$B" --corpus "$DIR/corpus.tsv" \
    --out "$DIR/serve.tsv" --checkpoint "$DIR/serve.ckpt" \
    --stats --terminate

echo "==> tgs stream --shards 2 (in-process control)"
"$TGS" stream --shards 2 --corpus "$DIR/corpus.tsv" \
    --out "$DIR/stream.tsv" --checkpoint "$DIR/stream.ckpt"

echo "==> outputs must be byte-identical"
cmp "$DIR/serve.tsv" "$DIR/stream.tsv"
cmp "$DIR/serve.ckpt" "$DIR/stream.ckpt"

echo "==> query roundtrip on the fleet-assembled checkpoint"
"$TGS" query --checkpoint "$DIR/serve.ckpt" --shard-info >"$DIR/query.out"
"$TGS" query --checkpoint "$DIR/serve.ckpt" --timeline all >>"$DIR/query.out"
test -s "$DIR/query.out"

echo "==> --terminate must have stopped both servers"
for i in $(seq 1 100); do
    alive=0
    for pid in "${PIDS[@]}"; do
        if kill -0 "$pid" 2>/dev/null; then alive=1; fi
    done
    [[ "$alive" == 0 ]] && break
    if [[ "$i" == 100 ]]; then
        echo "shard servers still running after --terminate" >&2
        exit 1
    fi
    sleep 0.05
done
PIDS=()

echo "net smoke green."

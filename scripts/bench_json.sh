#!/usr/bin/env bash
# Regenerates the machine-readable benchmark artifacts tracked in-repo.
#
# BENCH_kernels.json / BENCH_solvers.json give every future PR a perf
# trajectory baseline: the `offline_iteration_k10/seed_baseline` series
# is a frozen snapshot of the pre-workspace implementation (see
# crates/bench/src/seed_baseline.rs) and must keep its meaning forever.
# The `sharded_offline_solve/10_iters/{1,2,4}` series tracks the
# user-range sharded solver (parallel shard-local sweeps + global Sf
# merge); on a single-vCPU host it measures sharding overhead, on
# multi-core hosts it is the scaling series (see PERF.md).
#
# Set BENCH_FAST=1 for a quick smoke regeneration (fewer samples).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_JSON="$PWD/BENCH_kernels.json" cargo bench -p tgs_bench --bench kernels
BENCH_JSON="$PWD/BENCH_solvers.json" cargo bench -p tgs_bench --bench solvers
echo "wrote BENCH_kernels.json and BENCH_solvers.json"

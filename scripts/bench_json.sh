#!/usr/bin/env bash
# Regenerates the machine-readable benchmark artifacts tracked in-repo.
#
# BENCH_kernels.json / BENCH_solvers.json give every future PR a perf
# trajectory baseline: the `offline_iteration_k10/seed_baseline` series
# is a frozen snapshot of the pre-workspace implementation (see
# crates/bench/src/seed_baseline.rs) and must keep its meaning forever.
# The `sharded_offline_solve/10_iters/{1,2,4}` series tracks the
# user-range sharded solver (parallel shard-local sweeps + global Sf
# merge); on a single-vCPU host it measures sharding overhead, on
# multi-core hosts it is the scaling series (see PERF.md). PR 4 added
# `simd_kernels/{scalar,dispatched}/*` (per-kernel SIMD-dispatch A/B;
# results are bit-identical across tiers, the series records the speed
# delta only) and `online_step_rebind/{cold,amortized}` (per-snapshot
# `UpdateWorkspace::bind` cost, throwaway vs fingerprint-amortized).
# PR 5 added `sharded_offline_solve/zipf_skew/4` (an activity-skewed
# corpus under an even 4-way split: the hottest shard gates the
# iteration — the case `tgs stream --max-skew` exists to fix) and
# `sharded_rebalance/move_roundtrip_users/{25,100,400}` (a live
# boundary-move rebalance and its inverse on a warmed 4-shard fleet:
# two quiesces + two export/import migrations of that many users).
# PR 6 (persistent worker pool) added:
#   `pool_overhead/{pooled,scoped_spawn}/{1000,10000,100000}` — the same
#     2-chunk row dispatch through the persistent pool vs a fresh
#     `std::thread::scope` spawn (the pre-pool implementation); the gap
#     is pure dispatch cost.
#   `thread_scaling/{gram_100k,mult_update_100k}/{1,2,4}` — row-parallel
#     kernel shapes at pinned TGS_THREADS budgets (scaling curve on
#     multi-core hosts, dispatch overhead on a single vCPU).
#   `sharded_offline_solve/{10_iters,zipf_skew}_4shards_threads/{1,2,4}`
#     — the 4-shard solve at pinned pool budgets; results are
#     bit-identical at every budget, the series is wall-clock only.
#   `spmm_prefetch/mul_dense_into_40k/{0,2,4,8}` — the TGS_PREFETCH
#     lookahead sweep for the CSR-gather SpMM (0 = hints off).
# PR 8 added BENCH_soak.json (written by `tgs soak`, not by this
# script): the `soak/{unbatched,batched}` series drives the identical
# seeded Zipf firehose through per-snapshot `try_ingest` and through
# the `BatchingIngest` front end, recording throughput, drop rate,
# queue depth and the p50/p99/p999 step-latency quantiles. Regenerate
# with `./target/release/tgs soak` at the repo root; the `--smoke`
# variant is the ci.sh gate (artifacts under target/bench-smoke/).
# PR 10 added BENCH_ckpt.json:
#   `ckpt_encode_n40000_s{1,4}/{full,delta}_<bytes>B/<pct>` — full
#     snapshot vs delta checkpoint encode on a 40k-user engine, at
#     1/5/20/100% of users touched per step (plus `apply_delta` at the
#     5% point). The measured artifact sizes are baked into the ids so
#     the JSON carries bytes alongside nanoseconds; acceptance is the
#     5% point staying ≥5× smaller and faster than full. BENCH_FAST=1
#     shrinks the corpus to 4k users (smoke only, not for committing).
#
# Usage:
#   ./scripts/bench_json.sh           # full regeneration (commit these)
#   ./scripts/bench_json.sh --quick   # bench-smoke mode: BENCH_FAST=1,
#                                     # artifacts land in target/bench-smoke/
#                                     # (the ci.sh gate so bench code can't
#                                     # bit-rot; numbers NOT for committing)
#
# Set BENCH_FAST=1 yourself for a quick regeneration in-place.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="$PWD"
if [[ "${1:-}" == "--quick" ]]; then
    export BENCH_FAST=1
    OUT_DIR="$PWD/target/bench-smoke"
    mkdir -p "$OUT_DIR"
    echo "bench smoke mode: fast samples, artifacts under target/bench-smoke/"
fi

BENCH_JSON="$OUT_DIR/BENCH_kernels.json" cargo bench -p tgs_bench --bench kernels
BENCH_JSON="$OUT_DIR/BENCH_solvers.json" cargo bench -p tgs_bench --bench solvers
BENCH_JSON="$OUT_DIR/BENCH_ckpt.json" cargo bench -p tgs_bench --bench ckpt
echo "wrote $OUT_DIR/BENCH_{kernels,solvers,ckpt}.json"

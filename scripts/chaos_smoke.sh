#!/usr/bin/env bash
# Chaos smoke: `tgs serve` over a 2-shard loopback fleet with a seeded
# TGS_FAULTS schedule truncating a quarter of the INGEST frames. The
# supervised transports must rebuild every corrupted slot mid-stream
# (respawns > 0, replayed_docs > 0 in the recovery stats) and the final
# timeline + checkpoint must still be byte-identical to a fault-free
# in-process `tgs stream --shards 2` — zero lost documents.
#
# Usage: ./scripts/chaos_smoke.sh   (run from anywhere; builds release tgs)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build release tgs"
cargo build --release --quiet --bin tgs
TGS=target/release/tgs

DIR=$(mktemp -d -t tgs_chaos_smoke.XXXXXX)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

echo "==> generate tiny corpus"
"$TGS" generate --preset tiny --seed 42 --out "$DIR/corpus.tsv"

echo "==> launch 2 shard servers"
start_shard() { # $1: banner file
    "$TGS" shard --listen 127.0.0.1:0 >"$1" &
    PIDS+=("$!")
    for _ in $(seq 1 100); do
        if grep -q "^listening on " "$1"; then return 0; fi
        sleep 0.05
    done
    echo "shard server never announced its address" >&2
    return 1
}
start_shard "$DIR/a.log"
start_shard "$DIR/b.log"
A=$(sed -n 's/^listening on //p' "$DIR/a.log" | head -1)
B=$(sed -n 's/^listening on //p' "$DIR/b.log" | head -1)
echo "    shards at $A and $B"

echo "==> tgs serve under seeded fault injection"
TGS_FAULTS="seed=11, ingest.truncate=0.25" \
    "$TGS" serve --shards "$A,$B" --corpus "$DIR/corpus.tsv" \
    --out "$DIR/chaos.tsv" --checkpoint "$DIR/chaos.ckpt" \
    --stats --terminate 2>"$DIR/serve.err"
sed 's/^/    /' "$DIR/serve.err"

echo "==> tgs stream --shards 2 (fault-free control)"
"$TGS" stream --shards 2 --corpus "$DIR/corpus.tsv" \
    --out "$DIR/control.tsv" --checkpoint "$DIR/control.ckpt"

echo "==> chaos outputs must be byte-identical to the control"
cmp "$DIR/chaos.tsv" "$DIR/control.tsv"
cmp "$DIR/chaos.ckpt" "$DIR/control.ckpt"

echo "==> recovery counters must show the chaos was real"
RESPAWNS=$(sed -n 's/^recovery: respawns \([0-9]*\).*/\1/p' "$DIR/serve.err" | head -1)
REPLAYED=$(sed -n 's/.*replayed_docs \([0-9]*\).*/\1/p' "$DIR/serve.err" | head -1)
if [[ -z "$RESPAWNS" || -z "$REPLAYED" ]]; then
    echo "no recovery stats line in serve stderr" >&2
    exit 1
fi
if [[ "$RESPAWNS" -lt 1 || "$REPLAYED" -lt 1 ]]; then
    echo "fault schedule injected nothing (respawns=$RESPAWNS replayed_docs=$REPLAYED)" >&2
    exit 1
fi
echo "    respawns=$RESPAWNS replayed_docs=$REPLAYED"

echo "==> --terminate must have stopped both servers"
for i in $(seq 1 100); do
    alive=0
    for pid in "${PIDS[@]}"; do
        if kill -0 "$pid" 2>/dev/null; then alive=1; fi
    done
    [[ "$alive" == 0 ]] && break
    if [[ "$i" == 100 ]]; then
        echo "shard servers still running after --terminate" >&2
        exit 1
    fi
    sleep 0.05
done
PIDS=()

echo "chaos smoke green."

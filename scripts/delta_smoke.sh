#!/usr/bin/env bash
# Delta-checkpoint smoke: the O(changes) snapshot path end to end.
#
# Leg 1 (local): `tgs stream --checkpoint-every 2 --delta` anchors a
# base, ships per-window deltas, and verifies base ⊕ deltas stays
# byte-identical to a full snapshot (the CLI hard-fails otherwise);
# outputs must byte-match a plain no-cadence run.
#
# Leg 2 (kill → restore): `tgs serve` over a 2-shard loopback fleet
# under a seeded TGS_FAULTS schedule. The supervisor keeps base+chain
# baselines and refreshes them with DELTA_SINCE; faulted slots are
# rebuilt from base ⊕ deltas and the final timeline + checkpoint must
# still be byte-identical to the fault-free control — and the stats
# must show both real respawns and real delta refreshes.
#
# Usage: ./scripts/delta_smoke.sh   (run from anywhere; builds release tgs)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build release tgs"
cargo build --release --quiet --bin tgs
TGS=target/release/tgs

DIR=$(mktemp -d -t tgs_delta_smoke.XXXXXX)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

echo "==> generate tiny corpus"
"$TGS" generate --preset tiny --seed 42 --out "$DIR/corpus.tsv"

echo "==> control run (no cadence)"
"$TGS" stream --shards 2 --corpus "$DIR/corpus.tsv" \
    --out "$DIR/control.tsv" --checkpoint "$DIR/control.ckpt"

echo "==> delta cadence run (base + per-window deltas, self-verifying)"
"$TGS" stream --shards 2 --corpus "$DIR/corpus.tsv" \
    --checkpoint-every 2 --delta \
    --out "$DIR/delta.tsv" --checkpoint "$DIR/delta.ckpt" 2>"$DIR/delta.err"
sed 's/^/    /' "$DIR/delta.err"
grep -q "base+deltas verified byte-identical" "$DIR/delta.err" || {
    echo "stream --delta never reported its verification" >&2
    exit 1
}
DELTAS=$(sed -n 's/.* \([0-9]*\) delta(s).*/\1/p' "$DIR/delta.err" | head -1)
if [[ -z "$DELTAS" || "$DELTAS" -lt 1 ]]; then
    echo "delta cadence shipped no deltas (deltas=${DELTAS:-none})" >&2
    exit 1
fi
cmp "$DIR/delta.tsv" "$DIR/control.tsv"
cmp "$DIR/delta.ckpt" "$DIR/control.ckpt"

echo "==> launch 2 shard servers"
start_shard() { # $1: banner file
    "$TGS" shard --listen 127.0.0.1:0 >"$1" &
    PIDS+=("$!")
    for _ in $(seq 1 100); do
        if grep -q "^listening on " "$1"; then return 0; fi
        sleep 0.05
    done
    echo "shard server never announced its address" >&2
    return 1
}
start_shard "$DIR/a.log"
start_shard "$DIR/b.log"
A=$(sed -n 's/^listening on //p' "$DIR/a.log" | head -1)
B=$(sed -n 's/^listening on //p' "$DIR/b.log" | head -1)
echo "    shards at $A and $B"

echo "==> tgs serve: delta-refreshed baselines under fault injection"
TGS_FAULTS="seed=23, ingest.truncate=0.25" \
    "$TGS" serve --shards "$A,$B" --corpus "$DIR/corpus.tsv" \
    --checkpoint-every 1 \
    --out "$DIR/served.tsv" --checkpoint "$DIR/served.ckpt" \
    --stats --terminate 2>"$DIR/serve.err"
sed 's/^/    /' "$DIR/serve.err"

echo "==> restored fleet outputs must be byte-identical to the control"
cmp "$DIR/served.tsv" "$DIR/control.tsv"
cmp "$DIR/served.ckpt" "$DIR/control.ckpt"

echo "==> stats must show real respawns AND real delta refreshes"
RESPAWNS=$(sed -n 's/^recovery: respawns \([0-9]*\).*/\1/p' "$DIR/serve.err" | head -1)
REFRESHES=$(sed -n 's/^supervisor: delta_refreshes \([0-9]*\).*/\1/p' "$DIR/serve.err" | head -1)
if [[ -z "$RESPAWNS" || -z "$REFRESHES" ]]; then
    echo "missing recovery/supervisor stats in serve stderr" >&2
    exit 1
fi
if [[ "$RESPAWNS" -lt 1 || "$REFRESHES" -lt 1 ]]; then
    echo "delta round-trip exercised nothing (respawns=$RESPAWNS delta_refreshes=$REFRESHES)" >&2
    exit 1
fi
echo "    respawns=$RESPAWNS delta_refreshes=$REFRESHES"

echo "delta smoke green."

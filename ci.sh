#!/usr/bin/env bash
# CI entrypoint: format check, lints, docs, release build, tests.
#
# Usage:
#   ./ci.sh            # the full gate (what .github/workflows/ci.yml runs)
#   ./ci.sh --bench    # additionally regenerate BENCH_*.json artifacts
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> bench smoke (quick run so bench code can't bit-rot)"
./scripts/bench_json.sh --quick

echo "==> net smoke (2 shard servers + router on loopback)"
./scripts/net_smoke.sh

echo "==> chaos smoke (seeded fault injection + supervised recovery)"
./scripts/chaos_smoke.sh

echo "==> delta smoke (delta checkpoints: stream cadence + kill/restore round trip)"
./scripts/delta_smoke.sh

echo "==> soak smoke (Zipf firehose through the batching front end)"
mkdir -p target/bench-smoke
./target/release/tgs soak --smoke --out target/bench-smoke/BENCH_soak.json

if [[ "${1:-}" == "--bench" ]]; then
    echo "==> regenerating benchmark artifacts"
    ./scripts/bench_json.sh
fi

echo "CI green."

//! Minimal, dependency-free stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s non-poisoning `lock()`
//! signature (a poisoned std lock is recovered transparently, matching
//! parking_lot's "no poisoning" semantics).

use std::sync::MutexGuard;

/// A mutual-exclusion primitive whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}

//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of the `rand` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64) and uniform range sampling through [`RngExt::random_range`].
//! Determinism per seed is the only contract the workspace relies on —
//! the exact stream does not need to match upstream `rand`.

/// Core generator trait: a source of uniformly distributed `u64`s.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods on any [`Rng`] (blanket-implemented), mirroring the
/// upstream `Rng`/`RngExt` split so both import styles work.
pub trait RngExt: Rng {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Ranges that can be sampled uniformly, producing values of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on empty ranges.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator seeded via SplitMix64 — fast, high-quality,
    /// and fully deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.random_range(2usize..=4);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}

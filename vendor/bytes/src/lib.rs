//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! Implements exactly the surface the snapshot store uses: `BytesMut` as a
//! growable write buffer, `Bytes` as a cheaply-cloneable frozen buffer with
//! a read cursor, and the `Buf`/`BufMut` traits carrying the little-endian
//! accessors.

use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer with a read cursor.
///
/// Reads (`get_*`) advance the cursor; clones share the underlying
/// allocation and carry independent cursors.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.into(),
            pos: 0,
        }
    }

    /// Remaining (unread) length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread tail as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: data.into(),
            pos: 0,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// A growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read side: cursor-advancing accessors.
pub trait Buf {
    /// Unread bytes remaining.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out and advances. Panics when short.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64` and advances.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Write side: appending accessors.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64_f64() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0xDEAD_BEEF);
        buf.put_f64_le(-2.5);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 16);
        assert_eq!(b.get_u64_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_f64_le(), -2.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn clones_have_independent_cursors() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u64_le(2);
        let a = buf.freeze();
        let mut b = a.clone();
        assert_eq!(b.get_u64_le(), 1);
        assert_eq!(a.len(), 16, "original cursor unmoved");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"abc");
        b.get_u64_le();
    }
}

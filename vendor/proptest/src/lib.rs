//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements
//! the slice of proptest the workspace's property tests use: composable
//! [`strategy::Strategy`] values (ranges, tuples, `Just`, a regex-subset
//! string generator, `collection::vec`/`btree_set`, `option::of`,
//! `prop_map`, `prop_oneof!`) plus the [`proptest!`]/[`prop_assert!`]
//! macros. Cases are generated from a seed derived deterministically from
//! the test's module path, so runs are reproducible. **No shrinking** is
//! performed — a failing case reports its inputs via `Debug` where
//! available, and the case index is always printed.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body runs
/// for `Config::cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        #[test]
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body;
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property failed at case {} of {}: {}", case, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

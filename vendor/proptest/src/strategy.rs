//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, `Just`, `prop_map` adapters, boxed unions, and a regex-subset
//! string generator for `&str` patterns like `"[a-z]{2,8}"`.

use crate::test_runner::TestRng;
use rand::RngExt;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking — a
/// strategy simply produces a value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// `&str` patterns act as string strategies over a regex subset:
/// a sequence of literal characters and character classes (`[a-z0-9_]`,
/// with ranges), each optionally quantified by `{n}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let mut alphabet: Vec<char> = Vec::new();
        if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed character class in pattern {pattern:?}"));
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    alphabet.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    alphabet.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            alphabet.push(c);
            i += 1;
        }
        assert!(
            !alphabet.is_empty(),
            "empty character class in pattern {pattern:?}"
        );

        // Parse an optional {n} / {m,n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let parsed = match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            };
            i = close + 1;
            parsed
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "bad quantifier bounds in pattern {pattern:?}");

        let count = rng.random_range(lo..=hi);
        for _ in 0..count {
            out.push(alphabet[rng.random_range(0..alphabet.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn pattern_class_and_quantifier() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{2,8}".generate(&mut r);
            assert!(s.len() >= 2 && s.len() <= 8, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn pattern_literal_prefix() {
        let mut r = rng();
        let s = "#[a-z]{2,4}".generate(&mut r);
        assert!(s.starts_with('#'));
        assert!(s.len() >= 3 && s.len() <= 5);
    }

    #[test]
    fn ranges_tuples_map_and_just() {
        let mut r = rng();
        let v = (0usize..5, 0.0..1.0f64).generate(&mut r);
        assert!(v.0 < 5 && (0.0..1.0).contains(&v.1));
        let m = (0usize..5).prop_map(|x| x * 2).generate(&mut r);
        assert!(m % 2 == 0 && m < 10);
        assert_eq!(Just(7u8).generate(&mut r), 7);
    }

    #[test]
    fn union_picks_all_arms_eventually() {
        let u = Union::new(vec![(0usize..1).boxed(), (10usize..11).boxed()]);
        let mut seen = [false; 2];
        let mut r = rng();
        for _ in 0..200 {
            match u.generate(&mut r) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }
}

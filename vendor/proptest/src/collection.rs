//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::collections::BTreeSet;

/// Size specification for collection strategies: an exact count or a
/// half-open range of counts.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            rng.random_range(self.lo..self.hi_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
///
/// When the element strategy's support is smaller than the target size,
/// the set saturates below target after a bounded number of attempts
/// rather than spinning forever.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 20 + 20 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut rng = TestRng::for_case("collection::tests", 0);
        assert_eq!(vec(0usize..9, 6).generate(&mut rng).len(), 6);
        for _ in 0..50 {
            let v = vec(0usize..9, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_saturates_gracefully() {
        let mut rng = TestRng::for_case("collection::tests", 1);
        // only 3 possible values but target sizes up to 7
        let s = btree_set(0usize..3, 5..8).generate(&mut rng);
        assert!(!s.is_empty() && s.len() <= 3);
    }
}

//! Test configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream proptest defaults to 256; this shim trades a little
        // coverage for suite latency (no shrinking means failures are
        // cheap to re-run with more cases when debugging).
        Config { cases: 64 }
    }
}

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG handed to strategies: seeded from the test's fully
/// qualified name and the case index, so every run explores the same
/// cases (reproducible CI) while different tests explore different data.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37)),
        }
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

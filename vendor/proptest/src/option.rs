//! The `option::of` strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// Strategy for `Option<S::Value>`: `Some` with probability 3/4.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.random_range(0..4usize) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn produces_both_variants() {
        let s = of(0usize..10);
        let mut rng = TestRng::for_case("option::tests", 0);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}

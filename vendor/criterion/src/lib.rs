//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the measurement surface the workspace's benches use
//! (`benchmark_group`, `bench_with_input`, `bench_function`, `iter`,
//! `iter_batched`) with a simple wall-clock protocol: a warm-up phase
//! estimates the per-iteration cost, then `sample_size` samples of a
//! calibrated iteration count are timed and summarized (mean / median /
//! min ns per iteration).
//!
//! Two environment variables control it:
//!
//! * `BENCH_JSON=<path>` — write all results of the run as a JSON
//!   artifact (the `BENCH_kernels.json` / `BENCH_solvers.json` files
//!   tracked in-repo come from this).
//! * `BENCH_FAST=1` — clamp warm-up and sample counts for smoke runs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// How inputs are regenerated for `iter_batched`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many iterations per setup (cheap inputs).
    SmallInput,
    /// Few iterations per setup (expensive inputs).
    LargeInput,
    /// Exactly one iteration per setup (stateful inputs).
    PerIteration,
}

impl BatchSize {
    fn iters_per_setup(self) -> u64 {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `group/function/parameter` naming.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// `group/parameter` naming.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self, group: &str) -> String {
        let mut s = group.to_string();
        if let Some(f) = &self.function {
            s.push('/');
            s.push_str(f);
        }
        if let Some(p) = &self.parameter {
            s.push('/');
            s.push_str(p);
        }
        s
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full slash-separated id, e.g. `spmm/mul_dense/1000`.
    pub id: String,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// The benchmark driver: collects results, prints a summary line per
/// benchmark, and optionally writes a JSON artifact at the end.
pub struct Criterion {
    results: Vec<BenchResult>,
    default_sample_size: usize,
    fast: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = std::env::var("BENCH_FAST").is_ok_and(|v| v == "1");
        Criterion {
            results: Vec::new(),
            default_sample_size: if fast { 5 } else { 20 },
            fast,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks a closure under a top-level name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let sample_size = self.default_sample_size;
        self.run_one(name.to_string(), sample_size, &mut f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, f: &mut F) {
        let mut bencher = Bencher {
            sample_size,
            warmup: if self.fast {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(200)
            },
            sample_target: if self.fast {
                Duration::from_millis(5)
            } else {
                Duration::from_millis(20)
            },
            result: None,
        };
        f(&mut bencher);
        let Some((mut per_iter_ns, iters)) = bencher.result.take() else {
            eprintln!("warning: benchmark {id} measured nothing");
            return;
        };
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        let samples = per_iter_ns.len();
        let mean = per_iter_ns.iter().sum::<f64>() / samples as f64;
        let median = if samples % 2 == 1 {
            per_iter_ns[samples / 2]
        } else {
            0.5 * (per_iter_ns[samples / 2 - 1] + per_iter_ns[samples / 2])
        };
        let min = per_iter_ns[0];
        println!(
            "bench {id:<55} median {:>12.1} ns/iter  (mean {:.1}, min {:.1}, {} x {} iters)",
            median, mean, min, samples, iters
        );
        self.results.push(BenchResult {
            id,
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
            samples,
            iters_per_sample: iters,
        });
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the run footer and writes the `BENCH_JSON` artifact if
    /// requested. Called by `criterion_main!`.
    pub fn finalize(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            let json = self.to_json();
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {} benchmark results to {path}", self.results.len());
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema_version\": 1,\n  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": {:?}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}",
                r.id,
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.samples,
                r.iters_per_sample,
                if i + 1 == self.results.len() { "\n" } else { ",\n" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with an input value and a parameterized id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = id.full_name(&self.name);
        let sample_size = if self.criterion.fast {
            self.sample_size.min(5)
        } else {
            self.sample_size
        };
        self.criterion
            .run_one(full, sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let sample_size = if self.criterion.fast {
            self.sample_size.min(5)
        } else {
            self.sample_size
        };
        self.criterion
            .run_one(full, sample_size, &mut |b: &mut Bencher| f(b));
        self
    }

    /// Ends the group (measurement happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Measures one benchmark body.
pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    sample_target: Duration,
    result: Option<(Vec<f64>, u64)>,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters < 3 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let iters = calibrated_iters(per_iter, self.sample_target);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some((samples, iters));
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let batch = size.iters_per_setup();

        // Warm-up with a single batch.
        let mut inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
        let warm_start = Instant::now();
        let mut outputs: Vec<R> = Vec::with_capacity(batch as usize);
        for input in inputs.drain(..) {
            outputs.push(routine(input));
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / batch as f64;
        drop(outputs);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let mut outputs: Vec<R> = Vec::with_capacity(batch as usize);
            let start = Instant::now();
            for input in inputs.drain(..) {
                outputs.push(routine(input));
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
            drop(outputs);
        }
        let _ = per_iter;
        self.result = Some((samples, batch));
    }
}

fn calibrated_iters(per_iter_ns: f64, target: Duration) -> u64 {
    let target_ns = target.as_nanos() as f64;
    (target_ns / per_iter_ns.max(0.1)).clamp(1.0, 10_000_000.0) as u64
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($function(criterion);)+
        }
    };
}

/// Declares `main` running the given groups and finalizing the report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion {
            results: Vec::new(),
            default_sample_size: 3,
            fast: true,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| {
            b.iter(|| std::hint::black_box((0..n).sum::<usize>()))
        });
        group.bench_function("h", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::PerIteration,
            )
        });
        group.finish();
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "g/f/7");
        assert_eq!(c.results()[1].id, "g/h");
        assert!(c.results().iter().all(|r| r.median_ns > 0.0));
    }

    #[test]
    fn json_shape() {
        let mut c = Criterion {
            results: Vec::new(),
            default_sample_size: 2,
            fast: true,
        };
        c.bench_function("solo", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let json = c.to_json();
        assert!(json.contains("\"id\": \"solo\""));
        assert!(json.contains("\"schema_version\": 1"));
    }
}

//! # tripartite-sentiment
//!
//! A complete Rust reproduction of **"Tripartite Graph Clustering for
//! Dynamic Sentiment Analysis on Social Media"** (Zhu, Galstyan, Cheng,
//! Lerman, 2014): joint tweet-level and user-level sentiment analysis by
//! co-clustering the feature–tweet–user tripartite graph with orthogonal
//! non-negative matrix tri-factorization, offline (Algorithm 1) and
//! online over streams (Algorithm 2).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`linalg`] — sparse/dense kernels built for multiplicative updates;
//! * [`text`] — tweet tokenization, tf-idf, sentiment lexicons (`Sf0`);
//! * [`graph`] — the user–user re-tweet graph substrate (`Gu`, `Lu`);
//! * [`data`] — the synthetic California-ballot corpus generator
//!   (Prop 30 / Prop 37 presets);
//! * [`core`] — the offline/online tri-clustering solvers;
//! * [`baselines`] — SVM, NB, LP, UserReg, ESSA, ONMTF, BACG, k-means;
//! * [`eval`] — clustering accuracy, NMI, ARI, Hungarian assignment.
//!
//! ## Quickstart
//!
//! ```
//! use tripartite_sentiment::prelude::*;
//!
//! // 1. Generate a corpus (stand-in for the 2012 Twitter crawl).
//! let corpus = generate(&presets::tiny(42));
//! // 2. Assemble the tripartite matrices.
//! let mut pipe = PipelineConfig::paper_defaults();
//! pipe.vocab.min_count = 2;
//! let inst = build_offline(&corpus, 3, &pipe);
//! // 3. Co-cluster tweets, users and features.
//! let input = TriInput {
//!     xp: &inst.xp, xu: &inst.xu, xr: &inst.xr,
//!     graph: &inst.graph, sf0: &inst.sf0,
//! };
//! let result = solve_offline(&input, &OfflineConfig::default());
//! // 4. Evaluate against ground truth.
//! let acc = clustering_accuracy(&result.tweet_labels(), &inst.tweet_truth);
//! assert!(acc > 0.5);
//! ```

pub use tgs_baselines as baselines;
pub use tgs_core as core;
pub use tgs_data as data;
pub use tgs_eval as eval;
pub use tgs_graph as graph;
pub use tgs_linalg as linalg;
pub use tgs_text as text;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use tgs_baselines::{
        kmeans, propagate_labels, solve_bacg, solve_essa, solve_onmtf, subsample_labels, userreg,
        BacgConfig, EssaConfig, FullBatch, KMeansConfig, LabelPropConfig, LinearSvm, MiniBatch,
        NaiveBayes, SvmConfig, UserRegConfig,
    };
    pub use tgs_core::{
        solve_offline, InitStrategy, ObjectiveParts, OfflineConfig, OnlineConfig, OnlineSolver,
        SnapshotData, TriFactors, TriInput,
    };
    pub use tgs_data::{
        build_offline, corpus_stats, daily_tweet_counts, day_windows, generate, presets, top_words,
        Corpus, GeneratorConfig, ProblemInstance, SnapshotBuilder,
    };
    pub use tgs_eval::{clustering_accuracy, nmi, ConfusionMatrix};
    pub use tgs_graph::UserGraph;
    pub use tgs_linalg::{CsrMatrix, DenseMatrix};
    pub use tgs_text::{Lexicon, PipelineConfig, Sentiment, Vocabulary};
}

//! # tripartite-sentiment
//!
//! A complete Rust reproduction of **"Tripartite Graph Clustering for
//! Dynamic Sentiment Analysis on Social Media"** (Zhu, Galstyan, Cheng,
//! Lerman, 2014): joint tweet-level and user-level sentiment analysis by
//! co-clustering the feature–tweet–user tripartite graph with orthogonal
//! non-negative matrix tri-factorization, offline (Algorithm 1) and
//! online over streams (Algorithm 2).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`linalg`] — sparse/dense kernels built for multiplicative updates;
//! * [`text`] — tweet tokenization, tf-idf, sentiment lexicons (`Sf0`);
//! * [`graph`] — the user–user re-tweet graph substrate (`Gu`, `Lu`);
//! * [`data`] — the synthetic California-ballot corpus generator
//!   (Prop 30 / Prop 37 presets);
//! * [`core`] — the offline/online tri-clustering solvers and the
//!   [`core::TgsError`] taxonomy;
//! * [`engine`] — [`engine::SentimentEngine`]: the streaming session
//!   facade (async ingest, queryable history, checkpoint/restore), and
//!   [`engine::ShardedEngine`]: the user-range multi-shard router over
//!   `S` such workers (`tgs stream --shards N`);
//! * [`net`] — the distributed fleet: a framed TCP protocol, the
//!   `tgs shard` slot server, [`net::TcpShard`] — a remote
//!   `ShardTransport` the router drives exactly like a local worker
//!   (`tgs serve --shards host:port,...`) — plus the robustness layer:
//!   seeded fault injection ([`net::FaultPolicy`], `TGS_FAULTS`) and the
//!   [`net::Supervisor`]'s automatic respawn/re-seed state machine;
//! * [`load`] — [`load::LoadGen`]: the deterministic Zipf firehose
//!   generator behind `tgs soak`;
//! * [`baselines`] — SVM, NB, LP, UserReg, ESSA, ONMTF, BACG, k-means;
//! * [`eval`] — clustering accuracy, NMI, ARI, Hungarian assignment.
//!
//! ## Quickstart
//!
//! The streaming front door is [`engine::EngineBuilder`] /
//! [`engine::SentimentEngine`]: build once, ingest owned snapshots, query
//! the recorded history.
//!
//! ```
//! use tripartite_sentiment::prelude::*;
//!
//! // 1. Generate a corpus (stand-in for the 2012 Twitter crawl).
//! let corpus = generate(&presets::tiny(42));
//! // 2. Build the engine: fits the global vocabulary + lexicon prior,
//! //    owns the online solver (Algorithm 2) and its ingest worker.
//! let engine = EngineBuilder::new().k(3).max_iters(10).fit(&corpus)?;
//! // 3. Stream daily snapshots; producers never block on a solve.
//! for (lo, hi) in day_windows(corpus.num_days, 4) {
//!     engine.ingest(EngineSnapshot::from_corpus_window(&corpus, lo, hi))?;
//! }
//! engine.flush()?;
//! // 4. Query the history: timeline, per-user sentiment, top words.
//! let query = engine.query();
//! let timeline = query.timeline(..);
//! assert!(!timeline.is_empty());
//! let t = timeline.last().unwrap().timestamp;
//! let author = corpus.tweets[0].author;
//! assert_eq!(query.user_sentiment(author, t)?.distribution.len(), 3);
//! # Ok::<(), TgsError>(())
//! ```
//!
//! The one-shot offline path (Algorithm 1) stays available through
//! [`core::try_solve_offline`] — see the `quickstart` example for both
//! side by side. Every fallible entry point reports a typed
//! [`core::TgsError`]; the panicking variants (`solve_offline`,
//! `OnlineSolver::step`) remain as thin wrappers for benches and
//! scripts.

pub use tgs_baselines as baselines;
pub use tgs_core as core;
pub use tgs_data as data;
pub use tgs_engine as engine;
pub use tgs_eval as eval;
pub use tgs_graph as graph;
pub use tgs_linalg as linalg;
pub use tgs_load as load;
pub use tgs_net as net;
pub use tgs_text as text;

/// Solves a [`data::ShardedProblem`] with the sharded offline solver,
/// wiring the problem's ghost-row links (if it was built in ghost mode
/// via [`data::build_offline_sharded_ghost`]) into the solver's
/// per-round broadcast — the end-to-end offline ghost pipeline. The
/// data-layer [`data::GhostLink`] and solver-layer
/// [`core::GhostRowLink`] deliberately live in their own crates
/// (`tgs-data` and `tgs-core` do not depend on each other); this is the
/// one place they meet.
pub fn try_solve_sharded_problem(
    problem: &data::ShardedProblem,
    config: &core::OfflineConfig,
) -> Result<core::ShardedOfflineResult, core::TgsError> {
    let inputs: Vec<core::TriInput<'_>> = problem
        .shards
        .iter()
        .map(|s| core::TriInput {
            xp: &s.matrices.xp,
            xu: &s.matrices.xu,
            xr: &s.matrices.xr,
            graph: &s.matrices.graph,
            sf0: &problem.sf0,
        })
        .collect();
    let links: Vec<core::GhostRowLink> = problem
        .ghosts
        .iter()
        .map(|g| core::GhostRowLink {
            shard: g.shard,
            row: g.row,
            owner_shard: g.owner_shard,
            owner_row: g.owner_row,
        })
        .collect();
    core::try_solve_offline_sharded_with_ghosts(&inputs, config, &links)
}

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use tgs_baselines::{
        kmeans, propagate_labels, solve_bacg, solve_essa, solve_onmtf, subsample_labels, userreg,
        BacgConfig, EssaConfig, FullBatch, KMeansConfig, LabelPropConfig, LinearSvm, MiniBatch,
        NaiveBayes, SvmConfig, UserRegConfig,
    };
    pub use tgs_core::{
        solve_offline, try_solve_offline, InitStrategy, ObjectiveParts, OfflineConfig,
        OnlineConfig, OnlineSolver, SnapshotData, TgsError, TgsErrorKind, TriFactors, TriInput,
    };
    pub use tgs_core::{
        solve_offline_sharded, try_solve_offline_sharded, ShardedOfflineResult, ShardedOnlineSolver,
    };
    pub use tgs_data::{
        build_offline, build_offline_sharded, build_offline_sharded_ghost, corpus_stats,
        daily_tweet_counts, day_windows, generate, presets, top_words, Corpus, GeneratorConfig,
        PartitionMap, ProblemInstance, RepartitionOp, RepartitionPlan, ShardedProblem,
        SnapshotBuilder, UserRangePartitioner,
    };
    pub use tgs_engine::{
        BatchPolicy, BatchingIngest, CheckpointDelta, ClusterSummary, Coverage, DeltaChain,
        EngineBuilder, EngineCheckpoint, EngineDoc, EngineQuery, EngineSnapshot, EngineStats,
        FlakyShard, FleetTips, LatencyHistogram, Partial, RecoveryCounters, SentimentEngine,
        ShardedCheckpoint, ShardedDelta, ShardedEngine, ShardedQuery, TimelineEntry, UserSentiment,
    };
    pub use tgs_eval::{clustering_accuracy, nmi, ConfusionMatrix};
    pub use tgs_graph::UserGraph;
    pub use tgs_linalg::{CsrMatrix, DenseMatrix};
    pub use tgs_load::{LoadConfig, LoadGen};
    pub use tgs_net::{
        attach_fleet, deploy_fleet, deploy_supervised, FaultPolicy, NetConfig, RouterEndpoint,
        ShardServer, Supervisor, SupervisorConfig, TcpShard,
    };
    pub use tgs_text::{Lexicon, PipelineConfig, Sentiment, Vocabulary};
}

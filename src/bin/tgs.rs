//! `tgs` — command-line front end for the tripartite sentiment pipeline.
//!
//! ```text
//! tgs generate --preset prop30-small --seed 42 --out corpus.tsv
//! tgs analyze  --corpus corpus.tsv [--k 3 --alpha 0.05 --beta 0.8] --out sentiments.tsv
//! tgs stream   --corpus corpus.tsv [--window-days 1 --gamma 0.2 --shards 4] \
//!              [--ghost-users] [--max-skew 1.5] \
//!              [--checkpoint-every N [--delta]] \
//!              --out timeline.tsv [--checkpoint engine.ckpt] [--stats]
//! tgs query    (--checkpoint engine.ckpt | --connect 127.0.0.1:7400)
//!              (--timeline LO..HI | --user U [--at T] | --summary T |
//!              --top-words T [--words N] | --shard-info | --stats | --terminate)
//! tgs stats    --corpus corpus.tsv
//! tgs shard    --listen 127.0.0.1:7401 [--range 0..500]
//! tgs serve    --shards 127.0.0.1:7401,127.0.0.1:7402 --corpus corpus.tsv \
//!              --out timeline.tsv [--checkpoint fleet.ckpt] \
//!              [--hold 127.0.0.1:7400] [--terminate]
//! tgs soak     [--users 2000 --steps 192 --shards 2 --batch-bucket 8] \
//!              [--budget-ms 10000] [--max-peak-bytes N] \
//!              [--out BENCH_soak.json] [--smoke]
//! ```
//!
//! `stream` runs the online solver (Algorithm 2) through the
//! [`ShardedEngine`] router (`--shards N` user-range shards, each its own
//! [`SentimentEngine`] worker; `--shards 1` is bit-identical to the
//! single-engine path) and can persist the whole session as a
//! checkpoint. `--ghost-users` keeps cross-shard re-tweet edges as ghost
//! rows (nothing dropped); `--max-skew X` turns the topology elastic —
//! when the routed tweet-count skew exceeds `X`, the hottest shard is
//! split at its load midpoint by a live rebalance. `--checkpoint-every
//! N` snapshots the session every N windows in-run; with `--delta` the
//! cadence anchors one full base and then ships O(changes) delta
//! checkpoints, re-materializing locally and verifying base ⊕ deltas
//! stays byte-identical to a full snapshot (re-anchoring automatically
//! when a rebalance invalidates the base). `query` restores any
//! checkpoint flavor (single-engine, v1 stride-map, v2 elastic) and
//! serves the history API (`timeline`, `user`, `summary`, `top-words`,
//! `shard-info`) without re-solving anything. `--stats` surfaces the
//! ingest/backpressure metrics plus per-shard load and skew. Every
//! subcommand accepts `--help`, all flags are declared in one table, and
//! every failure is a typed [`TgsError`].
//!
//! `shard` + `serve` are the distributed pair: each `tgs shard` process
//! hosts engine slots over the `tgs-net` framed TCP protocol, and
//! `tgs serve` deploys a deterministic cold fleet onto them and then
//! streams exactly like `tgs stream` — same flags, same outputs,
//! bit-identical timelines and checkpoints. `--merge-below X` (on both
//! streaming commands) is the elastic shrink trigger: when the coldest
//! shard's routed load falls below `X` of the per-shard mean it is
//! drained into its neighbour, the inverse of `--max-skew` splits.
//!
//! `serve` runs under fleet supervision: periodic baseline snapshots
//! (`--checkpoint-every N` windows — after the first full base each
//! refresh ships only a delta of changed bytes, counted as
//! `delta_refreshes`), background health probes, and automatic
//! respawn/re-seed of a dead shard from its baseline (base ⊕ deltas)
//! plus a bounded replay journal — a killed `tgs shard` process that
//! comes back is reconverged bit-identically, counted in the `respawns`
//! / `replayed_docs` stats. `--hold ADDR` keeps the fleet alive after
//! streaming and serves the history API over the wire protocol;
//! `tgs query --connect ADDR` is the matching client (`--stats` reads
//! the live merged counters, `--terminate` winds the held fleet down
//! cleanly). Seeded fault injection for chaos testing comes from the
//! `TGS_FAULTS` environment variable (see `crates/net/PROTOCOL.md`).
//!
//! `soak` is the load-test harness: a deterministic seeded Zipf
//! firehose ([`tgs_load::LoadGen`] via the facade) driven through
//! per-snapshot `try_ingest` and then through the micro-batching front
//! end under a wall-clock budget, recording throughput, drop rate,
//! queue depth, p50/p99/p999 step latency (log-linear histogram, ≤12.5%
//! quantile error) and the live-heap high-water mark (`peak_alloc_bytes`
//! from the counting global allocator) into a JSON artifact.
//! `--max-peak-bytes N` turns the high-water mark into a hard ceiling.
//! `--smoke` is the CI leg: tiny sizes, zero drops and a sane p99
//! asserted, nonzero exit on violation.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

use tripartite_sentiment::data::{presets, read_corpus, write_corpus, Corpus};
use tripartite_sentiment::net::{
    deploy_supervised, NetConfig, RouterEndpoint, ShardServer, ShardTransport, Supervisor,
    SupervisorConfig, TcpShard,
};
use tripartite_sentiment::prelude::*;

// ---------------------------------------------------------------------
// Live-heap accounting for `tgs soak`.
// ---------------------------------------------------------------------

/// A thin wrapper over the system allocator tracking live bytes and
/// their high-water mark, so soak runs can report `peak_alloc_bytes`
/// and `--smoke` can fail on a memory regression. Relaxed atomics — a
/// sampled monitoring surface, not a synchronization point; the
/// per-allocation cost is two relaxed RMW ops, invisible next to a
/// solver step.
mod alloc_meter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub struct MeteredAllocator;

    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    fn grow(n: u64) {
        let live = LIVE.fetch_add(n, Ordering::Relaxed) + n;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    unsafe impl GlobalAlloc for MeteredAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                grow(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                if new_size >= layout.size() {
                    grow((new_size - layout.size()) as u64);
                } else {
                    LIVE.fetch_sub((layout.size() - new_size) as u64, Ordering::Relaxed);
                }
            }
            p
        }
    }

    /// The live-heap high-water mark since the last reset.
    pub fn peak_bytes() -> u64 {
        PEAK.load(Ordering::Relaxed)
    }

    /// Drops the high-water mark back to the current live size, so a
    /// soak phase measures its own peak rather than inheriting setup's.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[global_allocator]
static GLOBAL_ALLOC: alloc_meter::MeteredAllocator = alloc_meter::MeteredAllocator;

// ---------------------------------------------------------------------
// The flag table: one declarative spec per subcommand.
// ---------------------------------------------------------------------

struct FlagSpec {
    name: &'static str,
    value: &'static str,
    help: &'static str,
    /// `None` + `required: false` = optional without default.
    default: Option<&'static str>,
    required: bool,
}

const fn req(name: &'static str, value: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        value,
        help,
        default: None,
        required: true,
    }
}

const fn opt(
    name: &'static str,
    value: &'static str,
    default: &'static str,
    help: &'static str,
) -> FlagSpec {
    FlagSpec {
        name,
        value,
        help,
        default: Some(default),
        required: false,
    }
}

const fn maybe(name: &'static str, value: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        value,
        help,
        default: None,
        required: false,
    }
}

/// A valueless boolean flag: present ⇒ `"true"`.
const fn switch(name: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        value: "",
        help,
        default: None,
        required: false,
    }
}

struct CommandSpec {
    name: &'static str,
    about: &'static str,
    flags: &'static [FlagSpec],
    run: fn(&Flags) -> Result<(), TgsError>,
}

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "generate",
        about: "Write a synthetic corpus in the TSV interchange format.",
        flags: &[
            req(
                "preset",
                "NAME",
                "tiny | prop30-small | prop37-small | prop30 | prop37",
            ),
            opt("seed", "N", "42", "generator RNG seed"),
            req("out", "PATH", "output corpus file"),
        ],
        run: cmd_generate,
    },
    CommandSpec {
        name: "analyze",
        about: "Run the offline tri-clustering solver (Algorithm 1) over a corpus.",
        flags: &[
            req("corpus", "PATH", "input corpus file"),
            opt("k", "N", "3", "number of sentiment clusters"),
            opt("alpha", "F", "0.05", "lexicon-regularization weight"),
            opt("beta", "F", "0.8", "graph-regularization weight"),
            opt("iters", "N", "100", "iteration cap"),
            opt("seed", "N", "42", "solver RNG seed"),
            req("out", "PATH", "output sentiment assignments"),
        ],
        run: cmd_analyze,
    },
    CommandSpec {
        name: "stream",
        about: "Stream daily snapshots through the SentimentEngine (Algorithm 2).",
        flags: &[
            req("corpus", "PATH", "input corpus file"),
            opt("window-days", "N", "1", "days per snapshot"),
            opt("k", "N", "3", "number of sentiment clusters"),
            opt(
                "alpha",
                "F",
                "0.9",
                "temporal feature-regularization weight",
            ),
            opt("beta", "F", "0.8", "graph-regularization weight"),
            opt("gamma", "F", "0.2", "temporal user-regularization weight"),
            opt("tau", "F", "0.9", "window decay factor"),
            opt("iters", "N", "40", "per-snapshot iteration cap"),
            opt("seed", "N", "42", "solver RNG seed"),
            opt(
                "shards",
                "N",
                "1",
                "user-range shards (one engine worker per shard)",
            ),
            switch(
                "ghost-users",
                "keep cross-shard retweets as ghost rows instead of dropping them",
            ),
            maybe(
                "max-skew",
                "X",
                "auto-split the hottest shard when tweet-count skew exceeds X (e.g. 1.5)",
            ),
            maybe(
                "merge-below",
                "X",
                "auto-merge the coldest shard when its load falls below X of the per-shard mean (e.g. 0.25)",
            ),
            req("out", "PATH", "output timeline file"),
            maybe(
                "checkpoint",
                "PATH",
                "also persist the full engine session for `tgs query`",
            ),
            maybe(
                "checkpoint-every",
                "N",
                "take an in-run checkpoint every N windows (full snapshots; deltas with --delta)",
            ),
            switch(
                "delta",
                "encode in-run checkpoints as O(changes) deltas against the previous base and \
                 verify base+deltas stays byte-identical to a full snapshot (needs \
                 --checkpoint-every)",
            ),
            switch(
                "stats",
                "print ingest/backpressure metrics after the stream",
            ),
        ],
        run: cmd_stream,
    },
    CommandSpec {
        name: "serve",
        about: "Stream through a distributed fleet of `tgs shard` servers.",
        flags: &[
            req(
                "shards",
                "ADDRS",
                "comma-separated shard server addresses, one shard per server",
            ),
            req("corpus", "PATH", "input corpus file"),
            opt("window-days", "N", "1", "days per snapshot"),
            opt("k", "N", "3", "number of sentiment clusters"),
            opt(
                "alpha",
                "F",
                "0.9",
                "temporal feature-regularization weight",
            ),
            opt("beta", "F", "0.8", "graph-regularization weight"),
            opt("gamma", "F", "0.2", "temporal user-regularization weight"),
            opt("tau", "F", "0.9", "window decay factor"),
            opt("iters", "N", "40", "per-snapshot iteration cap"),
            opt("seed", "N", "42", "solver RNG seed"),
            switch(
                "ghost-users",
                "keep cross-shard retweets as ghost rows instead of dropping them",
            ),
            maybe(
                "max-skew",
                "X",
                "auto-split the hottest shard when tweet-count skew exceeds X (e.g. 1.5)",
            ),
            maybe(
                "merge-below",
                "X",
                "auto-merge the coldest shard when its load falls below X of the per-shard mean (e.g. 0.25)",
            ),
            req("out", "PATH", "output timeline file"),
            maybe(
                "checkpoint",
                "PATH",
                "assemble and persist the fleet-wide checkpoint for `tgs query`",
            ),
            switch(
                "stats",
                "print merged fleet metrics (including shard_unavailable and recovery counters)",
            ),
            opt(
                "checkpoint-every",
                "N",
                "8",
                "refresh the supervisor's per-shard recovery baselines every N windows",
            ),
            maybe(
                "hold",
                "ADDR",
                "after streaming, keep the fleet alive and serve the history API over TCP at ADDR \
                 until a TERMINATE request (`tgs query --connect ADDR --terminate`)",
            ),
            switch(
                "terminate",
                "shut the shard servers down after streaming (with --hold: after the hold ends)",
            ),
        ],
        run: cmd_serve,
    },
    CommandSpec {
        name: "shard",
        about: "Host engine shards over TCP for a `tgs serve` router.",
        flags: &[
            req(
                "listen",
                "ADDR",
                "address to bind, e.g. 127.0.0.1:7401 (port 0 picks a free port)",
            ),
            maybe(
                "range",
                "LO..HI",
                "declared user range; the router refuses to deploy a mismatched shard here",
            ),
        ],
        run: cmd_shard,
    },
    CommandSpec {
        name: "query",
        about: "Serve the history API from a checkpointed engine session.",
        flags: &[
            maybe("checkpoint", "PATH", "checkpoint written by `tgs stream`"),
            maybe(
                "connect",
                "ADDR",
                "query a held fleet (`tgs serve --hold ADDR`) instead of a checkpoint file",
            ),
            maybe(
                "timeline",
                "LO..HI",
                "print timeline entries in the range (or `all`)",
            ),
            maybe("user", "ID", "print a user's sentiment estimate"),
            maybe(
                "at",
                "T",
                "query time for --user (default: latest snapshot)",
            ),
            maybe("summary", "T", "print the cluster summary of snapshot T"),
            maybe(
                "top-words",
                "T",
                "print each cluster's top features at snapshot T",
            ),
            opt("words", "N", "8", "feature count for --top-words"),
            switch(
                "shard-info",
                "print the fleet's partition map and per-shard state",
            ),
            switch(
                "stats",
                "print the held fleet's live merged metrics, including recovery counters \
                 (needs --connect)",
            ),
            switch(
                "terminate",
                "wind the held fleet down after answering (needs --connect)",
            ),
        ],
        run: cmd_query,
    },
    CommandSpec {
        name: "stats",
        about: "Print Table 3-style statistics of a corpus.",
        flags: &[req("corpus", "PATH", "input corpus file")],
        run: cmd_stats,
    },
    CommandSpec {
        name: "soak",
        about: "Drive a deterministic Zipf firehose through the engine and record throughput.",
        flags: &[
            opt("users", "N", "2000", "synthetic user universe"),
            opt("seed", "N", "42", "load-generator and solver RNG seed"),
            opt("steps", "N", "192", "snapshots per phase (unbatched, then batched)"),
            opt("docs-per-step", "N", "16", "documents per generated snapshot"),
            opt("words-per-doc", "N", "8", "tokens per generated document"),
            opt("k", "N", "3", "number of sentiment clusters"),
            opt("iters", "N", "20", "per-snapshot iteration cap"),
            opt("shards", "N", "2", "user-range shards"),
            opt("queue-depth", "N", "64", "per-worker ingest queue bound"),
            opt(
                "batch-bucket",
                "N",
                "8",
                "batching time-bucket width (timestamps coalesce per bucket)",
            ),
            opt("batch-max-docs", "N", "4096", "flush a pending batch at this many docs"),
            opt("budget-ms", "MS", "10000", "wall-clock budget per phase"),
            opt("out", "PATH", "BENCH_soak.json", "JSON results file"),
            maybe(
                "max-peak-bytes",
                "N",
                "fail when a phase's live-heap high-water mark exceeds N bytes",
            ),
            switch(
                "smoke",
                "CI mode: tiny sizes, assert zero drops and a sane p99, nonzero exit on failure",
            ),
        ],
        run: cmd_soak,
    },
];

// ---------------------------------------------------------------------
// The one table-driven parser.
// ---------------------------------------------------------------------

struct Flags(HashMap<&'static str, String>);

impl Flags {
    fn str(&self, key: &str) -> &str {
        self.0
            .get_key_value(key)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("flag --{key} missing from its command's table"))
    }

    fn str_opt(&self, key: &str) -> Option<&str> {
        self.0.get_key_value(key).map(|(_, v)| v.as_str())
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Result<T, TgsError> {
        parse_value(key, self.str(key))
    }

    fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, TgsError> {
        self.str_opt(key).map(|v| parse_value(key, v)).transpose()
    }
}

fn parse_value<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, TgsError> {
    value
        .parse()
        .map_err(|_| TgsError::invalid_argument(format!("bad value for --{key}: '{value}'")))
}

fn parse_flags(spec: &CommandSpec, args: &[String]) -> Result<Flags, TgsError> {
    let mut values: HashMap<&'static str, String> = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(TgsError::invalid_argument(format!(
                "expected --flag, got '{arg}' (see `tgs {} --help`)",
                spec.name
            )));
        };
        let Some(flag) = spec.flags.iter().find(|f| f.name == key) else {
            return Err(TgsError::invalid_argument(format!(
                "unknown flag --{key} for `tgs {}` (see `tgs {} --help`)",
                spec.name, spec.name
            )));
        };
        if flag.value.is_empty() {
            // A switch: presence is the value.
            values.insert(flag.name, "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| TgsError::invalid_argument(format!("--{key} needs a {}", flag.value)))?;
        values.insert(flag.name, value.clone());
    }
    for flag in spec.flags {
        if values.contains_key(flag.name) {
            continue;
        }
        if let Some(default) = flag.default {
            values.insert(flag.name, default.to_string());
        } else if flag.required {
            return Err(TgsError::invalid_argument(format!(
                "--{} is required (see `tgs {} --help`)",
                flag.name, spec.name
            )));
        }
    }
    Ok(Flags(values))
}

fn command_help(spec: &CommandSpec) -> String {
    let mut usage = format!("USAGE:\n  tgs {}", spec.name);
    for f in spec.flags {
        match (f.required, f.value.is_empty()) {
            (true, _) => usage.push_str(&format!(" --{} <{}>", f.name, f.value)),
            (false, true) => usage.push_str(&format!(" [--{}]", f.name)),
            (false, false) => usage.push_str(&format!(" [--{} <{}>]", f.name, f.value)),
        }
    }
    let mut out = format!("tgs {} — {}\n\n{usage}\n\nFLAGS:\n", spec.name, spec.about);
    for f in spec.flags {
        let head = if f.value.is_empty() {
            format!("  --{}", f.name)
        } else {
            format!("  --{} <{}>", f.name, f.value)
        };
        let suffix = match f.default {
            Some(d) => format!("{} [default: {d}]", f.help),
            None if f.required => format!("{} (required)", f.help),
            None => f.help.to_string(),
        };
        out.push_str(&format!("{head:<24} {suffix}\n"));
    }
    out
}

fn global_usage() -> String {
    let mut out = String::from(
        "tgs — tripartite graph co-clustering for dynamic sentiment analysis\n\nCOMMANDS:\n",
    );
    for spec in COMMANDS {
        out.push_str(&format!("  {:<10} {}\n", spec.name, spec.about));
    }
    out.push_str("\nRun `tgs <command> --help` for the command's flags.");
    out
}

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), TgsError> {
    let Some(command) = args.first() else {
        eprintln!("{}", global_usage());
        return Err(TgsError::invalid_argument("missing command"));
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{}", global_usage());
        return Ok(());
    }
    let Some(spec) = COMMANDS.iter().find(|c| c.name == command.as_str()) else {
        return Err(TgsError::invalid_argument(format!(
            "unknown command '{command}' (run `tgs help`)"
        )));
    };
    if args[1..].iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", command_help(spec));
        return Ok(());
    }
    let flags = parse_flags(spec, &args[1..])?;
    (spec.run)(&flags)
}

// ---------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------

fn load_corpus(flags: &Flags) -> Result<Corpus, TgsError> {
    let path = flags.str("corpus");
    let file = File::open(path).map_err(|e| TgsError::io(format!("cannot open {path}"), e))?;
    read_corpus(BufReader::new(file)).map_err(|e| TgsError::invalid_argument(e.to_string()))
}

fn create_out(flags: &Flags) -> Result<(BufWriter<File>, String), TgsError> {
    let path = flags.str("out").to_string();
    let file = File::create(&path).map_err(|e| TgsError::io(format!("cannot create {path}"), e))?;
    Ok((BufWriter::new(file), path))
}

fn write_err(e: std::io::Error) -> TgsError {
    TgsError::io("write failed", e)
}

fn pipeline() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 2;
    cfg
}

fn sentiment_name(c: usize) -> &'static str {
    Sentiment::from_index(c).map(|s| s.as_str()).unwrap_or("?")
}

// ---------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------

fn cmd_generate(flags: &Flags) -> Result<(), TgsError> {
    let seed: u64 = flags.get("seed")?;
    let preset = flags.str("preset");
    let cfg = match preset {
        "tiny" => presets::tiny(seed),
        "prop30-small" => presets::prop30_small(seed),
        "prop37-small" => presets::prop37_small(seed),
        "prop30" => presets::prop30(seed),
        "prop37" => presets::prop37(seed),
        other => {
            return Err(TgsError::invalid_argument(format!(
                "unknown preset '{other}'"
            )))
        }
    };
    let corpus = generate(&cfg);
    let (out, out_path) = create_out(flags)?;
    write_corpus(&corpus, out).map_err(write_err)?;
    eprintln!(
        "wrote {} tweets, {} users, {} retweets over {} days to {out_path}",
        corpus.num_tweets(),
        corpus.num_users(),
        corpus.retweets.len(),
        corpus.num_days
    );
    Ok(())
}

fn cmd_analyze(flags: &Flags) -> Result<(), TgsError> {
    let corpus = load_corpus(flags)?;
    let k: usize = flags.get("k")?;
    let config = OfflineConfig {
        k,
        alpha: flags.get("alpha")?,
        beta: flags.get("beta")?,
        max_iters: flags.get("iters")?,
        seed: flags.get("seed")?,
        ..Default::default()
    };
    // Validate before building matrices: a bad --k would otherwise reach
    // the lexicon prior as a panic instead of a typed error.
    config.try_validate()?;
    let inst = build_offline(&corpus, k, &pipeline());
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let result = try_solve_offline(&input, &config)?;
    eprintln!(
        "solved in {} iterations (converged: {}); objective {:.2}",
        result.iterations, result.converged, result.objective
    );
    let (mut out, out_path) = create_out(flags)?;
    writeln!(out, "# kind\tid\tsentiment\tconfidence").map_err(write_err)?;
    let tweet_conf = tripartite_sentiment::core::label_confidence(&result.factors.sp);
    for (id, (&label, conf)) in result
        .tweet_labels()
        .iter()
        .zip(tweet_conf.iter())
        .enumerate()
    {
        writeln!(out, "tweet\t{id}\t{}\t{conf:.3}", sentiment_name(label)).map_err(write_err)?;
    }
    let user_conf = tripartite_sentiment::core::label_confidence(&result.factors.su);
    for (id, (&label, conf)) in result
        .user_labels()
        .iter()
        .zip(user_conf.iter())
        .enumerate()
    {
        writeln!(out, "user\t{id}\t{}\t{conf:.3}", sentiment_name(label)).map_err(write_err)?;
    }
    eprintln!("wrote sentiments to {out_path}");
    Ok(())
}

/// The solver knobs shared verbatim by `tgs stream` and `tgs serve`.
fn online_config(flags: &Flags) -> Result<OnlineConfig, TgsError> {
    Ok(OnlineConfig {
        k: flags.get("k")?,
        alpha: flags.get("alpha")?,
        beta: flags.get("beta")?,
        gamma: flags.get("gamma")?,
        tau: flags.get("tau")?,
        max_iters: flags.get("iters")?,
        seed: flags.get("seed")?,
        ..Default::default()
    })
}

/// The elastic-topology triggers: `--max-skew` splits the hottest
/// shard, `--merge-below` drains the coldest one into its neighbour.
struct ElasticPolicy {
    max_skew: Option<f64>,
    merge_below: Option<f64>,
}

fn elastic_policy(flags: &Flags) -> Result<ElasticPolicy, TgsError> {
    let max_skew: Option<f64> = flags.get_opt("max-skew")?;
    if let Some(x) = max_skew {
        if x.is_nan() || x < 1.0 {
            return Err(TgsError::invalid_argument(
                "--max-skew must be >= 1.0 (1.0 = perfectly even load)",
            ));
        }
    }
    let merge_below: Option<f64> = flags.get_opt("merge-below")?;
    if let Some(x) = merge_below {
        if !(x > 0.0 && x < 1.0) {
            return Err(TgsError::invalid_argument(
                "--merge-below must be in (0, 1): the cold shard's share of the per-shard mean",
            ));
        }
    }
    Ok(ElasticPolicy {
        max_skew,
        merge_below,
    })
}

/// Shared streaming body of `tgs stream` and `tgs serve`: fan the
/// corpus through the router window by window with the elastic policy
/// applied, then write the timeline/stats/checkpoint outputs. Keeping
/// both commands on this one code path is what makes a distributed run
/// flag-for-flag comparable to an in-process one.
/// In-run checkpoint cadence for `tgs stream --checkpoint-every N`.
///
/// Without `--delta` every cadence point takes a full fleet snapshot.
/// With `--delta` the first point anchors a base via
/// [`ShardedEngine::checkpoint_base`] and later points ship only
/// [`ShardedEngine::delta_since`] bytes; the locally re-materialized
/// checkpoint (base ⊕ deltas) is verified byte-identical to a fresh
/// full snapshot when the stream drains. Unavailable tips — e.g. after
/// a mid-run rebalance changed the partition fingerprint — re-base
/// transparently.
struct CheckpointCadence {
    every: u64,
    delta: bool,
    windows: u64,
    /// Delta mode: latest tips plus the materialized current state.
    anchor: Option<(FleetTips, ShardedCheckpoint)>,
    fulls: usize,
    deltas: usize,
    rebases: usize,
    delta_bytes: u64,
    full_bytes: u64,
}

impl CheckpointCadence {
    fn from_flags(flags: &Flags) -> Result<Option<Self>, TgsError> {
        let every: Option<u64> = flags.get_opt("checkpoint-every")?;
        let delta = flags.str_opt("delta").is_some();
        match every {
            None if delta => Err(TgsError::invalid_argument(
                "--delta needs an in-run cadence: pass --checkpoint-every N",
            )),
            None => Ok(None),
            Some(0) => Err(TgsError::invalid_argument(
                "--checkpoint-every must be >= 1",
            )),
            Some(every) => Ok(Some(Self {
                every,
                delta,
                windows: 0,
                anchor: None,
                fulls: 0,
                deltas: 0,
                rebases: 0,
                delta_bytes: 0,
                full_bytes: 0,
            })),
        }
    }

    /// Called once per ingested window; takes a checkpoint on cadence.
    fn tick(&mut self, engine: &ShardedEngine) -> Result<(), TgsError> {
        self.windows += 1;
        if !self.windows.is_multiple_of(self.every) {
            return Ok(());
        }
        self.take(engine)
    }

    fn take(&mut self, engine: &ShardedEngine) -> Result<(), TgsError> {
        if !self.delta {
            let ckpt = engine.checkpoint()?;
            self.fulls += 1;
            self.full_bytes += ckpt.len() as u64;
            return Ok(());
        }
        if let Some((tips, current)) = self.anchor.take() {
            if let Some(delta) = engine.delta_since(&tips)? {
                let next = ShardedEngine::apply_delta(&current, &delta)?;
                self.deltas += 1;
                self.delta_bytes += delta.len() as u64;
                self.full_bytes += next.len() as u64;
                self.anchor = Some((delta.tips()?, next));
                return Ok(());
            }
            // Tips unavailable (rebalanced fleet or aged-out marks):
            // fall through to a fresh base.
            self.rebases += 1;
        }
        let (tips, base) = engine.checkpoint_base()?;
        self.fulls += 1;
        self.full_bytes += base.len() as u64;
        self.anchor = Some((tips, base));
        Ok(())
    }

    /// Stream drained: take the closing checkpoint, then (delta mode)
    /// verify the materialized chain against a fresh full snapshot.
    fn finish(&mut self, engine: &ShardedEngine) -> Result<(), TgsError> {
        self.take(engine)?;
        if !self.delta {
            eprintln!(
                "in-run checkpoints: {} full snapshot(s), {} bytes total",
                self.fulls, self.full_bytes
            );
            return Ok(());
        }
        let (_, materialized) = self
            .anchor
            .as_ref()
            .expect("delta cadence finished without an anchor");
        let full = engine.checkpoint()?;
        if materialized.as_bytes() != full.as_bytes() {
            return Err(TgsError::corrupt(
                "delta checkpoint verification: base+deltas materialized differently \
                 from a full snapshot",
            ));
        }
        let saved = if self.delta_bytes > 0 && self.deltas > 0 {
            // Average full-equivalent size over the delta-shipped points.
            let full_equiv = self.full_bytes / (self.deltas + self.fulls) as u64;
            format!(
                " (avg delta {} bytes vs {} full — {:.1}x smaller)",
                self.delta_bytes / self.deltas as u64,
                full_equiv,
                full_equiv as f64 / (self.delta_bytes as f64 / self.deltas as f64),
            )
        } else {
            String::new()
        };
        eprintln!(
            "delta checkpoints: {} base(s) + {} delta(s), {} re-base(s), {} delta bytes{}; \
             base+deltas verified byte-identical to the full snapshot",
            self.fulls, self.deltas, self.rebases, self.delta_bytes, saved
        );
        Ok(())
    }
}

fn stream_and_report(
    engine: &ShardedEngine,
    corpus: &Corpus,
    flags: &Flags,
    supervisor: Option<&Supervisor>,
    mut cadence: Option<CheckpointCadence>,
) -> Result<(), TgsError> {
    let window: u32 = flags.get("window-days")?;
    if window == 0 {
        return Err(TgsError::invalid_argument("--window-days must be >= 1"));
    }
    let policy = elastic_policy(flags)?;
    let mut rebalances = 0usize;
    let mut merges = 0usize;
    for (lo, hi) in day_windows(corpus.num_days, window) {
        engine.ingest(EngineSnapshot::from_corpus_window(corpus, lo, hi))?;
        if let Some(sup) = supervisor {
            sup.tick();
        }
        if let Some(c) = cadence.as_mut() {
            c.tick(engine)?;
        }
        if let Some(x) = policy.max_skew {
            // The auto-trigger inspects router-side load counters (no
            // flush needed); an actual rebalance quiesces the fleet.
            if let Some(map) = engine.maybe_rebalance(x)? {
                rebalances += 1;
                eprintln!(
                    "rebalanced: skew exceeded {x}; now {} shards (boundaries {:?})",
                    map.shards(),
                    map.starts()
                );
            }
        }
        if let Some(x) = policy.merge_below {
            if let Some(map) = engine.maybe_merge(x)? {
                merges += 1;
                eprintln!(
                    "merged: coldest shard below {x} of mean load; now {} shards (boundaries {:?})",
                    map.shards(),
                    map.starts()
                );
            }
        }
    }
    let steps = engine.flush()?;
    if let Some(sup) = supervisor {
        // On-quiesce snapshot: the stream has drained, so the refreshed
        // baselines capture the complete run.
        sup.refresh_checkpoints();
    }
    if let Some(c) = cadence.as_mut() {
        c.finish(engine)?;
    }

    let query = engine.query();
    let k = query.k();
    let (mut out, out_path) = create_out(flags)?;
    let share_header: Vec<String> = (0..k).map(|c| format!("{}%", sentiment_name(c))).collect();
    writeln!(
        out,
        "# t\ttweets\tusers\tnew\tevolving\t{}",
        share_header.join("\t")
    )
    .map_err(write_err)?;
    for entry in query.timeline(..)? {
        let shares: Vec<String> = entry
            .tweet_shares()
            .iter()
            .map(|s| format!("{:.1}", 100.0 * s))
            .collect();
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}",
            entry.timestamp,
            entry.tweets,
            entry.users,
            entry.new_users,
            entry.evolving_users,
            shares.join("\t"),
        )
        .map_err(write_err)?;
    }
    let final_shards = engine.shards();
    let mut topology_note = String::new();
    if rebalances > 0 {
        topology_note.push_str(&format!(" after {rebalances} rebalance(s)"));
    }
    if merges > 0 {
        topology_note.push_str(&format!(
            "{} {merges} merge(s)",
            if rebalances > 0 { " and" } else { " after" }
        ));
    }
    eprintln!(
        "processed {steps} snapshots across {final_shards} shard(s){topology_note}; wrote timeline to {out_path}"
    );

    if flags.str_opt("stats").is_some() {
        let s = engine.stats();
        eprintln!(
            "stats: queued {} | ingested {} | dropped_capacity {} | last_step {:.3} ms | \
             ghost edges {} | cross-shard retweets dropped {} | shard_unavailable {} | \
             simd {} | threads {} | pinned {}",
            s.queued,
            s.ingested,
            s.dropped_capacity,
            s.last_step_ns as f64 / 1e6,
            s.ghost_edges,
            s.dropped_cross_shard,
            s.shard_unavailable,
            s.simd,
            s.threads,
            s.pinned,
        );
        print_recovery_stats(&s);
        if let Some(sup) = supervisor {
            // Not part of the merged per-shard stats record: delta
            // refreshes are a supervisor-local count of baseline
            // updates that shipped only changed bytes.
            eprintln!(
                "supervisor: delta_refreshes {}",
                sup.counters()
                    .delta_refreshes
                    .load(std::sync::atomic::Ordering::Relaxed)
            );
        }
        print_latency_stats(&s.step_hist);
        let loads = engine.shard_loads();
        let skew = engine.load_skew();
        for l in &loads {
            eprintln!(
                "shard {}: users [{}, {}) | {} tweets | {} known users",
                l.shard, l.range.0, l.range.1, l.tweets, l.users
            );
        }
        eprintln!("load skew: {skew:.3} (hottest shard over per-shard mean)");
    }

    if let Some(path) = flags.str_opt("checkpoint") {
        let ckpt = engine.checkpoint()?;
        std::fs::write(path, ckpt.as_bytes())
            .map_err(|e| TgsError::io(format!("cannot write {path}"), e))?;
        eprintln!(
            "checkpointed the {final_shards}-shard engine session ({} bytes) to {path}",
            ckpt.len()
        );
    }
    Ok(())
}

/// The merged fleet's recovery counters — the supervision layer's
/// scoreboard (all zeros on an unsupervised or never-faulted run).
fn print_recovery_stats(s: &EngineStats) {
    eprintln!(
        "recovery: respawns {} | replayed_docs {} | degraded_queries {}",
        s.respawns, s.replayed_docs, s.degraded_queries,
    );
}

/// Step-latency quantiles, with "n/a" for an empty histogram instead of
/// a fabricated 0 ms reading.
fn print_latency_stats(hist: &LatencyHistogram) {
    let ms = |q: f64| match hist.quantile_opt(q) {
        Some(ns) => format!("{:.3} ms", ns as f64 / 1e6),
        None => "n/a".to_string(),
    };
    eprintln!(
        "step latency: p50 {} | p99 {} | p999 {} over {} steps ({} shed)",
        ms(0.50),
        ms(0.99),
        ms(0.999),
        hist.count(),
        hist.shed(),
    );
}

fn cmd_stream(flags: &Flags) -> Result<(), TgsError> {
    let corpus = load_corpus(flags)?;
    let shards: usize = flags.get("shards")?;
    let engine = EngineBuilder::new()
        .online(online_config(flags)?)
        .pipeline(pipeline())
        .ghost_users(flags.str_opt("ghost-users").is_some())
        .fit_sharded(&corpus, shards)?;
    let cadence = CheckpointCadence::from_flags(flags)?;
    stream_and_report(&engine, &corpus, flags, None, cadence)
}

fn cmd_serve(flags: &Flags) -> Result<(), TgsError> {
    let corpus = load_corpus(flags)?;
    let addrs: Vec<String> = flags
        .str("shards")
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err(TgsError::invalid_argument(
            "--shards needs at least one ADDR",
        ));
    }
    let checkpoint_every: u64 = flags.get("checkpoint-every")?;
    if checkpoint_every == 0 {
        return Err(TgsError::invalid_argument(
            "--checkpoint-every must be >= 1",
        ));
    }
    // Build the same deterministic cold fleet `tgs stream` would, ship
    // one checkpoint section per server, and route over TCP from then
    // on — restore is exact, so the runs stay bit-identical. The fleet
    // is supervised: each shard keeps a recovery baseline + replay
    // journal, and background probes respawn dead slots automatically.
    let template = EngineBuilder::new()
        .online(online_config(flags)?)
        .pipeline(pipeline())
        .ghost_users(flags.str_opt("ghost-users").is_some())
        .fit_sharded(&corpus, addrs.len())?;
    let sup_cfg = SupervisorConfig {
        checkpoint_every,
        ..SupervisorConfig::default()
    };
    let (engine, supervisor) = deploy_supervised(template, &addrs, &NetConfig::default(), sup_cfg)?;
    // Shared with the `--hold` endpoint, which needs its own handle for
    // the wire-serving thread pool.
    let engine = std::sync::Arc::new(engine);
    eprintln!(
        "deployed {} supervised shard(s) onto {}",
        addrs.len(),
        addrs.join(", ")
    );
    supervisor.start_probes();
    // `serve`'s --checkpoint-every drives the *supervisor's* recovery
    // baselines (delta-first since they anchor via CHECKPOINT_BASE);
    // the in-run cadence struct is `tgs stream`'s local equivalent.
    let streamed = stream_and_report(&engine, &corpus, flags, Some(&supervisor), None);

    if streamed.is_ok() {
        if let Some(hold_addr) = flags.str_opt("hold") {
            hold_fleet(&engine, hold_addr)?;
        }
    }
    supervisor.stop();
    streamed?;
    if flags.str_opt("terminate").is_some() {
        for addr in &addrs {
            TcpShard::connect(addr.as_str()).terminate()?;
        }
        eprintln!("terminated {} shard server(s)", addrs.len());
    }
    Ok(())
}

/// `tgs serve --hold`: host the deployed router itself as a wire-protocol
/// endpoint until a client sends TERMINATE, so queries (and further
/// ingest) keep working after the corpus stream has drained — including
/// degraded, partial answers while a shard is down mid-recovery.
fn hold_fleet(engine: &std::sync::Arc<ShardedEngine>, hold_addr: &str) -> Result<(), TgsError> {
    let server = ShardServer::bind(hold_addr, None)?;
    let bound = server.local_addr()?;
    server.add_transport(0, RouterEndpoint::new(std::sync::Arc::clone(engine)))?;
    // Scripts parse this line (same contract as `tgs shard`'s banner).
    println!("holding on {bound}");
    std::io::stdout().flush().map_err(write_err)?;
    server.run()?;
    eprintln!("hold ended: received TERMINATE");
    Ok(())
}

fn cmd_shard(flags: &Flags) -> Result<(), TgsError> {
    let listen = flags.str("listen");
    let range = flags
        .str_opt("range")
        .map(|spec| -> Result<(usize, usize), TgsError> {
            let (lo, hi) = spec.split_once("..").ok_or_else(|| {
                TgsError::invalid_argument(format!("bad range '{spec}': expected LO..HI"))
            })?;
            Ok((parse_value("range", lo)?, parse_value("range", hi)?))
        })
        .transpose()?;
    let server = ShardServer::bind(listen, range)?;
    let addr = server.local_addr()?;
    // Scripts and the loopback tests parse this line to learn the
    // `:0`-assigned port; flush so a piped stdout delivers it promptly.
    println!("listening on {addr}");
    std::io::stdout().flush().map_err(write_err)?;
    server.run()
}

fn cmd_query(flags: &Flags) -> Result<(), TgsError> {
    let wants_history = ["timeline", "user", "summary", "top-words", "shard-info"]
        .iter()
        .any(|f| flags.str_opt(f).is_some());
    let remote = match (flags.str_opt("checkpoint"), flags.str_opt("connect")) {
        (Some(_), Some(_)) => {
            return Err(TgsError::invalid_argument(
                "--checkpoint and --connect are mutually exclusive",
            ))
        }
        (None, None) => {
            return Err(TgsError::invalid_argument(
                "query needs a source: --checkpoint PATH or --connect ADDR",
            ))
        }
        (_, connect) => connect.map(TcpShard::connect),
    };
    if remote.is_none()
        && (flags.str_opt("stats").is_some() || flags.str_opt("terminate").is_some())
    {
        return Err(TgsError::invalid_argument(
            "--stats and --terminate read a *live* fleet: they need --connect, not --checkpoint",
        ));
    }

    if let Some(shard) = &remote {
        if flags.str_opt("stats").is_some() {
            // The held router's merged fleet metrics, straight off the
            // wire — including the supervisor's recovery counters.
            let s = shard.stats()?;
            println!(
                "queued {} | ingested {} | dropped_capacity {} | shard_unavailable {}",
                s.queued, s.ingested, s.dropped_capacity, s.shard_unavailable,
            );
            println!(
                "respawns {} | replayed_docs {} | degraded_queries {}",
                s.respawns, s.replayed_docs, s.degraded_queries,
            );
        }
        if !wants_history {
            if flags.str_opt("terminate").is_some() {
                shard.terminate()?;
                eprintln!("terminated the held fleet at {}", shard.addr());
            } else if flags.str_opt("stats").is_none() {
                return Err(TgsError::invalid_argument(
                    "query needs one of --timeline, --user, --summary, --top-words, \
                     --shard-info, --stats, --terminate (see `tgs query --help`)",
                ));
            }
            return Ok(());
        }
    }

    let bytes = match &remote {
        // A held fleet serializes its entire multi-shard session as the
        // hold slot's checkpoint section; one fetch, then every history
        // verb runs locally against the restored copy.
        Some(shard) => shard.checkpoint_section()?,
        None => {
            let path = flags.str("checkpoint");
            std::fs::read(path).map_err(|e| TgsError::io(format!("cannot read {path}"), e))?
        }
    };
    if let Some(shard) = &remote {
        if flags.str_opt("terminate").is_some() {
            shard.terminate()?;
            eprintln!("terminated the held fleet at {}", shard.addr());
        }
    }
    // Serves both checkpoint flavors: multi-shard streams rebuild the
    // fleet, single-engine streams are wrapped as a one-shard fleet.
    let engine = ShardedEngine::restore_any(bytes)?;
    let query = engine.query();

    if flags.str_opt("shard-info").is_some() {
        let map = engine.map();
        println!(
            "{} shard(s) over {} users | ghost mode {} | map fingerprint {:#018x}",
            map.shards(),
            map.universe(),
            if engine.ghost_mode() { "on" } else { "off" },
            map.fingerprint(),
        );
        for load in engine.shard_loads() {
            let (lo, hi) = load.range;
            println!(
                "shard {}: users [{lo}, {hi}){} | {} known users",
                load.shard,
                if load.shard + 1 == map.shards() {
                    " + overflow ids"
                } else {
                    ""
                },
                load.users,
            );
        }
        return Ok(());
    }
    if let Some(range) = flags.str_opt("timeline") {
        let (lo, hi) = parse_range(range)?;
        for entry in query.timeline(lo..hi)? {
            let shares: Vec<String> = entry
                .tweet_shares()
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{} {:.1}%", sentiment_name(c), 100.0 * s))
                .collect();
            println!(
                "t={}: {} tweets, {} users ({} new, {} evolving), {}",
                entry.timestamp,
                entry.tweets,
                entry.users,
                entry.new_users,
                entry.evolving_users,
                shares.join(", "),
            );
        }
        return Ok(());
    }
    if let Some(user) = flags.get_opt::<usize>("user")? {
        let at = match flags.get_opt::<u64>("at")? {
            Some(t) => t,
            None => query
                .latest()?
                .map(|e| e.timestamp)
                .ok_or(TgsError::SnapshotUnavailable { timestamp: 0 })?,
        };
        let s = query.user_sentiment(user, at)?;
        let dist: Vec<String> = s
            .distribution
            .iter()
            .enumerate()
            .map(|(c, p)| format!("{} {:.3}", sentiment_name(c), p))
            .collect();
        println!(
            "user {user} at t={}: {} ({})",
            s.timestamp,
            sentiment_name(s.label()),
            dist.join(", "),
        );
        return Ok(());
    }
    if let Some(t) = flags.get_opt::<u64>("summary")? {
        let s = query.cluster_summary(t)?;
        for c in 0..s.tweet_counts.len() {
            println!(
                "{:<9} {:>6} tweets ({:>5.1}%), {:>6} users",
                sentiment_name(c),
                s.tweet_counts[c],
                100.0 * s.tweet_shares[c],
                s.user_counts[c],
            );
        }
        return Ok(());
    }
    if let Some(t) = flags.get_opt::<u64>("top-words")? {
        let words: usize = flags.get("words")?;
        for (c, cluster) in query.top_words(t, words)?.iter().enumerate() {
            let listed: Vec<String> = cluster
                .iter()
                .map(|(w, score)| format!("{w} ({score:.3})"))
                .collect();
            println!("{:<9} {}", sentiment_name(c), listed.join(", "));
        }
        return Ok(());
    }
    Err(TgsError::invalid_argument(
        "query needs one of --timeline, --user, --summary, --top-words (see `tgs query --help`)",
    ))
}

fn parse_range(spec: &str) -> Result<(u64, u64), TgsError> {
    if spec == "all" {
        return Ok((0, u64::MAX));
    }
    let (lo, hi) = spec.split_once("..").ok_or_else(|| {
        TgsError::invalid_argument(format!("bad range '{spec}': expected LO..HI or `all`"))
    })?;
    let lo = if lo.is_empty() {
        0
    } else {
        parse_value("timeline", lo)?
    };
    let hi = if hi.is_empty() {
        u64::MAX
    } else {
        parse_value("timeline", hi)?
    };
    Ok((lo, hi))
}

fn cmd_stats(flags: &Flags) -> Result<(), TgsError> {
    let corpus = load_corpus(flags)?;
    let s = corpus_stats(&corpus);
    println!("topic: {} ({} days)", corpus.topic, corpus.num_days);
    println!(
        "tweets: {} total, {} labeled pos, {} labeled neg",
        s.total_tweets, s.labeled_pos_tweets, s.labeled_neg_tweets
    );
    println!(
        "users:  {} total ({} pos / {} neg / {} neu labeled, {} unlabeled)",
        s.total_users,
        s.labeled_pos_users,
        s.labeled_neg_users,
        s.labeled_neu_users,
        s.unlabeled_users
    );
    println!("retweets: {}", s.total_retweets);
    Ok(())
}

// ---------------------------------------------------------------------
// `tgs soak` — the Zipf firehose harness.
// ---------------------------------------------------------------------

/// What one soak phase measured.
struct SoakPhase {
    id: &'static str,
    wall: std::time::Duration,
    snapshots: u64,
    docs: u64,
    solver_steps: u64,
    sheds: u64,
    queue_max: u64,
    queue_sum: u64,
    queue_samples: u64,
    batches: u64,
    coalesced: u64,
    /// Live-heap high-water mark over the phase (allocator-metered).
    peak_alloc_bytes: u64,
    stats: EngineStats,
}

impl SoakPhase {
    fn docs_per_sec(&self) -> f64 {
        self.docs as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn drop_rate(&self) -> f64 {
        let submissions = self.snapshots + self.sheds;
        if submissions == 0 {
            0.0
        } else {
            self.sheds as f64 / submissions as f64
        }
    }

    fn queue_mean(&self) -> f64 {
        if self.queue_samples == 0 {
            0.0
        } else {
            self.queue_sum as f64 / self.queue_samples as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"id\": \"soak/{}\",\n",
                "      \"wall_ms\": {:.3},\n",
                "      \"snapshots\": {},\n",
                "      \"docs\": {},\n",
                "      \"docs_per_sec\": {:.1},\n",
                "      \"solver_steps\": {},\n",
                "      \"sheds\": {},\n",
                "      \"drop_rate\": {:.6},\n",
                "      \"dropped_capacity\": {},\n",
                "      \"queue_depth_max\": {},\n",
                "      \"queue_depth_mean\": {:.2},\n",
                "      \"batches\": {},\n",
                "      \"snapshots_coalesced\": {},\n",
                "      \"peak_alloc_bytes\": {},\n",
                "      \"p50_ns\": {},\n",
                "      \"p99_ns\": {},\n",
                "      \"p999_ns\": {}\n",
                "    }}"
            ),
            self.id,
            self.wall.as_secs_f64() * 1e3,
            self.snapshots,
            self.docs,
            self.docs_per_sec(),
            self.solver_steps,
            self.sheds,
            self.drop_rate(),
            self.stats.dropped_capacity,
            self.queue_max,
            self.queue_mean(),
            self.batches,
            self.coalesced,
            self.peak_alloc_bytes,
            self.stats.step_hist.p50(),
            self.stats.step_hist.p99(),
            self.stats.step_hist.p999(),
        )
    }
}

/// Re-submits a shed snapshot until the fleet accepts it. The engine
/// hands rejected snapshots back allocation-free, so the retry loop
/// moves no bytes; past `deadline` it falls through to the blocking
/// `ingest` so a wedged phase still terminates.
fn ingest_with_retry(
    engine: &ShardedEngine,
    snapshot: EngineSnapshot,
    deadline: std::time::Instant,
    sheds: &mut u64,
) -> Result<(), TgsError> {
    let mut pending = snapshot;
    loop {
        match engine.try_ingest(pending)? {
            None => return Ok(()),
            Some(back) => {
                *sheds += 1;
                if std::time::Instant::now() >= deadline {
                    return engine.ingest(back);
                }
                pending = back;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
    }
}

fn cmd_soak(flags: &Flags) -> Result<(), TgsError> {
    let smoke = flags.str_opt("smoke").is_some();
    let seed: u64 = flags.get("seed")?;
    let mut users: usize = flags.get("users")?;
    let mut steps: usize = flags.get("steps")?;
    let mut docs_per_step: usize = flags.get("docs-per-step")?;
    let words_per_doc: usize = flags.get("words-per-doc")?;
    let shards: usize = flags.get("shards")?;
    let mut queue_depth: usize = flags.get("queue-depth")?;
    let bucket: u64 = flags.get("batch-bucket")?;
    let batch_max_docs: usize = flags.get("batch-max-docs")?;
    let budget_ms: u64 = flags.get("budget-ms")?;
    if users < 2 {
        // The corpus generator's own minimum; fail typed before it
        // panics.
        return Err(TgsError::invalid_argument("--users must be >= 2"));
    }
    if smoke {
        // CI leg: small enough to finish in seconds, queue deep enough
        // that nothing sheds — any drop is then a regression.
        users = users.min(200);
        steps = steps.min(24);
        docs_per_step = docs_per_step.min(8);
        queue_depth = queue_depth.max(256);
    }

    // Fit the vocabulary on a corpus with the same user universe the
    // generator will address, so routing is even and generated tokens
    // survive encoding.
    let mut gcfg = presets::tiny(seed);
    gcfg.num_users = users;
    gcfg.total_tweets = (2 * users).max(600);
    let corpus = generate(&gcfg);

    let build = |batched: bool| -> Result<ShardedEngine, TgsError> {
        let mut b = EngineBuilder::new()
            .online(OnlineConfig {
                k: flags.get("k")?,
                max_iters: flags.get("iters")?,
                seed,
                ..Default::default()
            })
            .pipeline(pipeline())
            .queue_depth(queue_depth);
        if batched {
            b = b.batch_bucket_width(bucket).batch_max_docs(batch_max_docs);
        }
        b.fit_sharded(&corpus, shards)
    };

    let load_config = |_phase: &str| LoadConfig {
        seed,
        users,
        docs_per_step,
        words_per_doc,
        ..LoadConfig::default()
    };

    let budget = std::time::Duration::from_millis(budget_ms);

    // Phase 1: one try_ingest (one solver step) per generated snapshot.
    let engine = build(false)?;
    let words = engine.vocabulary().tokens().to_vec();
    let mut gen = LoadGen::new(load_config("unbatched"), words.clone())?;
    alloc_meter::reset_peak();
    let deadline = std::time::Instant::now() + budget;
    let started = std::time::Instant::now();
    let mut unbatched = SoakPhase {
        id: "unbatched",
        wall: std::time::Duration::ZERO,
        snapshots: 0,
        docs: 0,
        solver_steps: 0,
        sheds: 0,
        queue_max: 0,
        queue_sum: 0,
        queue_samples: 0,
        batches: 0,
        coalesced: 0,
        peak_alloc_bytes: 0,
        stats: engine.stats(),
    };
    while gen.step() < steps && std::time::Instant::now() < deadline {
        let snap = gen.next_snapshot();
        unbatched.docs += snap.docs.len() as u64;
        ingest_with_retry(&engine, snap, deadline, &mut unbatched.sheds)?;
        unbatched.snapshots += 1;
        if unbatched.snapshots.is_multiple_of(8) {
            let q = engine.stats().queued;
            unbatched.queue_max = unbatched.queue_max.max(q);
            unbatched.queue_sum += q;
            unbatched.queue_samples += 1;
        }
    }
    unbatched.solver_steps = engine.flush()?;
    unbatched.wall = started.elapsed();
    unbatched.peak_alloc_bytes = alloc_meter::peak_bytes();
    unbatched.stats = engine.stats();
    engine.shutdown()?;

    // Phase 2: the same seeded traffic through the batching front end —
    // same-bucket snapshots coalesce into one assembled solver step.
    let engine = build(true)?;
    let mut gen = LoadGen::new(load_config("batched"), words)?;
    alloc_meter::reset_peak();
    let deadline = std::time::Instant::now() + budget;
    let started = std::time::Instant::now();
    let mut batched = SoakPhase {
        id: "batched",
        wall: std::time::Duration::ZERO,
        snapshots: 0,
        docs: 0,
        solver_steps: 0,
        sheds: 0,
        queue_max: 0,
        queue_sum: 0,
        queue_samples: 0,
        batches: 0,
        coalesced: 0,
        peak_alloc_bytes: 0,
        stats: engine.stats(),
    };
    {
        let mut batcher = engine.batching();
        while gen.step() < steps && std::time::Instant::now() < deadline {
            let snap = gen.next_snapshot();
            batched.docs += snap.docs.len() as u64;
            if let Some(shed) = batcher.submit(snap)? {
                ingest_with_retry(&engine, shed, deadline, &mut batched.sheds)?;
            }
            batched.snapshots += 1;
            if batched.snapshots.is_multiple_of(8) {
                let q = engine.stats().queued;
                batched.queue_max = batched.queue_max.max(q);
                batched.queue_sum += q;
                batched.queue_samples += 1;
            }
        }
        if let Some(shed) = batcher.flush()? {
            ingest_with_retry(&engine, shed, deadline, &mut batched.sheds)?;
        }
        batched.batches = batcher.batches_flushed();
        batched.coalesced = batcher.snapshots_coalesced();
    }
    batched.solver_steps = engine.flush()?;
    batched.wall = started.elapsed();
    batched.peak_alloc_bytes = alloc_meter::peak_bytes();
    batched.stats = engine.stats();
    engine.shutdown()?;

    for p in [&unbatched, &batched] {
        eprintln!(
            "{}: {} docs in {:.1} ms ({:.0} docs/s) | {} snapshots -> {} solver steps | \
             {} sheds (drop rate {:.4}) | queue max {} mean {:.1} | \
             p50 {:.3} ms p99 {:.3} ms p999 {:.3} ms | peak alloc {:.1} MiB",
            p.id,
            p.docs,
            p.wall.as_secs_f64() * 1e3,
            p.docs_per_sec(),
            p.snapshots,
            p.solver_steps,
            p.sheds,
            p.drop_rate(),
            p.queue_max,
            p.queue_mean(),
            p.stats.step_hist.p50() as f64 / 1e6,
            p.stats.step_hist.p99() as f64 / 1e6,
            p.stats.step_hist.p999() as f64 / 1e6,
            p.peak_alloc_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    let speedup = batched.docs_per_sec() / unbatched.docs_per_sec().max(1e-9);
    eprintln!("batched/unbatched throughput: {speedup:.2}x");

    let out_path = flags.str("out");
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema_version\": 1,\n",
            "  \"config\": {{\n",
            "    \"seed\": {}, \"users\": {}, \"steps\": {}, \"docs_per_step\": {},\n",
            "    \"words_per_doc\": {}, \"shards\": {}, \"queue_depth\": {},\n",
            "    \"batch_bucket\": {}, \"batch_max_docs\": {}, \"budget_ms\": {}, \"smoke\": {}\n",
            "  }},\n",
            "  \"benchmarks\": [\n{},\n{}\n  ]\n",
            "}}\n"
        ),
        seed,
        users,
        steps,
        docs_per_step,
        words_per_doc,
        shards,
        queue_depth,
        bucket,
        batch_max_docs,
        budget_ms,
        smoke,
        unbatched.to_json(),
        batched.to_json(),
    );
    std::fs::write(out_path, json)
        .map_err(|e| TgsError::io(format!("cannot write {out_path}"), e))?;
    eprintln!("wrote {out_path}");

    // The memory ceiling is its own gate (not only --smoke) so ad-hoc
    // soak runs can also fail fast on a live-heap regression.
    if let Some(ceiling) = flags.get_opt::<u64>("max-peak-bytes")? {
        for p in [&unbatched, &batched] {
            if p.peak_alloc_bytes > ceiling {
                return Err(TgsError::invalid_argument(format!(
                    "soak: phase {} peak live-heap {} bytes exceeds the --max-peak-bytes \
                     ceiling of {} bytes",
                    p.id, p.peak_alloc_bytes, ceiling
                )));
            }
        }
    }

    if smoke {
        for p in [&unbatched, &batched] {
            if p.stats.dropped_capacity > 0 || p.sheds > 0 {
                return Err(TgsError::invalid_argument(format!(
                    "soak smoke: phase {} shed {} / dropped {} snapshots (expected 0)",
                    p.id, p.sheds, p.stats.dropped_capacity
                )));
            }
            let p99 = p.stats.step_hist.p99();
            if p99 > 30_000_000_000 {
                return Err(TgsError::invalid_argument(format!(
                    "soak smoke: phase {} p99 step latency {} ns is implausible",
                    p.id, p99
                )));
            }
        }
        if batched.solver_steps >= unbatched.solver_steps {
            return Err(TgsError::invalid_argument(format!(
                "soak smoke: batching coalesced nothing ({} -> {} solver steps)",
                unbatched.solver_steps, batched.solver_steps
            )));
        }
        eprintln!("soak smoke: ok");
    }
    Ok(())
}

//! `tgs` — command-line front end for the tripartite sentiment pipeline.
//!
//! ```text
//! tgs generate --preset prop30-small --seed 42 --out corpus.tsv
//! tgs analyze  --corpus corpus.tsv [--alpha 0.05 --beta 0.8 --k 3] --out sentiments.tsv
//! tgs stream   --corpus corpus.tsv [--window-days 1 --gamma 0.2] --out timeline.tsv
//! tgs stats    --corpus corpus.tsv
//! ```
//!
//! `generate` writes a synthetic corpus in the TSV interchange format;
//! `analyze` runs the offline tri-clustering solver (Algorithm 1) and
//! writes per-tweet and per-user sentiment assignments; `stream` runs the
//! online solver (Algorithm 2) over daily snapshots and writes the
//! per-timestamp results; `stats` prints Table 3-style statistics.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

use tripartite_sentiment::data::{presets, read_corpus, write_corpus, Corpus};
use tripartite_sentiment::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "analyze" => cmd_analyze(&flags),
        "stream" => cmd_stream(&flags),
        "stats" => cmd_stats(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
tgs — tripartite graph co-clustering for dynamic sentiment analysis

USAGE:
  tgs generate --preset <tiny|prop30-small|prop37-small|prop30|prop37>
               [--seed N] --out <corpus.tsv>
  tgs analyze  --corpus <corpus.tsv> [--k N] [--alpha F] [--beta F]
               [--iters N] [--seed N] --out <sentiments.tsv>
  tgs stream   --corpus <corpus.tsv> [--window-days N] [--alpha F]
               [--beta F] [--gamma F] [--tau F] --out <timeline.tsv>
  tgs stats    --corpus <corpus.tsv>";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{a}'"));
        };
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for --{key}: '{v}'")),
    }
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("--{key} is required"))
}

fn load_corpus(flags: &HashMap<String, String>) -> Result<Corpus, String> {
    let path = required(flags, "corpus")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_corpus(BufReader::new(file)).map_err(|e| e.to_string())
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = flag(flags, "seed", 42)?;
    let preset = required(flags, "preset")?;
    let cfg = match preset {
        "tiny" => presets::tiny(seed),
        "prop30-small" => presets::prop30_small(seed),
        "prop37-small" => presets::prop37_small(seed),
        "prop30" => presets::prop30(seed),
        "prop37" => presets::prop37(seed),
        other => return Err(format!("unknown preset '{other}'")),
    };
    let corpus = generate(&cfg);
    let out_path = required(flags, "out")?;
    let out = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    write_corpus(&corpus, BufWriter::new(out)).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} tweets, {} users, {} retweets over {} days to {out_path}",
        corpus.num_tweets(),
        corpus.num_users(),
        corpus.retweets.len(),
        corpus.num_days
    );
    Ok(())
}

fn pipeline() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 2;
    cfg
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(flags)?;
    let k: usize = flag(flags, "k", 3)?;
    let config = OfflineConfig {
        k,
        alpha: flag(flags, "alpha", 0.05)?,
        beta: flag(flags, "beta", 0.8)?,
        max_iters: flag(flags, "iters", 100)?,
        seed: flag(flags, "seed", 42)?,
        ..Default::default()
    };
    let inst = build_offline(&corpus, k, &pipeline());
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let result = solve_offline(&input, &config);
    eprintln!(
        "solved in {} iterations (converged: {}); objective {:.2}",
        result.iterations, result.converged, result.objective
    );
    let out_path = required(flags, "out")?;
    let mut out = BufWriter::new(
        File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?,
    );
    let name = |c: usize| Sentiment::from_index(c).map(|s| s.as_str()).unwrap_or("?");
    writeln!(out, "# kind\tid\tsentiment\tconfidence").map_err(|e| e.to_string())?;
    let tweet_conf = tripartite_sentiment::core::label_confidence(&result.factors.sp);
    for (id, (&label, conf)) in result
        .tweet_labels()
        .iter()
        .zip(tweet_conf.iter())
        .enumerate()
    {
        writeln!(out, "tweet\t{id}\t{}\t{conf:.3}", name(label)).map_err(|e| e.to_string())?;
    }
    let user_conf = tripartite_sentiment::core::label_confidence(&result.factors.su);
    for (id, (&label, conf)) in result
        .user_labels()
        .iter()
        .zip(user_conf.iter())
        .enumerate()
    {
        writeln!(out, "user\t{id}\t{}\t{conf:.3}", name(label)).map_err(|e| e.to_string())?;
    }
    eprintln!("wrote sentiments to {out_path}");
    Ok(())
}

fn cmd_stream(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(flags)?;
    let window: u32 = flag(flags, "window-days", 1)?;
    let config = OnlineConfig {
        alpha: flag(flags, "alpha", 0.9)?,
        beta: flag(flags, "beta", 0.8)?,
        gamma: flag(flags, "gamma", 0.2)?,
        tau: flag(flags, "tau", 0.9)?,
        max_iters: flag(flags, "iters", 40)?,
        seed: flag(flags, "seed", 42)?,
        ..Default::default()
    };
    let builder = SnapshotBuilder::new(&corpus, config.k, &pipeline());
    let mut solver = OnlineSolver::new(config);
    let out_path = required(flags, "out")?;
    let mut out = BufWriter::new(
        File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?,
    );
    writeln!(
        out,
        "# day_lo\tday_hi\ttweets\tusers\tnew\tevolving\tpos%\tneg%\tneu%"
    )
    .map_err(|e| e.to_string())?;
    for (lo, hi) in day_windows(corpus.num_days, window) {
        let snap = builder.snapshot(&corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        let input = TriInput {
            xp: &snap.xp,
            xu: &snap.xu,
            xr: &snap.xr,
            graph: &snap.graph,
            sf0: builder.sf0(),
        };
        let step = solver.step(&SnapshotData {
            input,
            user_ids: &snap.user_ids,
        });
        let labels = step.tweet_labels();
        let share = |c: usize| {
            100.0 * labels.iter().filter(|&&l| l == c).count() as f64 / labels.len() as f64
        };
        writeln!(
            out,
            "{lo}\t{hi}\t{}\t{}\t{}\t{}\t{:.1}\t{:.1}\t{:.1}",
            snap.tweet_ids.len(),
            snap.user_ids.len(),
            step.partition.new_rows.len(),
            step.partition.evolving_rows.len(),
            share(0),
            share(1),
            share(2),
        )
        .map_err(|e| e.to_string())?;
    }
    eprintln!(
        "processed {} snapshots; wrote timeline to {out_path}",
        solver.steps()
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(flags)?;
    let s = corpus_stats(&corpus);
    println!("topic: {} ({} days)", corpus.topic, corpus.num_days);
    println!(
        "tweets: {} total, {} labeled pos, {} labeled neg",
        s.total_tweets, s.labeled_pos_tweets, s.labeled_neg_tweets
    );
    println!(
        "users:  {} total ({} pos / {} neg / {} neu labeled, {} unlabeled)",
        s.total_users,
        s.labeled_pos_users,
        s.labeled_neg_users,
        s.labeled_neu_users,
        s.unlabeled_users
    );
    println!("retweets: {}", s.total_retweets);
    Ok(())
}
